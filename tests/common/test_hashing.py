"""Tests for the hashing substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hashing import (
    HASH_FUNCTIONS,
    HashKey,
    hash_bytes,
    hash_sampled_bytes,
    jenkins_lookup3,
    jenkins_one_at_a_time,
    splitmix64,
)


class TestJenkinsOneAtATime:
    def test_deterministic(self):
        assert jenkins_one_at_a_time(b"hello") == jenkins_one_at_a_time(b"hello")

    def test_empty_input(self):
        assert jenkins_one_at_a_time(b"") == 0

    def test_known_sensitivity(self):
        assert jenkins_one_at_a_time(b"hello") != jenkins_one_at_a_time(b"hellp")

    def test_seed_changes_result(self):
        assert jenkins_one_at_a_time(b"data", seed=1) != jenkins_one_at_a_time(b"data", seed=2)

    def test_fits_32_bits(self):
        value = jenkins_one_at_a_time(b"some longer buffer " * 10)
        assert 0 <= value < 2 ** 32

    def test_accepts_numpy_arrays(self):
        arr = np.arange(16, dtype=np.uint8)
        assert jenkins_one_at_a_time(arr) == jenkins_one_at_a_time(arr.tobytes())


class TestJenkinsLookup3:
    def test_deterministic(self):
        data = b"the quick brown fox jumps over the lazy dog"
        assert jenkins_lookup3(data) == jenkins_lookup3(data)

    def test_64_bit_range(self):
        assert 0 <= jenkins_lookup3(b"abc") < 2 ** 64

    def test_different_lengths_differ(self):
        assert jenkins_lookup3(b"aaaa") != jenkins_lookup3(b"aaaaa")

    def test_block_boundary_sizes(self):
        # Exercise the 12-byte mixing loop boundaries.
        values = {jenkins_lookup3(bytes(range(n))) for n in (0, 1, 11, 12, 13, 24, 25)}
        assert len(values) == 7

    def test_seed_sensitivity(self):
        assert jenkins_lookup3(b"abc", seed=0) != jenkins_lookup3(b"abc", seed=1)

    def test_single_byte_change(self):
        base = bytearray(range(64))
        mutated = bytearray(base)
        mutated[37] ^= 0x01
        assert jenkins_lookup3(bytes(base)) != jenkins_lookup3(bytes(mutated))


class TestSplitmix64:
    def test_scalar_roundtrip_type(self):
        assert isinstance(splitmix64(42), int)

    def test_vectorised_matches_scalar(self):
        values = np.arange(10, dtype=np.uint64)
        vector = splitmix64(values)
        for index, value in enumerate(values):
            assert int(vector[index]) == splitmix64(int(value))

    def test_bijective_on_sample(self):
        sample = np.arange(1000, dtype=np.uint64)
        assert len(set(np.asarray(splitmix64(sample)).tolist())) == 1000


class TestHashBytes:
    def test_deterministic(self):
        data = np.random.default_rng(0).integers(0, 255, 4096, dtype=np.uint8)
        assert hash_bytes(data) == hash_bytes(data.copy())

    def test_empty_buffer(self):
        assert isinstance(hash_bytes(b""), int)

    def test_length_sensitivity(self):
        assert hash_bytes(b"\x00" * 8) != hash_bytes(b"\x00" * 16)

    def test_order_sensitivity(self):
        a = bytes(range(32))
        b = bytes(reversed(range(32)))
        assert hash_bytes(a) != hash_bytes(b)

    def test_single_byte_flip(self):
        base = np.zeros(1 << 16, dtype=np.uint8)
        mutated = base.copy()
        mutated[12345] = 1
        assert hash_bytes(base) != hash_bytes(mutated)

    def test_seed_sensitivity(self):
        assert hash_bytes(b"payload", seed=1) != hash_bytes(b"payload", seed=2)

    def test_accepts_non_byte_arrays(self):
        floats = np.linspace(0, 1, 100)
        assert hash_bytes(floats) == hash_bytes(floats.tobytes())

    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_matches_itself_property(self, data):
        assert hash_bytes(data) == hash_bytes(bytes(data))

    @given(st.binary(min_size=1, max_size=100), st.integers(min_value=0, max_value=99))
    @settings(max_examples=50, deadline=None)
    def test_flip_changes_hash_property(self, data, index):
        index %= len(data)
        mutated = bytearray(data)
        mutated[index] ^= 0xFF
        assert hash_bytes(data) != hash_bytes(bytes(mutated))


class TestHashSampledBytes:
    def test_subset_selection(self):
        data = np.arange(100, dtype=np.uint8)
        indices = np.array([0, 10, 20], dtype=np.int64)
        expected = HASH_FUNCTIONS["numpy"](data[indices], 0)
        assert hash_sampled_bytes(data, indices) == expected

    def test_empty_indices(self):
        data = np.arange(10, dtype=np.uint8)
        assert isinstance(hash_sampled_bytes(data, np.empty(0, dtype=np.int64)), int)

    def test_function_selection(self):
        data = np.arange(30, dtype=np.uint8)
        indices = np.arange(30, dtype=np.int64)
        assert hash_sampled_bytes(data, indices, function="lookup3") == jenkins_lookup3(data)

    def test_ignores_unsampled_bytes(self):
        data = np.arange(100, dtype=np.uint8)
        mutated = data.copy()
        mutated[50] = 0
        indices = np.array([1, 2, 3], dtype=np.int64)
        assert hash_sampled_bytes(data, indices) == hash_sampled_bytes(mutated, indices)


class TestHashKey:
    def test_bucket_uses_low_bits(self):
        key = HashKey(value=0b101101, p=1.0)
        assert key.bucket(4) == 0b1101

    def test_bucket_zero_bits(self):
        assert HashKey(value=12345).bucket(0) == 0

    def test_int_conversion(self):
        assert int(HashKey(value=77)) == 77

    def test_storage_is_eight_bytes(self):
        assert HashKey(value=1).storage_bytes == 8

    def test_registry_contains_all_functions(self):
        assert set(HASH_FUNCTIONS) == {"numpy", "lookup3", "one_at_a_time"}
