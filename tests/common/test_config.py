"""Tests for configuration objects."""

from __future__ import annotations

import pytest

from repro.common.config import ATMConfig, MIN_P, P_LADDER, RuntimeConfig, SimulationConfig
from repro.common.exceptions import ConfigurationError


class TestPLadder:
    def test_has_16_steps(self):
        assert len(P_LADDER) == 16

    def test_starts_at_2_pow_minus_15(self):
        assert P_LADDER[0] == MIN_P == 2.0 ** -15

    def test_ends_at_one(self):
        assert P_LADDER[-1] == 1.0

    def test_each_step_doubles(self):
        for smaller, larger in zip(P_LADDER, P_LADDER[1:]):
            assert larger == pytest.approx(2 * smaller)


class TestATMConfig:
    def test_defaults_valid(self):
        config = ATMConfig()
        assert config.n_buckets == 256

    def test_bucket_bits_bounds(self):
        with pytest.raises(ConfigurationError):
            ATMConfig(tht_bucket_bits=-1)
        with pytest.raises(ConfigurationError):
            ATMConfig(tht_bucket_bits=25)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ATMConfig(tht_bucket_capacity=0)

    def test_p_range(self):
        with pytest.raises(ConfigurationError):
            ATMConfig(p=0.0)
        with pytest.raises(ConfigurationError):
            ATMConfig(p=1.5)

    def test_tau_max_nonnegative(self):
        with pytest.raises(ConfigurationError):
            ATMConfig(tau_max=-0.1)

    def test_l_training_positive(self):
        with pytest.raises(ConfigurationError):
            ATMConfig(l_training=0)

    def test_hash_function_validated(self):
        with pytest.raises(ConfigurationError):
            ATMConfig(hash_function="md5")

    def test_with_overrides_returns_new_validated_copy(self):
        base = ATMConfig()
        derived = base.with_overrides(p=0.5)
        assert derived.p == 0.5
        assert base.p == 1.0
        with pytest.raises(ConfigurationError):
            base.with_overrides(p=-1.0)


class TestRuntimeConfig:
    def test_defaults(self):
        assert RuntimeConfig().num_threads == 8

    def test_thread_count_positive(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(num_threads=0)

    def test_scheduler_validated(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(scheduler="round_robin")

    def test_max_ready_tasks_validated(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(max_ready_tasks=0)
        assert RuntimeConfig(max_ready_tasks=None).max_ready_tasks is None

    def test_with_overrides(self):
        assert RuntimeConfig().with_overrides(num_threads=2).num_threads == 2


class TestSimulationConfig:
    def test_defaults_valid(self):
        SimulationConfig()

    @pytest.mark.parametrize("field", ["copy_bandwidth", "hash_bandwidth", "creation_throughput"])
    def test_bandwidths_positive(self, field):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**{field: 0.0})

    @pytest.mark.parametrize(
        "field",
        ["task_overhead", "tht_lookup_overhead", "ikt_lookup_overhead", "memory_contention_factor"],
    )
    def test_overheads_nonnegative(self, field):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**{field: -0.1})

    def test_with_overrides(self):
        assert SimulationConfig().with_overrides(task_overhead=1.5).task_overhead == 1.5
