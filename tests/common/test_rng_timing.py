"""Tests for deterministic RNG helpers and timing utilities."""

from __future__ import annotations

import time

import pytest

from repro.common.rng import derive_seed, generator_for, spawn_generators
from repro.common.timing import Stopwatch, Timer, timed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        assert 0 <= derive_seed(123, "x", "y") < 2 ** 64


class TestGeneratorFor:
    def test_same_path_same_stream(self):
        a = generator_for(7, "workload").random(5)
        b = generator_for(7, "workload").random(5)
        assert (a == b).all()

    def test_different_paths_differ(self):
        a = generator_for(7, "one").random(5)
        b = generator_for(7, "two").random(5)
        assert not (a == b).all()

    def test_spawn_generators_independent(self):
        gens = spawn_generators(3, 4, "workers")
        draws = [g.random() for g in gens]
        assert len(set(draws)) == 4


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.002)
        first = sw.stop()
        sw.start()
        time.sleep(0.002)
        sw.stop()
        assert sw.total >= first
        assert sw.total > 0.003

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        sw.start()
        sw.stop()
        sw.reset()
        assert sw.total == 0.0
        assert not sw.running


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as t:
            time.sleep(0.002)
        assert t.elapsed >= 0.002

    def test_timed_helper(self):
        with timed() as t:
            time.sleep(0.001)
        assert t.elapsed > 0.0
