"""Tests for the error metrics (paper Eqs. 1, 3, 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.common.errors import (
    chebyshev_relative_error,
    combined_chebyshev_error,
    correctness_percent,
    euclidean_relative_error,
    lu_residual_error,
)

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=20),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestChebyshev:
    def test_identical_outputs_zero_error(self):
        x = np.array([1.0, 2.0, 3.0])
        assert chebyshev_relative_error(x, x) == 0.0

    def test_known_value(self):
        correct = np.array([0.0, 10.0])
        approx = np.array([1.0, 10.0])
        assert chebyshev_relative_error(correct, approx) == pytest.approx(0.1)

    def test_uses_max_not_sum(self):
        correct = np.array([10.0, 10.0, 10.0])
        approx = np.array([9.0, 9.0, 9.0])
        assert chebyshev_relative_error(correct, approx) == pytest.approx(0.1)

    def test_zero_reference_nonzero_approx_is_inf(self):
        assert chebyshev_relative_error([0.0], [1.0]) == float("inf")

    def test_zero_both_is_zero(self):
        assert chebyshev_relative_error([0.0, 0.0], [0.0, 0.0]) == 0.0

    def test_empty_inputs(self):
        assert chebyshev_relative_error([], []) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            chebyshev_relative_error([1.0, 2.0], [1.0])

    def test_matrix_inputs_flattened(self):
        a = np.ones((3, 3))
        b = np.ones((3, 3)) * 1.05
        assert chebyshev_relative_error(a, b) == pytest.approx(0.05)

    @given(finite_arrays)
    @settings(max_examples=50, deadline=None)
    def test_self_distance_is_zero(self, arr):
        assert chebyshev_relative_error(arr, arr) == 0.0

    @given(finite_arrays, st.floats(min_value=0.001, max_value=0.01))
    @settings(max_examples=50, deadline=None)
    def test_bounded_perturbation_bounded_error(self, arr, eps):
        scale = np.max(np.abs(arr))
        perturbed = arr + eps * scale
        tau = chebyshev_relative_error(arr, perturbed)
        if scale > 0:
            assert tau <= eps * 1.0001


class TestCombinedChebyshev:
    def test_multiple_regions(self):
        pairs = [
            (np.array([10.0]), np.array([10.0])),
            (np.array([5.0]), np.array([6.0])),
        ]
        assert combined_chebyshev_error(pairs) == pytest.approx(0.1)

    def test_no_regions(self):
        assert combined_chebyshev_error([]) == 0.0

    def test_matches_single_region_chebyshev(self):
        a = np.array([1.0, 4.0, -3.0])
        b = np.array([1.1, 4.0, -3.0])
        assert combined_chebyshev_error([(a, b)]) == pytest.approx(
            chebyshev_relative_error(a, b)
        )


class TestEuclidean:
    def test_identical_outputs(self):
        x = np.arange(10, dtype=float)
        assert euclidean_relative_error(x, x) == 0.0

    def test_known_value(self):
        correct = np.array([3.0, 4.0])
        approx = np.array([3.0, 3.0])
        assert euclidean_relative_error(correct, approx) == pytest.approx(1.0 / 25.0)

    def test_zero_reference(self):
        assert euclidean_relative_error([0.0], [2.0]) == float("inf")

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            euclidean_relative_error([1.0], [1.0, 2.0])

    @given(finite_arrays)
    @settings(max_examples=50, deadline=None)
    def test_nonnegative(self, arr):
        noisy = arr + 0.5
        assert euclidean_relative_error(arr, noisy) >= 0.0


class TestLUResidual:
    def test_exact_factorisation(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (8, 8)) + 8 * np.eye(8)
        import scipy.linalg as sla

        p, l, u = sla.lu(a)
        assert lu_residual_error(p @ l @ u, p @ l, u) < 1e-12

    def test_wrong_factors_large_error(self):
        a = np.eye(4)
        l = np.eye(4)
        u = 2 * np.eye(4)
        assert lu_residual_error(a, l, u) == pytest.approx(1.0)

    def test_zero_matrix(self):
        z = np.zeros((3, 3))
        assert lu_residual_error(z, z, z) == 0.0


class TestCorrectnessPercent:
    def test_zero_error_is_100(self):
        assert correctness_percent(0.0) == 100.0

    def test_small_error(self):
        assert correctness_percent(0.05) == pytest.approx(95.0)

    def test_error_above_one_clamps_to_zero(self):
        assert correctness_percent(2.0) == 0.0

    def test_infinite_error(self):
        assert correctness_percent(float("inf")) == 0.0

    def test_nan_error(self):
        assert correctness_percent(float("nan")) == 0.0

    @given(st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_always_in_range(self, err):
        assert 0.0 <= correctness_percent(err) <= 100.0
