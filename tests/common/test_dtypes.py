"""Tests for type descriptors and type-aware byte-significance ordering."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.dtypes import (
    TypeDescriptor,
    byte_significance_ranks,
    describe_array,
    significance_order,
)


class TestDescribeArray:
    def test_float32(self):
        desc = describe_array(np.zeros(4, dtype=np.float32))
        assert desc.itemsize == 4
        assert desc.kind == "f"

    def test_float64(self):
        desc = describe_array(np.zeros(4, dtype=np.float64))
        assert desc.itemsize == 8

    def test_int32(self):
        desc = describe_array(np.zeros(4, dtype=np.int32))
        assert desc.kind == "i"

    def test_uint8_single_byte(self):
        desc = describe_array(np.zeros(4, dtype=np.uint8))
        assert not desc.is_multibyte

    def test_native_byteorder_resolved(self):
        desc = describe_array(np.zeros(2, dtype=np.float32))
        assert desc.byteorder in ("little", "big")


class TestMSBOffsets:
    def test_little_endian_float32(self):
        desc = TypeDescriptor("float32", 4, "f", "little")
        assert desc.msb_first_byte_offsets() == [3, 2, 1, 0]

    def test_big_endian(self):
        desc = TypeDescriptor("float32", 4, "f", "big")
        assert desc.msb_first_byte_offsets() == [0, 1, 2, 3]

    def test_single_byte(self):
        desc = TypeDescriptor("uint8", 1, "u", "little")
        assert desc.msb_first_byte_offsets() == [0]


class TestByteSignificanceRanks:
    def test_float32_ranks(self):
        desc = TypeDescriptor("float32", 4, "f", "little")
        ranks = byte_significance_ranks(desc, 8)
        # Little-endian: byte 3 of each element is the MSB (rank 0).
        assert list(ranks) == [3, 2, 1, 0, 3, 2, 1, 0]

    def test_single_byte_type_all_rank_zero(self):
        desc = TypeDescriptor("uint8", 1, "u", "little")
        assert set(byte_significance_ranks(desc, 5).tolist()) == {0}

    def test_trailing_partial_element(self):
        desc = TypeDescriptor("float32", 4, "f", "little")
        ranks = byte_significance_ranks(desc, 6)
        assert list(ranks[:4]) == [3, 2, 1, 0]
        assert list(ranks[4:]) == [3, 3]


class TestSignificanceOrder:
    def _order(self, descriptors, seed=0):
        rng = np.random.default_rng(seed)
        return significance_order(descriptors, rng)

    def test_is_a_permutation(self):
        desc = TypeDescriptor("float32", 4, "f", "little")
        order = self._order([(desc, 16), (desc, 8)])
        assert sorted(order.tolist()) == list(range(24))

    def test_msb_bytes_come_first(self):
        desc = TypeDescriptor("float32", 4, "f", "little")
        nbytes = 16
        order = self._order([(desc, nbytes)])
        # The first nbytes/4 indexes must all be MSB positions (offset 3 mod 4).
        first_group = order[: nbytes // 4]
        assert all(index % 4 == 3 for index in first_group.tolist())

    def test_empty_input(self):
        assert self._order([]).size == 0

    def test_mixed_types(self):
        f32 = TypeDescriptor("float32", 4, "f", "little")
        i64 = TypeDescriptor("int64", 8, "i", "little")
        order = self._order([(f32, 8), (i64, 16)])
        assert sorted(order.tolist()) == list(range(24))
        # Level 0 contains MSBs of both regions: 2 from float32, 2 from int64.
        level0 = set(order[:4].tolist())
        assert {3, 7} <= level0          # float32 MSBs at offsets 3 and 7
        assert {8 + 7, 8 + 15} <= level0  # int64 MSBs at global offsets 15 and 23

    def test_deterministic_for_same_rng_seed(self):
        desc = TypeDescriptor("float64", 8, "f", "little")
        a = self._order([(desc, 64)], seed=7)
        b = self._order([(desc, 64)], seed=7)
        assert np.array_equal(a, b)

    def test_different_seed_changes_shuffle(self):
        desc = TypeDescriptor("float64", 8, "f", "little")
        a = self._order([(desc, 64)], seed=1)
        b = self._order([(desc, 64)], seed=2)
        assert not np.array_equal(a, b)

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_permutation_property(self, n_elements, seed):
        desc = TypeDescriptor("float32", 4, "f", "little")
        nbytes = 4 * n_elements
        order = self._order([(desc, nbytes)], seed=seed)
        assert sorted(order.tolist()) == list(range(nbytes))
