"""End-to-end integration tests: every benchmark under every executor/policy.

These are the tests that guarantee the headline property of the paper's
Static ATM: *exact* memoization never changes program results, on any
executor, for any benchmark.  Dynamic ATM is additionally checked to stay
within a loose correctness budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import BENCHMARK_NAMES, make_benchmark
from repro.atm.engine import ATMEngine
from repro.atm.policy import DynamicATMPolicy, StaticATMPolicy
from repro.common.config import ATMConfig, RuntimeConfig, SimulationConfig
from repro.session import Session
from repro.runtime.executor import SerialExecutor, ThreadedExecutor
from repro.runtime.simulator import SimulatedExecutor


def run_app(name, engine=None, executor_kind="serial", cores=4):
    app = make_benchmark(name, scale="tiny")
    config = RuntimeConfig(num_threads=cores if executor_kind != "serial" else 1)
    if executor_kind == "serial":
        executor = SerialExecutor(config=config, engine=engine)
    elif executor_kind == "threaded":
        executor = ThreadedExecutor(config=config, engine=engine)
    else:
        executor = SimulatedExecutor(config=config, engine=engine, sim_config=SimulationConfig())
    runtime = Session(executor=executor)
    app.run(runtime)
    return app, executor.result()


def static_engine(threads=4):
    config = ATMConfig()
    return ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=threads)


def dynamic_engine(threads=4):
    config = ATMConfig()
    return ATMEngine(config=config, policy=DynamicATMPolicy(config), num_threads=threads)


@pytest.fixture(scope="module")
def references():
    """No-ATM serial reference output per benchmark (computed once)."""
    outputs = {}
    for name in BENCHMARK_NAMES:
        app, _ = run_app(name)
        outputs[name] = app.output()
    return outputs


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestStaticATMExactness:
    def test_serial_static_atm_is_bit_exact(self, name, references):
        app, result = run_app(name, engine=static_engine(1), executor_kind="serial")
        assert np.allclose(app.output(), references[name], rtol=0, atol=0)
        assert app.correctness(references[name]) == pytest.approx(100.0)

    def test_simulated_static_atm_is_exact(self, name, references):
        app, result = run_app(name, engine=static_engine(), executor_kind="simulated")
        # LU's correctness is an absolute residual against the original
        # matrix (Eq. 4), so even the exact factorisation sits a hair below
        # 100 % in float32; every other benchmark must be bit-exact.
        assert app.correctness(references[name]) >= 99.999
        if name != "lu":
            assert app.correctness(references[name]) == pytest.approx(100.0)
        assert result.tasks_completed == result.tasks_executed + result.tasks_memoized + result.tasks_deferred


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestDynamicATMBoundedLoss:
    def test_simulated_dynamic_atm_correctness(self, name, references):
        app, result = run_app(name, engine=dynamic_engine(), executor_kind="simulated")
        # The paper's worst case is a 3.2 % loss; leave headroom for the
        # scaled-down workloads but catch catastrophic approximation bugs.
        assert app.correctness(references[name]) >= 90.0


@pytest.mark.parametrize("name", ["blackscholes", "kmeans", "swaptions"])
class TestThreadedExecutorMatchesSerial:
    def test_threaded_static_atm_matches_reference(self, name, references):
        app, _ = run_app(name, engine=static_engine(), executor_kind="threaded")
        assert np.allclose(app.output(), references[name], rtol=0, atol=0)


class TestSimulatorSpeedupSanity:
    def test_blackscholes_static_atm_is_faster(self):
        _, baseline = run_app("blackscholes", executor_kind="simulated")
        _, with_atm = run_app("blackscholes", engine=static_engine(), executor_kind="simulated")
        assert with_atm.elapsed < baseline.elapsed

    def test_reuse_recorded_for_blackscholes(self):
        engine = static_engine()
        run_app("blackscholes", engine=engine, executor_kind="simulated")
        assert engine.stats.memoized_tasks > 0
        assert engine.stats.reuse_percentage() > 30.0

    def test_memory_overhead_reported(self):
        engine = dynamic_engine()
        app, _ = run_app("gauss-seidel", engine=engine, executor_kind="simulated")
        overhead = engine.memory_overhead_percent(app.application_bytes())
        assert 0.0 < overhead < 300.0
