"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atm.engine import ATMEngine
from repro.atm.policy import DynamicATMPolicy, StaticATMPolicy
from repro.common.config import ATMConfig, RuntimeConfig, SimulationConfig
from repro.runtime.data import In, Out
from repro.runtime.executor import SerialExecutor, ThreadedExecutor
from repro.runtime.simulator import SimulatedExecutor
from repro.runtime.task import TaskType
from repro.session import Session


@pytest.fixture
def atm_config() -> ATMConfig:
    return ATMConfig(tht_bucket_bits=4, tht_bucket_capacity=8)


@pytest.fixture
def static_engine(atm_config) -> ATMEngine:
    return ATMEngine(config=atm_config, policy=StaticATMPolicy(atm_config), num_threads=2)


@pytest.fixture
def dynamic_engine(atm_config) -> ATMEngine:
    return ATMEngine(config=atm_config, policy=DynamicATMPolicy(atm_config), num_threads=2)


@pytest.fixture
def serial_runtime() -> Session:
    return Session(executor=SerialExecutor(config=RuntimeConfig(num_threads=1)))


def make_serial_runtime(engine=None) -> Session:
    return Session(
        executor=SerialExecutor(config=RuntimeConfig(num_threads=1), engine=engine)
    )


def make_threaded_runtime(engine=None, threads: int = 4) -> Session:
    return Session(
        executor=ThreadedExecutor(config=RuntimeConfig(num_threads=threads), engine=engine)
    )


def make_simulated_runtime(engine=None, cores: int = 4, sim_config=None) -> Session:
    return Session(
        executor=SimulatedExecutor(
            config=RuntimeConfig(num_threads=cores),
            engine=engine,
            sim_config=sim_config or SimulationConfig(),
        )
    )


SQUARE_TYPE = TaskType("square", memoizable=True)


def square_body(src: np.ndarray, dst: np.ndarray) -> None:
    dst[:] = src ** 2


def submit_square(runtime: Session, src: np.ndarray, dst: np.ndarray):
    """Helper used across executor/engine tests: dst = src ** 2 as a task."""
    return runtime.submit(
        SQUARE_TYPE, square_body, accesses=[In(src), Out(dst)], args=(src, dst)
    )
