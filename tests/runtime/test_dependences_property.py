"""Property test: the indexed tracker is edge-identical to the seed tracker.

The optimised :class:`repro.runtime.dependences.DependenceTracker` (interval
index + epoch-stamp dedup) must produce exactly the same dependence edges as
the seed implementation preserved verbatim in
:mod:`repro.runtime.dependences_reference` — for every interleaving of
``in``/``out``/``inout`` accesses over exact-matching, overlapping and
nested byte intervals.  Randomized access streams are fed to both trackers
and the per-task predecessor sets are compared.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.data import AccessMode, DataAccess, DataRegion
from repro.runtime.dependences import DependenceTracker
from repro.runtime.dependences_reference import (
    DependenceTracker as ReferenceDependenceTracker,
)
from repro.runtime.task import Task, TaskType

TT = TaskType("dep-prop")

#: Interval grid per buffer: blocks of 16 bytes over a 64-byte buffer give
#: exact re-matches; odd offsets/lengths give overlapping and nested spans.
_BUFFER_COUNT = 3
_BUFFER_BYTES = 64

_access_spec = st.tuples(
    st.integers(0, _BUFFER_COUNT - 1),            # buffer
    st.integers(0, _BUFFER_BYTES - 1),            # start byte
    st.integers(0, _BUFFER_BYTES),                # length (0 = empty region!)
    st.sampled_from(list(AccessMode)),            # mode
    st.booleans(),                                # snap to 16-byte blocks?
)

_task_spec = st.lists(_access_spec, min_size=1, max_size=3)
_stream = st.lists(_task_spec, min_size=1, max_size=40)


def _build_tasks(stream) -> list[Task]:
    buffers = [np.zeros(_BUFFER_BYTES, dtype=np.uint8) for _ in range(_BUFFER_COUNT)]
    tasks = []
    for index, spec in enumerate(stream):
        accesses = []
        declared: dict[tuple, AccessMode] = {}
        for buffer_index, start, length, mode, snap in spec:
            if snap:
                start -= start % 16
                length = 16
            end = min(start + length, _BUFFER_BYTES)
            # end == start is kept: zero-length regions exercise the
            # empty-interval semantics (an empty interval overlaps nothing,
            # but a non-empty one strictly containing its position does).
            region = DataRegion(buffers[buffer_index][start:end])
            if declared.get(region.region_key, mode) is not mode:
                continue  # validate_accesses would reject conflicting dupes
            declared[region.region_key] = mode
            accesses.append(DataAccess(region, mode))
        if not accesses:
            continue
        tasks.append(Task(
            task_type=TT, function=lambda: None, accesses=accesses, task_id=index,
        ))
    return tasks


@given(_stream)
@settings(max_examples=200, deadline=None)
def test_indexed_tracker_matches_reference_edge_set(stream):
    tasks = _build_tasks(stream)
    indexed = DependenceTracker()
    reference = ReferenceDependenceTracker()
    for task in tasks:
        new_predecessors = indexed.dependences_for(task)
        ref_predecessors = reference.dependences_for(task)
        new_ids = sorted(p.task_id for p in new_predecessors)
        assert len(new_ids) == len(set(new_ids)), "duplicate predecessors"
        assert new_ids == sorted(p.task_id for p in ref_predecessors), (
            f"edge mismatch at task {task.task_id}: "
            f"{new_ids} != {sorted(p.task_id for p in ref_predecessors)}"
        )
    assert indexed.edges_added == reference.edges_added


@given(_stream)
@settings(max_examples=50, deadline=None)
def test_indexed_tracker_matches_reference_after_reset(stream):
    """Reset clears the index completely (no stale interval survives)."""
    tasks = _build_tasks(stream)
    indexed = DependenceTracker()
    reference = ReferenceDependenceTracker()
    for task in tasks:
        indexed.dependences_for(task)
    indexed.reset()
    assert indexed.edges_added == 0
    for task in tasks:
        new_ids = sorted(p.task_id for p in indexed.dependences_for(task))
        ref_ids = sorted(p.task_id for p in reference.dependences_for(task))
        assert new_ids == ref_ids
