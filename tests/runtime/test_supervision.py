"""Unit tests for the shared supervision layer (repro.runtime.supervision)."""

from __future__ import annotations

import pytest

from repro.common.config import RuntimeConfig
from repro.common.exceptions import (
    DrainAbortedError,
    TaskFailedError,
    TaskTimeoutError,
    WorkerLostError,
)
from repro.runtime.supervision import TaskFailure, TaskSupervisor, dump_stacks
from repro.runtime.task import Task, TaskType


def make_task(task_id: int = 1, name: str = "probe") -> Task:
    return Task(
        task_type=TaskType(name), function=lambda: None, accesses=[],
        task_id=task_id,
    )


def make_supervisor(**overrides) -> TaskSupervisor:
    return TaskSupervisor(RuntimeConfig(**overrides))


class TestRetryAccounting:
    def test_backoff_doubles_per_attempt(self):
        sup = make_supervisor(task_max_retries=3, retry_backoff_s=0.1)
        task = make_task()
        assert sup.count_attempt(task) == pytest.approx(0.1)
        assert sup.count_attempt(task) == pytest.approx(0.2)
        assert sup.count_attempt(task) == pytest.approx(0.4)
        assert sup.count_attempt(task) is None  # budget exhausted
        assert sup.attempts(task) == 4

    def test_zero_retries_terminal_on_first_failure(self):
        sup = make_supervisor()
        assert sup.count_attempt(make_task()) is None

    def test_attempt_counters_are_per_task(self):
        sup = make_supervisor(task_max_retries=1)
        a, b = make_task(1), make_task(2)
        assert sup.count_attempt(a) is not None
        assert sup.count_attempt(b) is not None  # b's budget is untouched
        assert sup.count_attempt(a) is None


class TestTimeouts:
    def test_disabled_by_default(self):
        sup = make_supervisor()
        assert not sup.timed_out(1e9)

    def test_budget_comparison_and_reason(self):
        sup = make_supervisor(task_timeout_s=0.5)
        assert not sup.timed_out(0.5)
        assert sup.timed_out(0.501)
        assert "task_timeout_s=0.5" in sup.timeout_reason(0.75)


class TestTerminalFailures:
    def test_record_failure_lands_in_external_sink(self):
        sink: list[TaskFailure] = []
        sup = TaskSupervisor(RuntimeConfig(), failures=sink)
        failure = sup.record_failure(make_task(), TaskFailedError, "boom")
        assert sink == [failure]
        assert failure.error == "TaskFailedError"
        assert failure.attempts == 1  # never below the one real execution

    def test_abort_names_task_and_carries_failures(self):
        sup = make_supervisor(task_max_retries=1)
        task = make_task(7, "explode")
        sup.count_attempt(task)
        sup.count_attempt(task)
        err = sup.abort(task, TaskFailedError, "ValueError: boom")
        assert isinstance(err, DrainAbortedError)
        assert "explode#7" in str(err)
        assert "2 attempt(s)" in str(err)
        assert err.failures[0].attempts == 2

    def test_aggregate_abort_lists_every_failure(self):
        sup = make_supervisor()
        sup.record_failure(make_task(1, "a"), TaskTimeoutError, "slow")
        sup.record_failure(make_task(2, "b"), WorkerLostError, "dead")
        err = sup.aggregate_abort("threaded drain")
        assert "2 task failure(s)" in str(err)
        assert "a#1" in str(err) and "b#2" in str(err)

    def test_to_exception_restores_taxonomy_class(self):
        for error_cls in (TaskFailedError, TaskTimeoutError, WorkerLostError):
            failure = TaskFailure(
                label="t#1", task_id=1, attempts=2, reason="r",
                error=error_cls.__name__,
            )
            exc = failure.to_exception()
            assert type(exc) is error_cls
            assert exc.label == "t#1"
            assert exc.attempts == 2
        unknown = TaskFailure(label="t#1", task_id=1, attempts=1,
                              reason="r", error="SomethingElse")
        assert type(unknown.to_exception()) is TaskFailedError


class TestDrainDeadline:
    def test_drain_timeout_builds_named_error(self, capsys):
        sup = make_supervisor(drain_timeout_s=1.25)
        err = sup.drain_timeout("unit drain")
        assert isinstance(err, DrainAbortedError)
        assert "drain_timeout_s=1.25" in str(err)

    def test_dump_stacks_writes_traceback(self, capsys):
        dump_stacks("unit test probe")
        captured = capsys.readouterr()
        text = captured.err + captured.out
        # Either the captured stream took the dump, or it fell back to the
        # real stderr (invisible here) -- the call must never raise.
        if text:
            assert "unit test probe" in text


class TestQuarantinePolicy:
    def test_mode_flag_follows_config(self):
        assert not make_supervisor().quarantine
        assert make_supervisor(on_task_failure="quarantine").quarantine
