"""Tests for the serial, threaded and simulated executors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atm.engine import ATMEngine
from repro.atm.policy import StaticATMPolicy
from repro.common.config import ATMConfig, RuntimeConfig, SimulationConfig
from repro.common.exceptions import DrainAbortedError, RuntimeStateError
from repro.session import Session
from repro.runtime.data import In, InOut, Out
from repro.runtime.executor import RunResult, SerialExecutor, ThreadedExecutor
from repro.runtime.simulator import SimulatedExecutor
from repro.runtime.task import TaskType

from tests.conftest import (
    make_serial_runtime,
    make_simulated_runtime,
    make_threaded_runtime,
    submit_square,
)


def build_chain(runtime: Session, length: int = 5) -> np.ndarray:
    """data[i+1] = data[i] + 1, as a chain of dependent tasks."""
    data = np.zeros(1)
    increment_type = TaskType("increment")

    def body(buf):
        buf[0] += 1.0

    for _ in range(length):
        runtime.submit(increment_type, body, accesses=[InOut(data)], args=(data,))
    return data


class TestRunResult:
    def test_merge_accumulates(self):
        a = RunResult(elapsed=1.0, time_unit="s", tasks_completed=2, tasks_executed=2)
        b = RunResult(elapsed=0.5, time_unit="s", tasks_completed=1, tasks_memoized=1)
        a.merge(b)
        assert a.elapsed == pytest.approx(1.5)
        assert a.tasks_completed == 3
        assert a.tasks_memoized == 1

    def test_merge_rejects_mixed_units(self):
        a = RunResult(time_unit="s")
        b = RunResult(time_unit="us")
        with pytest.raises(RuntimeStateError):
            a.merge(b)

    def test_reuse_fraction(self):
        r = RunResult(tasks_completed=10, tasks_memoized=3, tasks_deferred=1)
        assert r.reuse_fraction == pytest.approx(0.4)
        assert RunResult().reuse_fraction == 0.0


class TestSerialExecutor:
    def test_executes_chain_in_order(self):
        runtime = make_serial_runtime()
        data = build_chain(runtime, 5)
        result = runtime.finish()
        assert data[0] == 5.0
        assert result.tasks_completed == 5
        assert result.tasks_executed == 5

    def test_wall_clock_elapsed_positive(self):
        runtime = make_serial_runtime()
        build_chain(runtime, 3)
        assert runtime.finish().elapsed > 0.0

    def test_memoizes_identical_tasks_with_engine(self):
        config = ATMConfig()
        engine = ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=1)
        runtime = make_serial_runtime(engine)
        src = np.arange(16, dtype=np.float64)
        outs = [np.zeros(16) for _ in range(6)]
        for out in outs:
            submit_square(runtime, src, out)
        result = runtime.finish()
        assert result.tasks_memoized == 5
        assert all(np.allclose(out, src ** 2) for out in outs)


class TestThreadedExecutor:
    def test_parallel_independent_tasks(self):
        runtime = make_threaded_runtime(threads=4)
        src = np.arange(8, dtype=np.float64)
        outs = [np.zeros(8) for _ in range(20)]
        for out in outs:
            submit_square(runtime, src, out)
        result = runtime.finish()
        assert result.tasks_completed == 20
        assert all(np.allclose(out, src ** 2) for out in outs)

    def test_respects_dependences(self):
        runtime = make_threaded_runtime(threads=4)
        data = build_chain(runtime, 20)
        runtime.finish()
        assert data[0] == 20.0

    def test_engine_hits_and_postponed_copies(self):
        config = ATMConfig()
        engine = ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=4)
        runtime = make_threaded_runtime(engine, threads=4)
        src = np.arange(32, dtype=np.float64)
        outs = [np.zeros(32) for _ in range(40)]
        for out in outs:
            submit_square(runtime, src, out)
        result = runtime.finish()
        assert result.tasks_completed == 40
        # All but the very first execution should be avoided (via THT or IKT).
        assert result.tasks_memoized + result.tasks_deferred >= 35
        assert all(np.allclose(out, src ** 2) for out in outs)

    def test_worker_exception_propagates(self):
        runtime = make_threaded_runtime(threads=2)
        boom = TaskType("boom")

        def explode():
            raise ValueError("task failure")

        runtime.submit(boom, explode, accesses=[Out(np.zeros(1))])
        with pytest.raises(DrainAbortedError, match="task failure") as excinfo:
            runtime.finish()
        # The aggregated abort names the failed task and chains the original.
        assert [f.label for f in excinfo.value.failures] == ["boom#0"]
        assert isinstance(excinfo.value.__cause__.__cause__, ValueError)


class TestSimulatedExecutor:
    def test_functional_results_match_serial(self):
        serial_runtime = make_serial_runtime()
        serial_data = build_chain(serial_runtime, 7)
        serial_runtime.finish()

        sim_runtime = make_simulated_runtime(cores=4)
        sim_data = build_chain(sim_runtime, 7)
        sim_runtime.finish()
        assert sim_data[0] == serial_data[0]

    def test_elapsed_in_microseconds(self):
        runtime = make_simulated_runtime(cores=2)
        submit_square(runtime, np.arange(8.0), np.zeros(8))
        result = runtime.finish()
        assert result.time_unit == "us"
        assert result.elapsed > 0.0

    def test_more_cores_never_slower_for_independent_tasks(self):
        def run(cores):
            runtime = make_simulated_runtime(cores=cores)
            src = np.arange(64, dtype=np.float64)
            for _ in range(32):
                submit_square(runtime, src, np.zeros(64))
            return runtime.finish().elapsed

        assert run(8) <= run(1) + 1e-9

    def test_chain_not_parallelisable(self):
        def run(cores):
            runtime = make_simulated_runtime(cores=cores)
            build_chain(runtime, 10)
            return runtime.finish().elapsed

        assert run(4) == pytest.approx(run(1), rel=0.05)

    def test_deterministic_elapsed(self):
        def run():
            runtime = make_simulated_runtime(cores=4)
            src = np.arange(16, dtype=np.float64)
            for _ in range(10):
                submit_square(runtime, src, np.zeros(16))
            return runtime.finish().elapsed

        assert run() == pytest.approx(run())

    def test_creation_throughput_limits_start_times(self):
        slow_creation = SimulationConfig().with_overrides(creation_throughput=0.01)
        runtime = make_simulated_runtime(cores=8, sim_config=slow_creation)
        src = np.arange(4, dtype=np.float64)
        for _ in range(10):
            submit_square(runtime, src, np.zeros(4))
        elapsed = runtime.finish().elapsed
        # 10 tasks at 0.01 tasks/us need >= 900 us of creation time alone.
        assert elapsed >= 900.0

    def test_simulated_memoization_with_engine(self):
        config = ATMConfig()
        engine = ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=4)
        runtime = make_simulated_runtime(engine, cores=4)
        src = np.arange(16, dtype=np.float64)
        outs = [np.zeros(16) for _ in range(12)]
        for out in outs:
            submit_square(runtime, src, out)
        result = runtime.finish()
        assert result.tasks_memoized + result.tasks_deferred == 11
        assert all(np.allclose(out, src ** 2) for out in outs)

    def test_memoization_reduces_simulated_time(self):
        src = np.arange(256, dtype=np.float64)

        def run(with_engine):
            engine = None
            if with_engine:
                config = ATMConfig()
                engine = ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=2)
            runtime = make_simulated_runtime(engine, cores=2)
            for _ in range(20):
                submit_square(runtime, src, np.zeros(256))
            return runtime.finish().elapsed

        assert run(True) < run(False)
