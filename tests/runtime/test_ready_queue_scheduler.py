"""Tests for ready queues and schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.config import RuntimeConfig
from repro.common.exceptions import SchedulerError
from repro.runtime.data import Out
from repro.runtime.ready_queue import FIFOReadyQueue, LIFOReadyQueue, WorkStealingDeques
from repro.runtime.scheduler import Scheduler, make_scheduler
from repro.runtime.task import Task, TaskType

TT = TaskType("queue-test")


def make_task(index: int) -> Task:
    return Task(task_type=TT, function=lambda: None, accesses=[Out(np.zeros(2))], task_id=index)


class TestFIFOQueue:
    def test_order(self):
        queue = FIFOReadyQueue()
        tasks = [make_task(i) for i in range(4)]
        for task in tasks:
            queue.push(task)
        assert [queue.pop().task_id for _ in range(4)] == [0, 1, 2, 3]

    def test_pop_empty_returns_none(self):
        assert FIFOReadyQueue().pop() is None

    def test_len(self):
        queue = FIFOReadyQueue()
        queue.push(make_task(0))
        assert len(queue) == 1

    def test_stats(self):
        queue = FIFOReadyQueue()
        for i in range(3):
            queue.push(make_task(i))
        queue.pop()
        assert queue.stats.total_pushes == 3
        assert queue.stats.total_pops == 1
        assert queue.stats.max_depth == 3


class TestLIFOQueue:
    def test_order(self):
        queue = LIFOReadyQueue()
        for i in range(4):
            queue.push(make_task(i))
        assert [queue.pop().task_id for _ in range(4)] == [3, 2, 1, 0]


class TestWorkStealing:
    def test_local_pop_prefers_own_deque(self):
        deques = WorkStealingDeques(num_workers=2, seed=0)
        local = make_task(0)
        remote = make_task(1)
        deques.push(local, worker_hint=0)
        deques.push(remote, worker_hint=1)
        assert deques.pop(worker_id=0) is local

    def test_steals_when_empty(self):
        deques = WorkStealingDeques(num_workers=2, seed=0)
        victim_task = make_task(0)
        deques.push(victim_task, worker_hint=1)
        assert deques.pop(worker_id=0) is victim_task

    def test_empty_returns_none(self):
        deques = WorkStealingDeques(num_workers=2, seed=0)
        assert deques.pop(0) is None

    def test_requires_positive_workers(self):
        with pytest.raises(ValueError):
            WorkStealingDeques(num_workers=0)

    def test_total_length(self):
        deques = WorkStealingDeques(num_workers=3, seed=0)
        for i in range(5):
            deques.push(make_task(i), worker_hint=i)
        assert len(deques) == 5


class TestScheduler:
    def test_make_scheduler_fifo(self):
        scheduler = make_scheduler(RuntimeConfig(scheduler="fifo"))
        assert isinstance(scheduler, Scheduler)

    def test_make_scheduler_all_variants(self):
        for name in ("fifo", "lifo", "work_stealing"):
            scheduler = make_scheduler(RuntimeConfig(scheduler=name, num_threads=2))
            task = make_task(0)
            scheduler.task_ready(task)
            assert scheduler.next_task(0) is task

    def test_pending_count(self):
        scheduler = make_scheduler(RuntimeConfig())
        scheduler.task_ready(make_task(0))
        scheduler.task_ready(make_task(1))
        assert scheduler.pending() == 2

    def test_unknown_scheduler_rejected_by_config(self):
        from repro.common.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            RuntimeConfig(scheduler="bogus")
