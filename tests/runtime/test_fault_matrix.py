"""One fault matrix, four backends (``pytest -m fault``).

Every scenario runs unchanged — through :mod:`repro.testing.faults` —
against the serial, threaded, process and network executors: a
deterministically raising task, a flaky task healed by retries, retry
exhaustion, a wedged task against ``task_timeout_s``, a killed worker
process, and quarantine of a dependent subgraph.  Each asserts the
*named* taxonomy error, the structured ``failures`` report, and a
wall-clock bound (no failure path may hang).

The matrix sleeps (backoffs, wedges, worker respawns), so it lives in
its own marker tier like ``net_soak``; tier-1 covers the same machinery
through the per-backend unit tests.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.common.exceptions import DrainAbortedError, RuntimeStateError
from repro.runtime.data import In, Out
from repro.runtime.task import TaskType
from repro.testing.faults import (
    BACKENDS,
    fault_session,
    flaky_body,
    kill_worker_body,
    raising_body,
    square_body,
    submit_one,
    wedge_body,
)

pytestmark = pytest.mark.fault

#: Every scenario must finish far below this (drain timeouts are tighter).
SCENARIO_BOUND = 30.0


def elapsed_under_bound(t0: float) -> None:
    assert time.monotonic() - t0 < SCENARIO_BOUND


@pytest.mark.parametrize("backend", BACKENDS)
def test_raising_task_aborts_with_named_failure(backend):
    t0 = time.monotonic()
    with pytest.raises(DrainAbortedError) as excinfo:
        with fault_session(backend) as session:
            submit_one(session, raising_body, label="boom")
            session.wait_all()
    elapsed_under_bound(t0)
    failures = excinfo.value.failures
    assert len(failures) == 1
    assert failures[0].label.startswith("boom#")
    assert failures[0].error == "TaskFailedError"
    assert failures[0].attempts == 1
    assert "injected task failure" in failures[0].reason


@pytest.mark.parametrize("backend", BACKENDS)
def test_flaky_task_heals_within_retry_budget(backend, tmp_path):
    marker = str(tmp_path / f"flaky-{backend}.attempts")
    with fault_session(backend, task_max_retries=3) as session:
        src, dst = submit_one(session, flaky_body, marker, 2, label="flaky")
        result = session.wait_all()
    assert result.tasks_completed == 1
    assert result.failures == []
    # Retries heal in place: no worker died, so no ATM delta was lost.
    assert result.lost_deltas == 0
    assert np.array_equal(dst, src ** 2)
    with open(marker, "rb") as f:
        assert len(f.read()) == 3  # two failures + the success, no extras


@pytest.mark.parametrize("backend", BACKENDS)
def test_retry_exhaustion_is_terminal_with_attempt_count(backend, tmp_path):
    marker = str(tmp_path / f"exhaust-{backend}.attempts")
    t0 = time.monotonic()
    with pytest.raises(DrainAbortedError) as excinfo:
        with fault_session(backend, task_max_retries=1) as session:
            submit_one(session, flaky_body, marker, 10, label="exhaust")
            session.wait_all()
    elapsed_under_bound(t0)
    failure = excinfo.value.failures[0]
    assert failure.error == "TaskFailedError"
    assert failure.attempts == 2  # the original execution + one retry
    with open(marker, "rb") as f:
        assert len(f.read()) == 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_wedged_task_times_out(backend):
    # In-process backends detect the overrun post hoc (the sleep completes);
    # process/network kill or exclude the wedged worker preemptively, so the
    # sleep must merely exceed the detection budget, not ever finish.
    sleep_s = 0.3 if backend in ("serial", "threaded") else 5.0
    t0 = time.monotonic()
    with pytest.raises(DrainAbortedError) as excinfo:
        with fault_session(
            backend,
            task_timeout_s=0.1,
            net_max_retries=1,
            drain_timeout_s=20.0,
        ) as session:
            submit_one(session, wedge_body, sleep_s, label="wedge")
            session.wait_all()
    elapsed_under_bound(t0)
    failure = excinfo.value.failures[0]
    assert failure.error == "TaskTimeoutError"
    assert failure.label.startswith("wedge#")


@pytest.mark.parametrize("on_failure", ["abort", "quarantine"])
def test_killed_worker_process_backend(on_failure):
    """SIGKILL-style worker death: detected, respawned, bounded resubmission."""
    t0 = time.monotonic()
    session = fault_session(
        "process",
        on_task_failure=on_failure,
        allow_worker_kill=True,
        chunk_size=1,
        drain_timeout_s=20.0,
    )
    if on_failure == "abort":
        with pytest.raises(DrainAbortedError) as excinfo:
            with session:
                submit_one(session, kill_worker_body, label="kill")
                session.wait_all()
        failures = excinfo.value.failures
    else:
        with session:
            submit_one(session, kill_worker_body, label="kill")
            sinks = []
            for _ in range(4):
                sinks.append(submit_one(session, square_body, label="healthy"))
            result = session.wait_all()
        assert result.tasks_failed == 1
        assert result.tasks_completed == 4
        for src, dst in sinks:
            assert np.array_equal(dst, src ** 2)
        backend_stats = result.extra["process_backend"]
        assert backend_stats["respawns"] >= 1
        failures = result.failures
    elapsed_under_bound(t0)
    assert len(failures) == 1
    assert failures[0].error == "WorkerLostError"
    assert failures[0].label.startswith("kill#")
    assert "died" in failures[0].reason


@pytest.mark.parametrize("backend", BACKENDS)
def test_quarantine_cancels_dependents_and_drains_independents(backend):
    t0 = time.monotonic()
    with fault_session(backend, on_task_failure="quarantine") as session:
        # Chain: poison -> mid -> tail (via data dependences); 3 independents.
        a, b, c = np.zeros(8), np.zeros(8), np.zeros(8)
        src = np.arange(8, dtype=np.float64)
        session.submit(TaskType("poison", memoizable=False), raising_body,
                       accesses=[In(src), Out(a)], args=(src, a))
        session.submit(TaskType("mid", memoizable=False), square_body,
                       accesses=[In(a), Out(b)], args=(a, b))
        session.submit(TaskType("tail", memoizable=False), square_body,
                       accesses=[In(b), Out(c)], args=(b, c))
        independents = [submit_one(session, square_body, label="indep")
                        for _ in range(3)]
        result = session.wait_all()
    elapsed_under_bound(t0)
    assert result.tasks_failed == 1
    assert result.tasks_cancelled == 2
    assert result.tasks_completed == 3
    # Quarantine excludes tasks, not workers: nothing un-merged was lost.
    assert result.lost_deltas == 0
    for src, dst in independents:
        assert np.array_equal(dst, src ** 2)
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.label.startswith("poison#")
    cancelled_types = sorted(label.split("#")[0] for label in failure.cancelled)
    assert cancelled_types == ["mid", "tail"]
    # The cancelled tasks never ran: their sinks are untouched.
    assert not b.any() and not c.any()


def test_kill_guard_refuses_in_process_backends():
    with pytest.raises(RuntimeStateError, match="kill_worker_body"):
        fault_session("threaded", allow_worker_kill=True)


def test_unknown_backend_rejected():
    with pytest.raises(RuntimeStateError, match="unknown fault-matrix backend"):
        fault_session("quantum")
