"""Property-based round-trip tests for the network wire format.

Hypothesis-driven guarantees over :mod:`repro.runtime.net_wire`:

* **frame identity** — ``decode_frame(encode_frame(m))`` returns ``m`` for
  arbitrary message payloads;
* **frame integrity** — flipping *any single byte* of a frame, or
  truncating it anywhere, raises the named
  :class:`~repro.common.exceptions.WireProtocolError` (never a silent
  mis-decode, never a hang on a garbage length prefix);
* **array identity** — the ChunkEncoder → bytes → ChunkArena path rebuilds
  every ndarray *view* shape-, dtype- and value-identically, including 0-d
  arrays, empty arrays and non-contiguous views (strided slices,
  transposes, negative steps), while aliasing between views of one base
  survives and the rebuilt buffers never share memory with the originals;
* **descriptor identity** — ``NetTaskDescriptor``/engine-delta payloads
  survive encode→decode structurally intact.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.common.exceptions import WireProtocolError  # noqa: E402
from repro.runtime.mp_executor import _TaskTypeSpec  # noqa: E402
from repro.runtime.net_wire import (  # noqa: E402
    ChunkArena,
    ChunkEncoder,
    NetTaskDescriptor,
    decode_frame,
    encode_frame,
)
from repro.runtime.task import TaskType  # noqa: E402

_DTYPES = ("<f8", "<f4", "<i4", "<i2", "|u1", "<c16")


# -- strategies -----------------------------------------------------------------------
messages = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**63), 2**63 - 1),
        st.floats(allow_nan=False),
        st.text(max_size=32),
        st.binary(max_size=64),
    ),
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=16,
)


@st.composite
def base_arrays(draw):
    """A freshly allocated (C-contiguous, owning) base array."""
    dtype = np.dtype(draw(st.sampled_from(_DTYPES)))
    ndim = draw(st.integers(0, 3))
    shape = tuple(draw(st.integers(0, 5)) for _ in range(ndim))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    count = int(np.prod(shape, dtype=np.int64))
    data = rng.integers(0, 256, size=count * dtype.itemsize, dtype=np.uint8)
    return np.frombuffer(data.tobytes(), dtype=dtype).reshape(shape).copy()


@st.composite
def views(draw):
    """A view of a base array: slices with (possibly negative) steps and/or
    a transpose — the shapes task regions and stencil halos actually take."""
    base = draw(base_arrays())
    array = base
    if array.ndim and draw(st.booleans()):
        index = []
        for dim in array.shape:
            start = draw(st.integers(0, max(dim - 1, 0)))
            stop = draw(st.integers(start, dim))
            step = draw(st.sampled_from([1, 1, 2, -1]))
            index.append(
                slice(start, stop, step) if step > 0
                else slice(stop - 1 if stop > 0 else None, None, step)
            )
            # else-branch: a negative step anchored at the slice end.
        array = array[tuple(index)]
    if array.ndim >= 2 and draw(st.booleans()):
        array = array.T
    return base, array


# -- frame properties -----------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(messages)
def test_frame_round_trip_identity(message):
    decoded, consumed = decode_frame(encode_frame(message))
    assert decoded == message
    assert consumed == len(encode_frame(message))


@settings(max_examples=150, deadline=None)
@given(messages, st.data())
def test_any_single_byte_corruption_is_detected(message, data):
    frame = bytearray(encode_frame(message))
    index = data.draw(st.integers(0, len(frame) - 1), label="corrupt_index")
    frame[index] ^= data.draw(st.integers(1, 255), label="xor_mask")
    with pytest.raises(WireProtocolError):
        decode_frame(bytes(frame))


@settings(max_examples=100, deadline=None)
@given(messages, st.data())
def test_any_truncation_is_detected(message, data):
    frame = encode_frame(message)
    cut = data.draw(st.integers(0, len(frame) - 1), label="cut")
    with pytest.raises(WireProtocolError):
        decode_frame(frame[:cut])


def test_garbage_length_prefix_is_bounded():
    """A corrupted length field must raise, not allocate/await gigabytes."""
    frame = bytearray(encode_frame(("chunk", b"x" * 64)))
    frame[4:8] = (0x7F, 0xFF, 0xFF, 0xFF)  # 2 GiB length prefix
    with pytest.raises(WireProtocolError):
        decode_frame(bytes(frame))


# -- array properties -----------------------------------------------------------------
def bit_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Byte-exact equality — the wire contract (``array_equal`` would call
    random-byte NaN payloads unequal to themselves)."""
    return (
        a.shape == b.shape
        and a.dtype == b.dtype
        and np.ascontiguousarray(a).tobytes() == np.ascontiguousarray(b).tobytes()
    )


def round_trip_arrays(arrays):
    """Encode views through a ChunkEncoder frame and rebuild in a ChunkArena."""
    encoder = ChunkEncoder()
    refs = [encoder.ref(a) for a in arrays]
    message, _ = decode_frame(encode_frame((refs, encoder.buffers())))
    decoded_refs, buffers = message
    arena = ChunkArena(buffers)
    return [arena.view(ref) for ref in decoded_refs]


@settings(max_examples=150, deadline=None)
@given(views())
def test_array_view_round_trip_identity(base_and_view):
    base, view = base_and_view
    (rebuilt,) = round_trip_arrays([view])
    assert bit_equal(rebuilt, view)
    # No shared memory spans "hosts": mutating the rebuilt copy never
    # touches the original.
    if rebuilt.size:
        before = view.copy()
        rebuilt[...] = 0
        assert bit_equal(view, before)


@settings(max_examples=75, deadline=None)
@given(views())
def test_sibling_views_of_one_base_alias_after_round_trip(base_and_view):
    """Two views of one base must rebuild over *one* shared worker buffer:
    a write through one is visible through the other (the aliasing contract
    task arguments rely on)."""
    base, view = base_and_view
    whole, rebuilt_view = round_trip_arrays([base, view])
    assert bit_equal(whole, base)
    assert bit_equal(rebuilt_view, view)
    # Structural: both views resolve to the same backing uint8 ndarray.
    assert _backing_of(rebuilt_view) is _backing_of(whole)
    if whole.size:
        whole[...] = 0
        assert not rebuilt_view.size or np.count_nonzero(rebuilt_view) == 0


def _backing_of(array: np.ndarray):
    base = array
    while isinstance(base.base, np.ndarray):
        base = base.base
    return base


def square(x, y):  # module-level: pickles by reference
    y[:] = x ** 2


@settings(max_examples=50, deadline=None)
@given(views(), st.integers(0, 2**31 - 1), st.text(max_size=12))
def test_descriptor_round_trip_identity(base_and_view, task_id, name):
    _base, view = base_and_view
    encoder = ChunkEncoder()
    descriptor = NetTaskDescriptor(
        task_id=task_id,
        creation_index=task_id,
        type_spec=_TaskTypeSpec.of(TaskType(name or "t", memoizable=True)),
        function=square,
        accesses=((encoder.ref(view), "inout", name),),
        args=encoder.encode_payload((view, 3.5, name)),
        kwargs=encoder.encode_payload({"scale": 2, "data": view}),
    )
    message, _ = decode_frame(encode_frame(("chunk-part", descriptor, encoder.buffers())))
    _kind, decoded, buffers = message
    assert decoded.task_id == descriptor.task_id
    assert decoded.type_spec == descriptor.type_spec
    assert decoded.function is square  # resolved by reference, not copied
    assert decoded.accesses[0][1:] == ("inout", name)
    arena = ChunkArena(buffers)
    rebuilt = arena.decode_payload(decoded.args)
    assert bit_equal(rebuilt[0], view)
    assert rebuilt[1:] == (3.5, name)
    kw = arena.decode_payload(decoded.kwargs)
    assert kw["scale"] == 2
    assert bit_equal(kw["data"], view)
    # args and accesses alias one worker-side buffer, like the parent side.
    access_view = arena.view(decoded.accesses[0][0])
    assert access_view.base is rebuilt[0].base


def test_engine_delta_round_trip():
    """A real ATM engine delta (stats + THT journal with output snapshots)
    survives the frame and merges into a fresh engine."""
    from repro.atm.engine import ATMEngine
    from repro.atm.policy import StaticATMPolicy
    from repro.common.config import ATMConfig
    from repro.runtime.data import In, Out
    from repro.runtime.task import Task

    config = ATMConfig(use_ikt=False)
    engine = ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=1)
    engine.enable_delta_snapshots()
    task_type = TaskType("delta-rt", memoizable=True)
    src, dst = np.arange(8, dtype=np.float64), np.zeros(8)
    for _ in range(3):  # same key: one commit + two hits
        task = Task(task_type=task_type, function=square,
                    accesses=[In(src), Out(dst)], args=(src, dst), task_id=0)
        decision = engine.task_ready(task, 0)
        executed = not decision.skips_execution
        if executed:
            task.run()
        engine.task_finished(task, decision, executed, 0)
    delta = engine.snapshot(reset=True)
    decoded, _ = decode_frame(encode_frame(delta))

    sink = ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=1)
    sink.merge(decoded)
    merged = sink.stats.snapshot()
    original = engine.stats.snapshot()
    assert merged["tht_hits"] == 2
    assert merged["tht_hits"] == original["tht_hits"] or original["tht_hits"] == 0
    # The hit now replays against the merged THT: a twin task must skip.
    twin = Task(task_type=task_type, function=square,
                accesses=[In(src), Out(np.zeros(8))], args=(src, dst), task_id=1)
    assert sink.task_ready(twin, 0).skips_execution
