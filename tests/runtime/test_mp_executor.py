"""Unit tests for the multiprocess backend: shm protocol, deltas, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atm.engine import ATMEngine
from repro.atm.policy import StaticATMPolicy
from repro.common.config import ATMConfig, RuntimeConfig
from repro.common.exceptions import RuntimeStateError
from repro.session import Session
from repro.runtime.data import In, InOut, Out
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.mp_executor import ProcessExecutor
from repro.runtime.shm import SharedBufferRegistry, SharedVersionTable, WorkerArena
from repro.runtime.task import TaskType


def make_process_runtime(workers=2, engine=None, **overrides) -> Session:
    config = RuntimeConfig(num_threads=workers, executor="process", **overrides)
    executor = ProcessExecutor(config=config, engine=engine)
    return Session(executor=executor)


def square(src, dst):
    dst[:] = src ** 2


def bump(buf):
    buf += 1.0


def explode(buf):
    raise ValueError("worker task failure")


def reduce_parts(dst, sources):
    dst[:] = sum(sources)


SQUARE = TaskType("mp_square", memoizable=True)


class TestSharedMemoryProtocol:
    def test_roundtrip_preserves_view_identity_and_bytes(self):
        table = SharedVersionTable(capacity=16)
        try:
            registry = SharedBufferRegistry(table)
            base = np.arange(24, dtype=np.float64).reshape(4, 6)
            view = base[1:3, 2:5]                    # non-trivial strides
            ref = registry.array_ref(view)
            arena = WorkerArena(table)
            rebuilt = arena.view(ref)
            assert rebuilt.shape == view.shape
            assert rebuilt.strides == view.strides
            assert np.array_equal(rebuilt, view)
            # Two views of the same segment share one ndarray base (region
            # identity for the worker-side keygen caches).
            other = arena.view(registry.array_ref(base[0]))
            assert rebuilt.base is other.base
            arena.close()
            registry.close()
        finally:
            table.close()

    def test_copy_in_skips_unchanged_and_bumps_changed(self):
        table = SharedVersionTable(capacity=16)
        try:
            registry = SharedBufferRegistry(table)
            data = np.zeros(8)
            entry = registry.register(data)
            assert registry.copy_in() == 0          # registration seeded bytes
            version_before = table.read(entry.slot)
            data[:] = 7.0                            # parent-side mutation
            assert registry.copy_in() == 1
            assert table.read(entry.slot) == version_before + 1
            assert np.array_equal(entry.mirror, data)
            registry.close()
        finally:
            table.close()

    def test_version_table_bumps_are_monotonic(self):
        table = SharedVersionTable(capacity=4)
        try:
            assert table.read(2) == 0
            assert table.bump(2) == 1
            assert table.bump(2) == 2
            assert table.read(2) == 2
        finally:
            table.close()


class TestProcessExecutorLifecycle:
    def test_empty_graph_drain_returns_zero_result(self):
        executor = ProcessExecutor(config=RuntimeConfig(num_threads=2, executor="process"))
        try:
            result = executor.drain(TaskDependenceGraph(on_ready=executor.notify_ready))
            assert result.tasks_completed == 0
            assert result.reuse_fraction == 0.0
        finally:
            executor.close()

    def test_close_is_idempotent_and_drain_after_close_raises(self):
        runtime = make_process_runtime(workers=2)
        src = np.arange(8.0)
        out = np.zeros(8)
        runtime.submit(SQUARE, square, accesses=[In(src), Out(out)], args=(src, out))
        runtime.finish()                             # finish() closes the pool
        executor = runtime.executor
        executor.close()                             # second close: no-op
        with pytest.raises(RuntimeStateError):
            executor.drain(TaskDependenceGraph(on_ready=executor.notify_ready))

    def test_worker_exception_propagates_with_traceback(self):
        runtime = make_process_runtime(workers=2)
        boom = TaskType("mp_boom")
        buf = np.zeros(1)
        runtime.submit(boom, explode, accesses=[Out(buf)], args=(buf,))
        try:
            with pytest.raises(RuntimeStateError, match="worker task failure"):
                runtime.wait_all()
        finally:
            runtime.executor.close()

    def test_unpicklable_task_function_raises_instead_of_hanging(self):
        runtime = make_process_runtime(workers=1)
        local_fn_type = TaskType("mp_lambda")
        buf = np.zeros(1)
        runtime.submit(
            local_fn_type, lambda b: None, accesses=[Out(buf)], args=(buf,)
        )
        try:
            with pytest.raises(RuntimeStateError, match="picklable"):
                runtime.wait_all()
        finally:
            runtime.executor.close()

    def test_requires_atm_engine_compatible_engine(self):
        class FakeEngine:
            pass

        with pytest.raises(RuntimeStateError, match="ATMEngine-compatible"):
            ProcessExecutor(
                config=RuntimeConfig(num_threads=1, executor="process"),
                engine=FakeEngine(),
            )


class TestProcessExecutorSemantics:
    def test_dependence_chain_across_barriers(self):
        """Barriers reuse the live pool; state flows drain -> parent -> drain."""
        runtime = make_process_runtime(workers=2)
        increment = TaskType("mp_increment")
        data = np.zeros(4)
        for _ in range(3):
            runtime.submit(increment, bump, accesses=[InOut(data)], args=(data,))
        runtime.wait_all()
        assert np.allclose(data, 3.0)
        for _ in range(2):
            runtime.submit(increment, bump, accesses=[InOut(data)], args=(data,))
        result = runtime.finish()
        assert np.allclose(data, 5.0)
        assert result.tasks_completed == 5
        backend = result.extra["process_backend"]
        assert backend["workers"] == 2
        assert backend["dispatched"] == 5

    def test_chunked_dispatch_covers_wide_graphs(self):
        runtime = make_process_runtime(workers=2, mp_chunk_size=4)
        src = np.arange(16.0)
        outs = [np.zeros(16) for _ in range(21)]
        for out in outs:
            runtime.submit(SQUARE, square, accesses=[In(src), Out(out)], args=(src, out))
        result = runtime.finish()
        assert result.tasks_completed == 21
        assert result.extra["process_backend"]["chunks"] >= 6  # ceil(21 / 4)
        assert all(np.allclose(out, src ** 2) for out in outs)

    def test_engine_deltas_merge_without_double_counting(self):
        config = ATMConfig(use_ikt=False)
        engine = ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=2)
        runtime = make_process_runtime(workers=2, engine=engine)
        src = np.arange(32.0)
        for _ in range(6):
            out = np.zeros(32)
            runtime.submit(SQUARE, square, accesses=[In(src), Out(out)], args=(src, out))
        runtime.wait_all()                           # barrier 1: merge delta 1
        for _ in range(6):
            out = np.zeros(32)
            runtime.submit(SQUARE, square, accesses=[In(src), Out(out)], args=(src, out))
        result = runtime.finish()                    # barrier 2: merge delta 2
        stats = engine.stats
        assert stats.tasks_seen == 12                # not 12 + 6 re-counted
        assert stats.tht_hits + stats.misses == 12
        assert engine.tht.hits + engine.tht.misses == 12
        assert result.tasks_memoized == stats.tht_hits
        # Second-drain lookups hit the warm per-worker THTs: at most one
        # cold miss per worker in total.
        assert stats.misses <= 2

    def test_nested_argument_payloads_are_rebuilt(self):
        """Lists of arrays inside args (kmeans-style reductions) round-trip."""
        runtime = make_process_runtime(workers=2)
        gather = TaskType("mp_gather")
        parts = [np.full(4, float(i)) for i in range(3)]
        total = np.zeros(4)
        runtime.submit(
            gather,
            reduce_parts,
            accesses=[Out(total)] + [In(p) for p in parts],
            args=(total, parts),
        )
        runtime.finish()
        assert np.allclose(total, 0.0 + 1.0 + 2.0)
