"""Fault-injection matrix for the network execution backend.

Each scenario wraps :class:`LoopbackEndpoint` with a misbehaving transport —
dropping acks, delaying past the heartbeat, killing the worker mid-chunk,
wedging silently, corrupting the stream — and asserts the drain either
completes with bit-correct results (failed endpoints excluded, work
resubmitted to the survivors) or fails with the *named*
:class:`~repro.common.exceptions.NetworkDrainError`.  Nothing may hang:
every scenario is bounded by an explicit ``drain_timeout`` far below the
pytest session budget, and the wall-clock of the error paths is asserted.

The 500-task churn soak (``pytest -m net_soak``) lives here too; it is
excluded from tier-1 by the marker expression in ``pytest.ini``.
"""

from __future__ import annotations

import socket
import time

import numpy as np
import pytest

from repro.common.config import RuntimeConfig
from repro.common.exceptions import NetworkDrainError, RuntimeStateError
from repro.runtime.data import In, InOut, Out
from repro.runtime.task import TaskType
from repro.runtime.net_executor import NetworkExecutor
from repro.runtime.net_transport import LoopbackEndpoint, serve_connection
from repro.runtime.net_wire import read_frame, write_frame
from repro.session import Session
from tests.conftest import SQUARE_TYPE, square_body

#: Hard bound on every scenario: a hang fails loudly, it never stalls CI.
SCENARIO_TIMEOUT = 30.0
#: Heartbeat budget used by the fault scenarios (small: faults fire fast).
FAULT_NET_TIMEOUT = 0.4


# -- misbehaving endpoints ------------------------------------------------------------
class DropAckEndpoint(LoopbackEndpoint):
    """Swallows every ack frame: receipt liveness is lost, results are not."""

    def deliver(self, message):
        if message[0] == "ack":
            return
        super().deliver(message)


class DelayPastHeartbeatEndpoint(LoopbackEndpoint):
    """Delays its first result until well past the heartbeat deadline."""

    def __init__(self, name, delay_s: float):
        super().__init__(name)
        self.delay_s = delay_s
        self._delayed = False

    def deliver(self, message):
        if message[0] == "result" and not self._delayed:
            self._delayed = True
            time.sleep(self.delay_s)
        super().deliver(message)


class KillMidChunkEndpoint(LoopbackEndpoint):
    """Worker that acks its first chunk then dies (connection closed)."""

    def worker_target(self, sock: socket.socket) -> None:
        try:
            while True:
                message = read_frame(sock)
                if message[0] == "hello":
                    write_frame(sock, ("hello_ack", {"worker_id": -1}))
                elif message[0] == "chunk":
                    write_frame(sock, ("ack", message[1].chunk_id))
                    return  # dies mid-chunk: ack sent, result never will be
                elif message[0] == "shutdown":
                    return
        finally:
            sock.close()


class WedgeMidChunkEndpoint(LoopbackEndpoint):
    """Worker that acks its first chunk then goes silent (socket stays open).

    Unlike :class:`KillMidChunkEndpoint` the parent sees no transport error;
    only the heartbeat timeout can unblock the drain.
    """

    def worker_target(self, sock: socket.socket) -> None:
        try:
            while True:
                message = read_frame(sock)
                if message[0] == "hello":
                    write_frame(sock, ("hello_ack", {"worker_id": -1}))
                elif message[0] == "chunk":
                    write_frame(sock, ("ack", message[1].chunk_id))
                    time.sleep(SCENARIO_TIMEOUT)  # wedged; daemon thread
                elif message[0] == "shutdown":
                    return
        except Exception:
            pass
        finally:
            sock.close()


class GarbageFrameEndpoint(LoopbackEndpoint):
    """Worker that acks its first chunk and then corrupts the stream.

    The socket stays open afterwards so the *decoder* error is what the
    parent observes (closing it would race a broken-pipe send failure in
    first; either way the endpoint is excluded, but this test pins the
    wire-protocol detection specifically).
    """

    def worker_target(self, sock: socket.socket) -> None:
        try:
            while True:
                message = read_frame(sock)
                if message[0] == "hello":
                    write_frame(sock, ("hello_ack", {"worker_id": -1}))
                elif message[0] == "chunk":
                    write_frame(sock, ("ack", message[1].chunk_id))
                    sock.sendall(b"\xde\xad\xbe\xef" * 16)  # not a frame
                    time.sleep(SCENARIO_TIMEOUT)  # stream corrupted; linger
                elif message[0] == "shutdown":
                    return
        except Exception:
            pass
        finally:
            sock.close()


class CrashTaskEndpoint(LoopbackEndpoint):
    """Healthy transport whose task bodies raise (worker-side task bug)."""

    def worker_target(self, sock: socket.socket) -> None:
        serve_connection(sock)


class DieAfterChunksEndpoint(LoopbackEndpoint):
    """Serves the *real* protocol for ``n_chunks`` chunks, then dies.

    Unlike :class:`KillMidChunkEndpoint` this worker actually executes its
    early chunks — so the parent's residency table holds live entries for
    it when the connection drops, which is exactly the state the failover
    invalidation path must clean up.
    """

    def __init__(self, name: str, n_chunks: int):
        super().__init__(name)
        self.n_chunks = n_chunks

    def worker_target(self, sock: socket.socket) -> None:
        from repro.runtime.net_transport import NetWorkerState

        state = NetWorkerState(worker_id=-1)
        served = 0
        try:
            while True:
                message = read_frame(sock)
                kind = message[0]
                if kind == "hello":
                    write_frame(sock, ("hello_ack", state.hello(message[1])))
                elif kind == "chunk":
                    chunk = message[1]
                    if served >= self.n_chunks:
                        return  # dies mid-drain, residency entries and all
                    served += 1
                    write_frame(sock, ("ack", chunk.chunk_id))
                    results, error = state.run_chunk(chunk)
                    if error is not None:
                        return
                    write_frame(sock, ("result", chunk.chunk_id, results))
                elif kind == "invalidate":
                    if state.buffer_cache is not None:
                        state.buffer_cache.invalidate(message[1])
                elif kind == "sync":
                    write_frame(sock, ("sync_result", state.sync()))
                elif kind == "ping":
                    write_frame(sock, ("pong",))
                elif kind == "shutdown":
                    return
        except (OSError, ValueError, EOFError):
            pass
        finally:
            sock.close()


# -- harness --------------------------------------------------------------------------
def run_square_program(
    endpoints,
    n_tasks: int = 24,
    timeout_s: float = FAULT_NET_TIMEOUT,
    max_retries: int = 2,
    chunk_size: int = 2,
):
    """Drain ``n_tasks`` independent squares through ``endpoints``.

    Returns ``(result, sources, sinks, executor)``; the executor is already
    closed by the session.
    """
    config = RuntimeConfig(
        executor="network",
        num_threads=len(endpoints),
        mp_chunk_size=chunk_size,
        net_timeout_s=timeout_s,
        net_max_retries=max_retries,
    )
    executor = NetworkExecutor(config=config, endpoints=list(endpoints))
    executor.drain_timeout = SCENARIO_TIMEOUT
    sources = [np.full(8, float(i + 1)) for i in range(n_tasks)]
    sinks = [np.zeros(8) for _ in range(n_tasks)]
    with Session(executor=executor) as session:
        for src, dst in zip(sources, sinks):
            session.submit(
                SQUARE_TYPE, square_body, accesses=[In(src), Out(dst)],
                args=(src, dst),
            )
        result = session.wait_all()
    return result, sources, sinks, executor


def assert_correct(result, sources, sinks) -> None:
    assert result.tasks_completed == len(sources)
    for src, dst in zip(sources, sinks):
        assert np.array_equal(dst, src ** 2)


# -- scenarios ------------------------------------------------------------------------
def test_dropped_acks_do_not_stall_the_drain():
    """Acks are liveness metadata: losing every one of them must not matter
    as long as results flow (results update last-heard too)."""
    endpoints = [DropAckEndpoint("drop-ack/0"), LoopbackEndpoint("healthy/0")]
    result, sources, sinks, executor = run_square_program(endpoints)
    assert_correct(result, sources, sinks)
    # The ack-dropping endpoint stayed healthy: no failures recorded.
    assert executor._failures == []


def test_delay_past_heartbeat_fails_endpoint_and_resubmits():
    slow = DelayPastHeartbeatEndpoint("slow/0", delay_s=FAULT_NET_TIMEOUT * 4)
    endpoints = [slow, LoopbackEndpoint("healthy/0")]
    t0 = time.monotonic()
    result, sources, sinks, executor = run_square_program(endpoints)
    assert time.monotonic() - t0 < SCENARIO_TIMEOUT
    assert_correct(result, sources, sinks)
    backend = result.extra["network_backend"]
    assert any("slow/0" in failure for failure in backend["failed_endpoints"])
    assert backend["resubmitted_tasks"] > 0
    # The late duplicate result (delivered after the failure) was dropped:
    # exactly n completions, no double accounting.
    assert result.tasks_memoized + result.tasks_executed == result.tasks_completed


@pytest.mark.parametrize("faulty_cls", [KillMidChunkEndpoint, WedgeMidChunkEndpoint])
def test_dead_worker_mid_chunk_is_excluded_and_work_resubmitted(faulty_cls):
    faulty = faulty_cls("dying/0")
    endpoints = [faulty, LoopbackEndpoint("healthy/0"), LoopbackEndpoint("healthy/1")]
    t0 = time.monotonic()
    result, sources, sinks, executor = run_square_program(endpoints)
    assert time.monotonic() - t0 < SCENARIO_TIMEOUT
    assert_correct(result, sources, sinks)
    backend = result.extra["network_backend"]
    assert any("dying/0" in failure for failure in backend["failed_endpoints"])
    assert backend["resubmitted_tasks"] > 0
    assert faulty.failed  # excluded from any further dispatch


@pytest.mark.parametrize("backend", ["network", "process"])
def test_session_assigned_engine_reaches_workers(backend):
    """Session assigns its assembled engine to a pre-built engine-less
    executor *after* construction; the worker engine spec must be computed
    at connection/spawn time, or workers silently run without ATM."""
    config = RuntimeConfig(
        executor=backend, num_threads=1, mp_workers=1, mp_chunk_size=16,
        net_timeout_s=FAULT_NET_TIMEOUT,
    )
    if backend == "network":
        executor = NetworkExecutor(
            config=config, endpoints=[LoopbackEndpoint("lo/0")]
        )
        executor.drain_timeout = SCENARIO_TIMEOUT
    else:
        from repro.runtime.mp_executor import ProcessExecutor

        executor = ProcessExecutor(config=config)
    n = 6
    source = np.full(16, 2.0)
    sinks = [np.zeros(16) for _ in range(n)]
    with Session(
        {"atm": {"mode": "static", "use_ikt": False}}, executor=executor
    ) as session:
        for dst in sinks:
            session.submit(
                SQUARE_TYPE, square_body, accesses=[In(source), Out(dst)],
                args=(source, dst),
            )
        result = session.wait_all()
    assert result.tasks_memoized == n - 1  # twins hit the worker's THT
    for dst in sinks:
        assert np.array_equal(dst, np.full(16, 4.0))


def test_mid_drain_endpoint_loss_records_lost_engine_delta():
    """An engine-carrying endpoint that dies after receiving work loses its
    un-merged ATM delta — the run result must say so (lost_deltas >= 1)."""
    from repro.atm.engine import ATMEngine
    from repro.atm.policy import StaticATMPolicy
    from repro.common.config import ATMConfig

    atm_config = ATMConfig(use_ikt=False)
    engine = ATMEngine(
        config=atm_config, policy=StaticATMPolicy(atm_config), num_threads=2
    )
    endpoints = [KillMidChunkEndpoint("dying/0"), LoopbackEndpoint("healthy/0")]
    config = RuntimeConfig(
        executor="network", num_threads=2, mp_chunk_size=2,
        net_timeout_s=FAULT_NET_TIMEOUT, net_max_retries=2,
    )
    executor = NetworkExecutor(config=config, engine=engine, endpoints=endpoints)
    executor.drain_timeout = SCENARIO_TIMEOUT
    sources = [np.full(8, float(i + 1)) for i in range(12)]
    sinks = [np.zeros(8) for _ in range(12)]
    with Session(executor=executor) as session:
        for src, dst in zip(sources, sinks):
            session.submit(
                SQUARE_TYPE, square_body, accesses=[In(src), Out(dst)],
                args=(src, dst),
            )
        with pytest.warns(RuntimeWarning, match="un-merged ATM engine delta"):
            result = session.wait_all()
    assert_correct(result, sources, sinks)
    backend = result.extra["network_backend"]
    assert backend["lost_deltas"] >= 1
    # Surfaced on the result object itself, not only the backend stats.
    assert result.lost_deltas >= 1
    # The healthy endpoint's delta did merge: the parent engine saw tasks.
    assert engine.stats.snapshot()["tasks_seen"] > 0


def test_garbage_frame_fails_endpoint_with_wire_error_and_drain_completes():
    garbled = GarbageFrameEndpoint("garbled/0")
    endpoints = [garbled, LoopbackEndpoint("healthy/0")]
    result, sources, sinks, executor = run_square_program(endpoints)
    assert_correct(result, sources, sinks)
    backend = result.extra["network_backend"]
    failure = next(f for f in backend["failed_endpoints"] if "garbled/0" in f)
    assert "WireProtocolError" in failure
    assert garbled.failed


def test_failover_drops_residency_and_survivors_stay_bit_correct():
    """An endpoint that dies *holding residency* must not poison the drain.

    Drain 1 establishes warm per-endpoint caches for every source buffer;
    drain 2 re-reads the same sources, so locality placement routes each
    chunk back to the endpoint that holds its bytes — including the one
    that dies on arrival.  The parent must drop the dead endpoint's
    residency, resubmit, and full-ship the orphaned spans to survivors:
    every result bit-correct, with real cache hits on the surviving
    endpoints along the way.
    """
    endpoints = [
        DieAfterChunksEndpoint("dying/0", n_chunks=2),
        LoopbackEndpoint("healthy/0"),
        LoopbackEndpoint("healthy/1"),
    ]
    config = RuntimeConfig(
        executor="network", num_threads=3, mp_chunk_size=2,
        net_timeout_s=FAULT_NET_TIMEOUT, net_max_retries=2,
    )
    executor = NetworkExecutor(config=config, endpoints=endpoints)
    executor.drain_timeout = SCENARIO_TIMEOUT
    n = 12
    sources = [np.full(8, float(i + 1)) for i in range(n)]
    t0 = time.monotonic()
    with Session(executor=executor) as session:
        first = [np.zeros(8) for _ in range(n)]
        for src, dst in zip(sources, first):
            session.submit(
                SQUARE_TYPE, square_body, accesses=[In(src), Out(dst)],
                args=(src, dst),
            )
        session.wait_all()
        second = [np.zeros(8) for _ in range(n)]
        for src, dst in zip(sources, second):
            session.submit(
                SQUARE_TYPE, square_body, accesses=[In(src), Out(dst)],
                args=(src, dst),
            )
        result = session.wait_all()
    assert time.monotonic() - t0 < SCENARIO_TIMEOUT
    for src, dst in zip(sources, first):
        assert np.array_equal(dst, src ** 2)
    for src, dst in zip(sources, second):
        assert np.array_equal(dst, src ** 2)
    backend = result.extra["network_backend"]
    assert any("dying/0" in failure for failure in backend["failed_endpoints"])
    assert backend["resubmitted_tasks"] > 0
    # Drain 2 really ran over the cached protocol on the survivors.
    assert backend["residency"]["hits"] > 0


def test_kill_one_of_three_keeps_survivor_placement_balanced():
    """The round-robin skew regression: after an endpoint dies, cold
    chunks must keep rotating evenly over the *survivors* — the old
    live-list-indexed cursor re-biased placement every time the live set
    shrank."""
    endpoints = [
        KillMidChunkEndpoint("dying/0"),
        LoopbackEndpoint("healthy/0"),
        LoopbackEndpoint("healthy/1"),
    ]
    result, sources, sinks, executor = run_square_program(
        endpoints, n_tasks=24, chunk_size=2
    )
    assert_correct(result, sources, sinks)
    by_endpoint = result.extra["network_backend"]["chunks_by_endpoint"]
    survivors = [by_endpoint.get("healthy/0", 0), by_endpoint.get("healthy/1", 0)]
    assert min(survivors) >= 4, f"skewed placement after failover: {by_endpoint}"
    assert abs(survivors[0] - survivors[1]) <= 3, (
        f"survivors out of balance after failover: {by_endpoint}"
    )


def test_total_loss_raises_named_error_instead_of_hanging():
    endpoints = [KillMidChunkEndpoint("dying/0"), KillMidChunkEndpoint("dying/1")]
    t0 = time.monotonic()
    with pytest.raises(NetworkDrainError):
        run_square_program(endpoints, n_tasks=8)
    assert time.monotonic() - t0 < SCENARIO_TIMEOUT


def test_retry_budget_exhaustion_raises_named_error():
    """One healthy endpoint cannot save a task whose retries are exhausted:
    with max_retries=0 the first resubmission attempt must raise."""
    endpoints = [KillMidChunkEndpoint("dying/0"), LoopbackEndpoint("healthy/0")]
    t0 = time.monotonic()
    with pytest.raises(NetworkDrainError, match="net_max_retries"):
        run_square_program(endpoints, n_tasks=24, max_retries=0)
    assert time.monotonic() - t0 < SCENARIO_TIMEOUT


def test_all_endpoints_unreachable_raises_named_error():
    class Unreachable(LoopbackEndpoint):
        def connect(self):
            raise OSError("connection refused")

    endpoints = [Unreachable("gone/0"), Unreachable("gone/1")]
    with pytest.raises(NetworkDrainError, match="no network endpoint"):
        run_square_program(endpoints, n_tasks=4)


def _raise_in_worker(src, dst):  # module-level: must pickle by reference
    raise ValueError("boom inside the worker")


def _bump_body(x):  # module-level: must pickle by reference
    x += 1.0


def test_worker_task_exception_surfaces_as_runtime_error():
    """A *task* bug is not a transport fault: it aborts the drain loudly
    (resubmitting a deterministic crash elsewhere would just crash again)."""
    config = RuntimeConfig(
        executor="network", num_threads=1, net_timeout_s=FAULT_NET_TIMEOUT
    )
    executor = NetworkExecutor(
        config=config, endpoints=[CrashTaskEndpoint("healthy/0")]
    )
    executor.drain_timeout = SCENARIO_TIMEOUT
    src, dst = np.ones(4), np.zeros(4)
    with pytest.raises(RuntimeStateError, match="boom inside the worker"):
        with Session(executor=executor) as session:
            session.submit(
                SQUARE_TYPE, _raise_in_worker,
                accesses=[In(src), Out(dst)], args=(src, dst),
            )
            session.wait_all()


# -- churn soak (excluded from tier-1; run with `pytest -m net_soak`) -----------------
@pytest.mark.net_soak
def test_500_task_churn_with_mid_drain_worker_loss():
    """500-task churn across 4 endpoints, one of which dies mid-drain.

    Dependences chain every 5th task so completions interleave with fresh
    dispatches for the whole drain; the dying endpoint forces resubmission
    under churn.  Everything must come out bit-correct.
    """
    endpoints = [
        KillMidChunkEndpoint("dying/0"),
        LoopbackEndpoint("healthy/0"),
        LoopbackEndpoint("healthy/1"),
        LoopbackEndpoint("healthy/2"),
    ]
    config = RuntimeConfig(
        executor="network",
        num_threads=len(endpoints),
        mp_chunk_size=4,
        net_timeout_s=1.0,
        net_max_retries=3,
    )
    executor = NetworkExecutor(config=config, endpoints=endpoints)
    executor.drain_timeout = 120.0
    n_chains, chain_length = 100, 5
    bump_type = TaskType("bump", memoizable=False)
    buffers = [np.full(16, float(i + 1)) for i in range(n_chains)]
    with Session(executor=executor) as session:
        for _ in range(chain_length):
            for buffer in buffers:
                session.submit(
                    bump_type, _bump_body,
                    accesses=[InOut(buffer)], args=(buffer,),
                )
        result = session.wait_all()
    assert result.tasks_completed == n_chains * chain_length
    for i, buffer in enumerate(buffers):
        assert np.array_equal(buffer, np.full(16, float(i + 1) + chain_length))
    backend = result.extra["network_backend"]
    assert any("dying/0" in failure for failure in backend["failed_endpoints"])
