"""Tests for tasks and task types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.exceptions import TaskDefinitionError
from repro.runtime.data import In, InOut, Out
from repro.runtime.task import Task, TaskState, TaskType


def make_task(task_type=None, accesses=None, fn=None, args=()):
    task_type = task_type or TaskType("t", memoizable=True)
    accesses = accesses if accesses is not None else [In(np.zeros(4)), Out(np.zeros(4))]
    fn = fn or (lambda *a: None)
    return Task(task_type=task_type, function=fn, accesses=accesses, args=args, task_id=0)


class TestTaskType:
    def test_requires_name(self):
        with pytest.raises(TaskDefinitionError):
            TaskType("")

    def test_atm_eligibility_requires_memoizable_and_deterministic(self):
        assert TaskType("a", memoizable=True).atm_eligible
        assert not TaskType("b", memoizable=False).atm_eligible
        assert not TaskType("c", memoizable=True, deterministic=False).atm_eligible

    def test_invalid_tau_max(self):
        with pytest.raises(TaskDefinitionError):
            TaskType("t", tau_max=-1.0)

    def test_invalid_l_training(self):
        with pytest.raises(TaskDefinitionError):
            TaskType("t", l_training=0)

    def test_equality_by_name(self):
        assert TaskType("same") == TaskType("same")
        assert hash(TaskType("same")) == hash(TaskType("same"))
        assert TaskType("a") != TaskType("b")

    def test_instance_counter(self):
        tt = TaskType("counter")
        assert tt.next_instance_index() == 0
        assert tt.next_instance_index() == 1


class TestTaskStates:
    def test_terminal_states(self):
        assert TaskState.FINISHED.is_terminal
        assert TaskState.MEMOIZED.is_terminal
        assert not TaskState.READY.is_terminal
        assert not TaskState.RUNNING.is_terminal


class TestTask:
    def test_function_must_be_callable(self):
        with pytest.raises(TaskDefinitionError):
            make_task(fn="not callable")

    def test_inputs_and_outputs_split(self):
        a, b, c = np.zeros(2), np.zeros(2), np.zeros(2)
        task = make_task(accesses=[In(a), Out(b), InOut(c)])
        assert len(task.inputs) == 2     # In + InOut
        assert len(task.outputs) == 2    # Out + InOut
        assert len(task.strict_outputs) == 1

    def test_byte_accounting(self):
        a = np.zeros(4, dtype=np.float64)
        b = np.zeros(2, dtype=np.float32)
        task = make_task(accesses=[In(a), Out(b)])
        assert task.input_bytes == 32
        assert task.output_bytes == 8

    def test_run_invokes_function(self):
        src = np.arange(4, dtype=float)
        dst = np.zeros(4)

        def body(x, y):
            y[:] = 2 * x

        task = make_task(accesses=[In(src), Out(dst)], fn=body, args=(src, dst))
        task.run()
        assert dst.tolist() == [0.0, 2.0, 4.0, 6.0]

    def test_default_cost_model_positive_and_monotonic(self):
        small = make_task(accesses=[In(np.zeros(4)), Out(np.zeros(4))])
        large = make_task(accesses=[In(np.zeros(4096)), Out(np.zeros(4096))])
        assert 0 < small.simulated_cost() < large.simulated_cost()

    def test_tasks_hash_by_identity(self):
        t1 = make_task()
        t2 = make_task()
        assert t1 != t2
        assert len({t1, t2}) == 2

    def test_label_includes_type_and_id(self):
        task = make_task()
        assert task.label.startswith("t#")

    def test_conflicting_accesses_rejected(self):
        array = np.zeros(4)
        with pytest.raises(TaskDefinitionError):
            make_task(accesses=[In(array), Out(array)])
