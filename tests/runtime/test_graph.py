"""Tests for the task dependence graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.exceptions import RuntimeStateError
from repro.runtime.data import In, InOut, Out
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.task import Task, TaskState, TaskType

TT = TaskType("graph-test")


def make_task(accesses):
    return Task(task_type=TT, function=lambda: None, accesses=accesses)


class TestGraphConstruction:
    def test_independent_tasks_immediately_ready(self):
        ready = []
        graph = TaskDependenceGraph(on_ready=ready.append)
        t1 = graph.add_task(make_task([Out(np.zeros(4))]))
        t2 = graph.add_task(make_task([Out(np.zeros(4))]))
        assert ready == [t1, t2]
        assert t1.state == TaskState.READY

    def test_dependent_task_not_ready_until_predecessor_completes(self):
        data = np.zeros(4)
        ready = []
        graph = TaskDependenceGraph(on_ready=ready.append)
        writer = graph.add_task(make_task([Out(data)]))
        reader = graph.add_task(make_task([In(data)]))
        assert reader not in ready
        released = graph.complete_task(writer)
        assert released == [reader]
        assert reader in ready

    def test_task_ids_assigned_in_creation_order(self):
        graph = TaskDependenceGraph()
        ids = [graph.add_task(make_task([Out(np.zeros(2))])).task_id for _ in range(5)]
        assert ids == sorted(ids)

    def test_counts(self):
        data = np.zeros(4)
        graph = TaskDependenceGraph()
        writer = graph.add_task(make_task([Out(data)]))
        graph.add_task(make_task([In(data)]))
        assert graph.task_count == 2
        assert graph.edge_count == 1
        assert graph.finished_count == 0
        graph.complete_task(writer)
        assert graph.finished_count == 1


class TestCompletion:
    def test_all_finished(self):
        graph = TaskDependenceGraph()
        t = graph.add_task(make_task([Out(np.zeros(4))]))
        assert not graph.all_finished
        graph.complete_task(t)
        assert graph.all_finished

    def test_double_completion_rejected(self):
        graph = TaskDependenceGraph()
        t = graph.add_task(make_task([Out(np.zeros(4))]))
        graph.complete_task(t)
        with pytest.raises(RuntimeStateError):
            graph.complete_task(t)

    def test_unknown_task_rejected(self):
        graph = TaskDependenceGraph()
        orphan = make_task([Out(np.zeros(4))])
        orphan.task_id = 99
        with pytest.raises(RuntimeStateError):
            graph.complete_task(orphan)

    def test_memoized_terminal_state(self):
        graph = TaskDependenceGraph()
        t = graph.add_task(make_task([Out(np.zeros(4))]))
        graph.complete_task(t, TaskState.MEMOIZED)
        assert t.state == TaskState.MEMOIZED
        assert graph.all_finished

    def test_diamond_releases_join_only_after_both_branches(self):
        source = np.zeros(4)
        left, right = np.zeros(4), np.zeros(4)
        graph = TaskDependenceGraph()
        producer = graph.add_task(make_task([Out(source)]))
        branch_l = graph.add_task(make_task([In(source), Out(left)]))
        branch_r = graph.add_task(make_task([In(source), Out(right)]))
        join = graph.add_task(make_task([In(left), In(right)]))
        graph.complete_task(producer)
        assert graph.complete_task(branch_l) == []
        assert graph.complete_task(branch_r) == [join]

    def test_pending_tasks(self):
        graph = TaskDependenceGraph()
        t = graph.add_task(make_task([Out(np.zeros(4))]))
        assert graph.pending_tasks() == [t]
        graph.complete_task(t)
        assert graph.pending_tasks() == []

    def test_wait_all_finished_immediate(self):
        graph = TaskDependenceGraph()
        t = graph.add_task(make_task([Out(np.zeros(4))]))
        graph.complete_task(t)
        assert graph.wait_all_finished(timeout=0.1)


class TestAnalysis:
    def test_critical_path_of_chain(self):
        data = np.zeros(4)
        graph = TaskDependenceGraph()
        for _ in range(3):
            graph.add_task(make_task([InOut(data)]))
        length = graph.critical_path_length(cost=lambda t: 2.0)
        assert length == pytest.approx(6.0)

    def test_critical_path_of_independent_tasks(self):
        graph = TaskDependenceGraph()
        for _ in range(5):
            graph.add_task(make_task([Out(np.zeros(4))]))
        assert graph.critical_path_length(cost=lambda t: 3.0) == pytest.approx(3.0)

    def test_iter_edges(self):
        data = np.zeros(4)
        graph = TaskDependenceGraph()
        a = graph.add_task(make_task([Out(data)]))
        b = graph.add_task(make_task([In(data)]))
        assert list(graph.iter_edges()) == [(a.task_id, b.task_id)]

    def test_to_networkx_export(self):
        networkx = pytest.importorskip("networkx")
        data = np.zeros(4)
        graph = TaskDependenceGraph()
        graph.add_task(make_task([Out(data)]))
        graph.add_task(make_task([In(data)]))
        exported = graph.to_networkx()
        assert exported.number_of_nodes() == 2
        assert exported.number_of_edges() == 1

    def test_critical_path_of_diamond(self):
        """Regression: diamond DAG critical path = source + one branch + join."""
        source = np.zeros(4)
        left, right = np.zeros(4), np.zeros(4)
        graph = TaskDependenceGraph()
        graph.add_task(make_task([Out(source)]))
        graph.add_task(make_task([In(source), Out(left)]))
        graph.add_task(make_task([In(source), Out(right)]))
        graph.add_task(make_task([In(left), In(right)]))
        costs = {0: 1.0, 1: 5.0, 2: 2.0, 3: 1.0}
        length = graph.critical_path_length(cost=lambda t: costs[t.task_id])
        assert length == pytest.approx(7.0)  # 1 + max(5, 2) + 1

    def test_critical_path_survives_completion(self):
        """Regression: completing tasks must not erase edges — the seed
        popped successor lists, so the critical path silently shrank after a
        drain."""
        data = np.zeros(4)
        graph = TaskDependenceGraph()
        chain = [graph.add_task(make_task([InOut(data)])) for _ in range(3)]
        before = graph.critical_path_length(cost=lambda t: 2.0)
        for task in chain:
            graph.complete_task(task)
        after = graph.critical_path_length(cost=lambda t: 2.0)
        assert before == after == pytest.approx(6.0)
        assert sorted(graph.iter_edges()) == [(0, 1), (1, 2)]


class TestBatchedSubmission:
    def test_add_tasks_matches_per_task_edges(self):
        data = np.zeros(16)
        blocks = [np.zeros(8) for _ in range(4)]

        def build_tasks():
            tasks = [make_task([Out(block)]) for block in blocks]
            tasks.append(make_task([In(blocks[0]), In(blocks[1]), Out(data)]))
            tasks.append(make_task([InOut(data)]))
            return tasks

        one_by_one = TaskDependenceGraph()
        for task in build_tasks():
            one_by_one.add_task(task)
        batched = TaskDependenceGraph()
        batched.add_tasks(build_tasks())
        assert sorted(batched.iter_edges()) == sorted(one_by_one.iter_edges())
        assert batched.edge_count == one_by_one.edge_count
        assert batched.task_count == one_by_one.task_count

    def test_add_tasks_notifies_ready_in_creation_order(self):
        ready: list = []
        graph = TaskDependenceGraph(
            on_ready_batch=lambda tasks: ready.extend(tasks)
        )
        data = np.zeros(4)
        tasks = [
            make_task([Out(np.zeros(4))]),
            make_task([Out(data)]),
            make_task([In(data)]),   # blocked by the previous task
            make_task([Out(np.zeros(4))]),
        ]
        graph.add_tasks(tasks)
        assert ready == [tasks[0], tasks[1], tasks[3]]
        assert all(t.state == TaskState.READY for t in ready)
        assert tasks[2].state == TaskState.CREATED

    def test_complete_task_releases_through_batch_hook(self):
        batches: list = []
        graph = TaskDependenceGraph(on_ready_batch=batches.append)
        data = np.zeros(4)
        writer = make_task([Out(data)])
        readers = [make_task([In(data)]) for _ in range(3)]
        graph.add_tasks([writer, *readers])
        assert batches == [[writer]]
        released = graph.complete_task(writer)
        assert released == readers
        assert batches[1] == readers

    def test_add_tasks_falls_back_to_per_task_on_ready(self):
        ready: list = []
        graph = TaskDependenceGraph(on_ready=ready.append)
        tasks = [make_task([Out(np.zeros(4))]) for _ in range(3)]
        graph.add_tasks(tasks)
        assert ready == tasks

    def test_add_tasks_empty_iterable(self):
        graph = TaskDependenceGraph()
        assert graph.add_tasks([]) == []
        assert graph.task_count == 0

    def test_sparse_external_id_rejected(self):
        """The dense id-indexed arrays are O(max id): a far-out explicit id
        must fail loudly instead of silently allocating gigabytes."""
        graph = TaskDependenceGraph()
        orphan = make_task([Out(np.zeros(4))])
        orphan.task_id = TaskDependenceGraph.MAX_ID_GAP + 2
        with pytest.raises(RuntimeStateError, match="sparse external ids"):
            graph.add_task(orphan)

    def test_failing_batch_still_notifies_registered_tasks(self):
        """Regression: a mid-batch failure must not strand already-registered
        ready tasks unnotified (a later drain would hang)."""
        ready: list = []
        graph = TaskDependenceGraph(on_ready_batch=ready.extend)
        good = make_task([Out(np.zeros(4))])
        bad = make_task([Out(np.zeros(4))])
        bad.task_id = TaskDependenceGraph.MAX_ID_GAP + 2
        with pytest.raises(RuntimeStateError):
            graph.add_tasks([good, bad])
        assert ready == [good]
        assert good.state == TaskState.READY
        assert graph.task_count == 1

    def test_moderately_sparse_id_accepted(self):
        graph = TaskDependenceGraph()
        task = make_task([Out(np.zeros(4))])
        task.task_id = 5000
        graph.add_task(task)
        follow = graph.add_task(make_task([Out(np.zeros(4))]))
        assert follow.task_id == 5001
