"""Tests for the task dependence graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.exceptions import RuntimeStateError
from repro.runtime.data import In, InOut, Out
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.task import Task, TaskState, TaskType

TT = TaskType("graph-test")


def make_task(accesses):
    return Task(task_type=TT, function=lambda: None, accesses=accesses)


class TestGraphConstruction:
    def test_independent_tasks_immediately_ready(self):
        ready = []
        graph = TaskDependenceGraph(on_ready=ready.append)
        t1 = graph.add_task(make_task([Out(np.zeros(4))]))
        t2 = graph.add_task(make_task([Out(np.zeros(4))]))
        assert ready == [t1, t2]
        assert t1.state == TaskState.READY

    def test_dependent_task_not_ready_until_predecessor_completes(self):
        data = np.zeros(4)
        ready = []
        graph = TaskDependenceGraph(on_ready=ready.append)
        writer = graph.add_task(make_task([Out(data)]))
        reader = graph.add_task(make_task([In(data)]))
        assert reader not in ready
        released = graph.complete_task(writer)
        assert released == [reader]
        assert reader in ready

    def test_task_ids_assigned_in_creation_order(self):
        graph = TaskDependenceGraph()
        ids = [graph.add_task(make_task([Out(np.zeros(2))])).task_id for _ in range(5)]
        assert ids == sorted(ids)

    def test_counts(self):
        data = np.zeros(4)
        graph = TaskDependenceGraph()
        writer = graph.add_task(make_task([Out(data)]))
        graph.add_task(make_task([In(data)]))
        assert graph.task_count == 2
        assert graph.edge_count == 1
        assert graph.finished_count == 0
        graph.complete_task(writer)
        assert graph.finished_count == 1


class TestCompletion:
    def test_all_finished(self):
        graph = TaskDependenceGraph()
        t = graph.add_task(make_task([Out(np.zeros(4))]))
        assert not graph.all_finished
        graph.complete_task(t)
        assert graph.all_finished

    def test_double_completion_rejected(self):
        graph = TaskDependenceGraph()
        t = graph.add_task(make_task([Out(np.zeros(4))]))
        graph.complete_task(t)
        with pytest.raises(RuntimeStateError):
            graph.complete_task(t)

    def test_unknown_task_rejected(self):
        graph = TaskDependenceGraph()
        orphan = make_task([Out(np.zeros(4))])
        orphan.task_id = 99
        with pytest.raises(RuntimeStateError):
            graph.complete_task(orphan)

    def test_memoized_terminal_state(self):
        graph = TaskDependenceGraph()
        t = graph.add_task(make_task([Out(np.zeros(4))]))
        graph.complete_task(t, TaskState.MEMOIZED)
        assert t.state == TaskState.MEMOIZED
        assert graph.all_finished

    def test_diamond_releases_join_only_after_both_branches(self):
        source = np.zeros(4)
        left, right = np.zeros(4), np.zeros(4)
        graph = TaskDependenceGraph()
        producer = graph.add_task(make_task([Out(source)]))
        branch_l = graph.add_task(make_task([In(source), Out(left)]))
        branch_r = graph.add_task(make_task([In(source), Out(right)]))
        join = graph.add_task(make_task([In(left), In(right)]))
        graph.complete_task(producer)
        assert graph.complete_task(branch_l) == []
        assert graph.complete_task(branch_r) == [join]

    def test_pending_tasks(self):
        graph = TaskDependenceGraph()
        t = graph.add_task(make_task([Out(np.zeros(4))]))
        assert graph.pending_tasks() == [t]
        graph.complete_task(t)
        assert graph.pending_tasks() == []

    def test_wait_all_finished_immediate(self):
        graph = TaskDependenceGraph()
        t = graph.add_task(make_task([Out(np.zeros(4))]))
        graph.complete_task(t)
        assert graph.wait_all_finished(timeout=0.1)


class TestAnalysis:
    def test_critical_path_of_chain(self):
        data = np.zeros(4)
        graph = TaskDependenceGraph()
        for _ in range(3):
            graph.add_task(make_task([InOut(data)]))
        length = graph.critical_path_length(cost=lambda t: 2.0)
        assert length == pytest.approx(6.0)

    def test_critical_path_of_independent_tasks(self):
        graph = TaskDependenceGraph()
        for _ in range(5):
            graph.add_task(make_task([Out(np.zeros(4))]))
        assert graph.critical_path_length(cost=lambda t: 3.0) == pytest.approx(3.0)

    def test_iter_edges(self):
        data = np.zeros(4)
        graph = TaskDependenceGraph()
        a = graph.add_task(make_task([Out(data)]))
        b = graph.add_task(make_task([In(data)]))
        assert list(graph.iter_edges()) == [(a.task_id, b.task_id)]

    def test_to_networkx_export(self):
        networkx = pytest.importorskip("networkx")
        data = np.zeros(4)
        graph = TaskDependenceGraph()
        graph.add_task(make_task([Out(data)]))
        graph.add_task(make_task([In(data)]))
        exported = graph.to_networkx()
        assert exported.number_of_nodes() == 2
        assert exported.number_of_edges() == 1
