"""Submit-while-draining parity across all five execution backends.

The serving gateway extends the shared dependence graph *while a drain is
in flight*: the graph's ``on_complete`` hook (running on a live drain
worker) admits the next wave of queued work.  This suite pins that contract
for every backend — a second wave submitted from the completion hook
mid-drain must finish, and the final bytes must be bit-identical to
submitting both waves as one up-front batch.

The driver mirrors the gateway's dispatch loop: ``drain`` until the graph —
including anything the hook added after a drain sampled ``all_finished`` —
is really done.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.common.config import RuntimeConfig
from repro.common.hashing import hash_bytes
from repro.runtime.data import In, InOut, Out
from repro.runtime.executor import build_executor
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.task import Task, TaskType
from repro.testing.traffic import accumulate_block, fill_block

FILL = TaskType("drain_fill", memoizable=False)
ACC = TaskType("drain_acc", memoizable=False)
N_BLOCKS = 6
BLOCK = 64

#: ``network-nores`` is the network backend with residency off — the same
#: five-backend matrix as the executor parity suite.
CONFIGS = {
    "serial": RuntimeConfig(executor="serial", num_threads=1),
    "threaded": RuntimeConfig(executor="threaded", num_threads=4),
    "process": RuntimeConfig(executor="process", num_threads=2),
    "network": RuntimeConfig(executor="network", num_threads=2),
    "network-nores": RuntimeConfig(
        executor="network", num_threads=2, net_residency=False
    ),
}


def make_arrays() -> tuple[list[np.ndarray], np.ndarray]:
    return [np.zeros(BLOCK) for _ in range(N_BLOCKS)], np.zeros(BLOCK)


def wave1(blocks: list[np.ndarray]) -> list[Task]:
    return [
        Task(task_type=FILL, function=fill_block, accesses=[Out(block)],
             args=(block, float(i + 1)), task_id=-1)
        for i, block in enumerate(blocks)
    ]


def wave2(blocks: list[np.ndarray], acc: np.ndarray) -> list[Task]:
    # InOut(acc) chains the accumulations in submission order, so the
    # floating-point sum is order-deterministic on every backend.
    return [
        Task(task_type=ACC, function=accumulate_block,
             accesses=[In(block), InOut(acc)], args=(block, acc), task_id=-1)
        for block in blocks
    ]


def checksum(blocks: list[np.ndarray], acc: np.ndarray) -> str:
    digest = hash_bytes(np.ascontiguousarray(acc))
    for block in blocks:
        digest ^= hash_bytes(np.ascontiguousarray(block))
    return f"{digest:016x}"


def drive(executor, graph: TaskDependenceGraph) -> None:
    """The gateway's dispatch loop in miniature: drain until really done."""
    for _ in range(100):
        executor.drain(graph)
        if graph.all_finished:
            return
    raise AssertionError("graph failed to settle within 100 drains")


def run_batch(backend: str):
    blocks, acc = make_arrays()
    executor = build_executor(CONFIGS[backend])
    try:
        graph = TaskDependenceGraph(
            on_ready=executor.notify_ready,
            on_ready_batch=executor.notify_ready_batch,
        )
        graph.add_tasks(wave1(blocks) + wave2(blocks, acc))
        drive(executor, graph)
        result = executor.result()
    finally:
        executor.close()
    return checksum(blocks, acc), result


def run_incremental(backend: str):
    """Wave 2 is submitted from the completion hook, mid-drain."""
    blocks, acc = make_arrays()
    executor = build_executor(CONFIGS[backend])
    try:
        submitted = threading.Event()
        lock = threading.Lock()
        graph_box: list[TaskDependenceGraph] = []

        def on_complete(task: Task) -> None:
            if task.task_type.name != FILL.name:
                return
            with lock:
                if submitted.is_set():
                    return
                submitted.set()
            graph_box[0].add_tasks(wave2(blocks, acc))

        graph = TaskDependenceGraph(
            on_ready=executor.notify_ready,
            on_ready_batch=executor.notify_ready_batch,
            on_complete=on_complete,
        )
        graph_box.append(graph)
        graph.add_tasks(wave1(blocks))
        drive(executor, graph)
        assert submitted.is_set(), "completion hook never fired"
        result = executor.result()
    finally:
        executor.close()
    return checksum(blocks, acc), result


@pytest.fixture(scope="module")
def reference():
    return run_batch("serial")


@pytest.mark.parametrize("backend", list(CONFIGS))
def test_submit_while_draining_matches_batch(backend, reference):
    ref_checksum, ref_result = reference
    batch_checksum, batch_result = (
        reference if backend == "serial" else run_batch(backend)
    )
    incr_checksum, incr_result = run_incremental(backend)
    assert batch_checksum == ref_checksum, (
        f"{backend}: batch output diverged from serial reference"
    )
    assert incr_checksum == batch_checksum, (
        f"{backend}: mid-drain submission changed the output bytes"
    )
    assert incr_result.tasks_completed == 2 * N_BLOCKS
    assert incr_result.tasks_completed == batch_result.tasks_completed
    assert incr_result.tasks_failed == 0
    assert ref_result.tasks_completed == 2 * N_BLOCKS
