"""Residency protocol tests: unit rules + hypothesis interleavings.

The per-endpoint residency protocol (``repro.runtime.residency``, wired
into the network backend in PR 7) has one correctness invariant: whenever
a parent-side :class:`ResidencyEntry`'s version equals the base buffer's
current write-version, the worker's cached backing holds bit-identical
bytes over the entry's span.  Everything else — eviction, invalidation,
staleness after unknown writers — is allowed to *lose* residency (a loss
only costs a re-ship), never to serve wrong bytes.

Three layers of coverage:

* **unit tests** of every :meth:`ResidencyTable.note_write` rule, the
  lookup/record/evict bookkeeping, :class:`WorkerBufferCache`'s
  generation-guarded invalidation and :class:`ChunkArena`'s cached-form
  resolution (including the loud :class:`WireProtocolError` paths);
* **placement unit tests** of :meth:`NetworkExecutor._place` and the
  fixed-pool round-robin cursor (the failover skew fix);
* a **hypothesis property** that drives the full parent+worker model —
  random interleavings of dispatches, task writes, unknown parent writes,
  budget evictions and endpoint failures — and asserts after every single
  dispatch that the bytes a worker would serve a task are bit-identical
  to the parent buffer, and after the whole run that every current table
  entry still describes a coherent worker backing.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.common.exceptions import WireProtocolError  # noqa: E402
from repro.runtime.net_executor import NetworkExecutor  # noqa: E402
from repro.runtime.net_wire import ChunkArena, NetBuffer, span_bytes  # noqa: E402
from repro.runtime.residency import (  # noqa: E402
    ResidencyTable,
    WorkerBufferCache,
)


class Ep:
    """Stand-in endpoint: identity-keyed like a real SocketEndpoint."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.failed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


# ---------------------------------------------------------------------------
# ResidencyTable: dispatch-side bookkeeping
# ---------------------------------------------------------------------------


def test_lookup_on_empty_table_misses():
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    assert table.lookup(ep, 1, 0, 8, version=0) is None
    assert table.stats["misses"] == 1
    assert table.stats["hits"] == 0


def test_record_then_lookup_hits_and_counts_saved_bytes():
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    gen = table.record(ep, 1, 0, 64, version=3)
    entry = table.lookup(ep, 1, 0, 64, version=3)
    assert entry is not None and entry.generation == gen
    assert table.stats["hits"] == 1
    assert table.stats["bytes_saved"] == 64
    assert table.stats["bytes_shipped"] == 64
    assert table.bytes_held(ep) == 64


def test_lookup_misses_on_version_change():
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    table.record(ep, 1, 0, 64, version=3)
    assert table.lookup(ep, 1, 0, 64, version=4) is None


def test_lookup_hit_requires_span_coverage():
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    table.record(ep, 1, 8, 32, version=0)
    # Sub-span of the resident entry: hit.
    assert table.lookup(ep, 1, 12, 20, version=0) is not None
    # Pokes outside on either side: miss (re-ship the wider span).
    assert table.lookup(ep, 1, 0, 16, version=0) is None
    assert table.lookup(ep, 1, 16, 40, version=0) is None


def test_record_replaces_and_reaccounts_bytes():
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    g1 = table.record(ep, 1, 0, 64, version=0)
    g2 = table.record(ep, 1, 0, 16, version=1)
    assert g2 > g1
    assert table.bytes_held(ep) == 16
    assert table.entry(ep, 1).generation == g2


def test_generations_are_unique_across_endpoints_and_buffers():
    table = ResidencyTable(budget_bytes=1 << 20)
    a, b = Ep("A"), Ep("B")
    gens = {
        table.record(a, 1, 0, 8, 0),
        table.record(a, 2, 0, 8, 0),
        table.record(b, 1, 0, 8, 0),
        table.record(b, 2, 0, 8, 0),
    }
    assert len(gens) == 4


def test_next_tick_is_monotonic():
    table = ResidencyTable(budget_bytes=1 << 20)
    ticks = [table.next_tick() for _ in range(5)]
    assert ticks == sorted(ticks) and len(set(ticks)) == 5


# ---------------------------------------------------------------------------
# ResidencyTable: eviction
# ---------------------------------------------------------------------------


def test_evict_under_budget_is_a_noop():
    table = ResidencyTable(budget_bytes=128)
    ep = Ep("A")
    table.record(ep, 1, 0, 64, version=0)
    assert table.evict_over_budget(ep, protect_tick=table.next_tick()) == []
    assert table.stats["evictions"] == 0


def test_evict_drops_lru_first():
    table = ResidencyTable(budget_bytes=96)
    ep = Ep("A")
    g1 = table.record(ep, 1, 0, 64, version=0)  # oldest tick
    table.record(ep, 2, 0, 64, version=0)
    protect = table.next_tick()
    evicted = table.evict_over_budget(ep, protect_tick=protect)
    assert evicted == [(1, g1)]
    assert table.entry(ep, 1) is None
    assert table.entry(ep, 2) is not None
    assert table.bytes_held(ep) == 64
    assert table.stats["evictions"] == 1
    assert table.stats["invalidations"] == 1


def test_lookup_refreshes_lru_rank():
    table = ResidencyTable(budget_bytes=96)
    ep = Ep("A")
    table.record(ep, 1, 0, 64, version=0)
    g2 = table.record(ep, 2, 0, 64, version=0)
    table.lookup(ep, 1, 0, 64, version=0)  # touch 1: now 2 is LRU
    evicted = table.evict_over_budget(ep, protect_tick=table.next_tick())
    assert evicted == [(2, g2)]


def test_evict_never_touches_the_chunk_being_encoded():
    table = ResidencyTable(budget_bytes=32)
    ep = Ep("A")
    table.record(ep, 1, 0, 64, version=0)
    protect = table.next_tick()
    # Entries recorded at/after protect_tick belong to the in-flight chunk:
    # a chunk larger than the whole budget must still dispatch.
    table.record(ep, 2, 0, 64, version=0)
    evicted = table.evict_over_budget(ep, protect_tick=protect)
    assert [buffer_id for buffer_id, _ in evicted] == [1]
    assert table.entry(ep, 2) is not None  # protected despite blowing budget
    assert table.bytes_held(ep) == 64


# ---------------------------------------------------------------------------
# ResidencyTable: note_write rules (the load-bearing part)
# ---------------------------------------------------------------------------


def test_write_upgrades_writer_entry_at_dispatch_generation():
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    gen = table.record(ep, 1, 0, 64, version=0)
    dropped = table.note_write(ep, gen, 1, (0, 32), prev_version=0, new_version=1)
    assert dropped == []
    assert table.entry(ep, 1).version == 1
    assert table.stats["write_upgrades"] == 1


def test_write_skips_upgrade_when_writer_backing_was_reshipped():
    """A generation mismatch means the writer's current backing was shipped
    *after* the writing chunk dispatched — it does not contain the write's
    bytes, so upgrading it would serve stale data.  Overlap drops it."""
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    stale_gen = table.record(ep, 1, 0, 64, version=0)
    table.record(ep, 1, 0, 64, version=0)  # re-ship: new generation
    dropped = table.note_write(
        ep, stale_gen, 1, (0, 32), prev_version=0, new_version=1
    )
    assert [(d[0], d[1]) for d in dropped] == [(ep, 1)]
    assert table.entry(ep, 1) is None
    assert table.stats["write_upgrades"] == 0


def test_write_drops_overlapping_entries_on_other_endpoints():
    table = ResidencyTable(budget_bytes=1 << 20)
    a, b = Ep("A"), Ep("B")
    ga = table.record(a, 1, 0, 64, version=0)
    gb = table.record(b, 1, 0, 64, version=0)
    dropped = table.note_write(a, ga, 1, (16, 48), prev_version=0, new_version=1)
    assert dropped == [(b, 1, gb)]
    assert table.entry(a, 1).version == 1
    assert table.entry(b, 1) is None
    assert table.bytes_held(b) == 0


def test_write_upgrades_disjoint_entries_on_other_endpoints():
    table = ResidencyTable(budget_bytes=1 << 20)
    a, b = Ep("A"), Ep("B")
    ga = table.record(a, 1, 0, 64, version=0)
    table.record(b, 1, 0, 16, version=0)  # disjoint from the write below
    dropped = table.note_write(a, ga, 1, (32, 64), prev_version=0, new_version=1)
    assert dropped == []
    assert table.entry(b, 1).version == 1  # bytes untouched -> still current


def test_write_leaves_stale_disjoint_entries_alone():
    table = ResidencyTable(budget_bytes=1 << 20)
    a, b = Ep("A"), Ep("B")
    table.record(b, 1, 0, 16, version=5)  # already stale vs prev=7
    ga = table.record(a, 1, 32, 64, version=7)
    dropped = table.note_write(a, ga, 1, (32, 64), prev_version=7, new_version=8)
    assert dropped == []
    entry = table.entry(b, 1)
    assert entry is not None and entry.version == 5  # NOT upgraded to 8


def test_write_drops_stale_overlapping_entries():
    table = ResidencyTable(budget_bytes=1 << 20)
    a, b = Ep("A"), Ep("B")
    gb = table.record(b, 1, 0, 64, version=5)  # stale vs prev=7
    ga = table.record(a, 1, 0, 64, version=7)
    dropped = table.note_write(a, ga, 1, (0, 32), prev_version=7, new_version=8)
    assert dropped == [(b, 1, gb)]


def test_write_with_unknown_dispatch_generation_is_conservative():
    """``dispatch_generation=None`` (duplicate result, unknown origin)
    must never upgrade the writer's entry — overlap drops it instead."""
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    gen = table.record(ep, 1, 0, 64, version=0)
    dropped = table.note_write(ep, None, 1, (0, 32), prev_version=0, new_version=1)
    assert dropped == [(ep, 1, gen)]
    assert table.entry(ep, 1) is None


def test_write_to_unrelated_buffer_touches_nothing():
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    table.record(ep, 1, 0, 64, version=0)
    dropped = table.note_write(ep, None, 2, (0, 64), prev_version=0, new_version=1)
    assert dropped == []
    assert table.entry(ep, 1).version == 0


# ---------------------------------------------------------------------------
# ResidencyTable: failure + placement scoring
# ---------------------------------------------------------------------------


def test_drop_endpoint_forgets_everything():
    table = ResidencyTable(budget_bytes=1 << 20)
    a, b = Ep("A"), Ep("B")
    table.record(a, 1, 0, 64, version=0)
    table.record(b, 1, 0, 64, version=0)
    table.drop_endpoint(a)
    assert table.entry(a, 1) is None
    assert table.bytes_held(a) == 0
    assert table.entry(b, 1) is not None  # other endpoints untouched
    table.drop_endpoint(a)  # idempotent


def test_score_counts_overlap_of_current_entries_only():
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    table.record(ep, 1, 0, 64, version=3)
    table.record(ep, 2, 0, 64, version=1)
    wanted = [
        (1, 32, 96, 3),  # half-overlaps the resident [0, 64) span -> 32
        (2, 0, 64, 2),  # version mismatch -> 0
        (3, 0, 64, 0),  # not resident -> 0
    ]
    assert table.score(ep, wanted) == 32
    assert table.score(Ep("cold"), wanted) == 0


def test_score_is_a_pure_read():
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    table.record(ep, 1, 0, 64, version=0)
    before = dict(table.stats)
    tick = table.entry(ep, 1).tick
    table.score(ep, [(1, 0, 64, 0)])
    assert table.stats == before
    assert table.entry(ep, 1).tick == tick


def test_write_rules_compose_across_three_endpoints():
    """One commit, three endpoints: writer upgrades, the overlapping
    reader drops, the disjoint reader upgrades — all in one note_write."""
    table = ResidencyTable(budget_bytes=1 << 20)
    a, b, c = Ep("A"), Ep("B"), Ep("C")
    ga = table.record(a, 1, 0, 64, version=0)
    gb = table.record(b, 1, 16, 48, version=0)
    table.record(c, 1, 48, 64, version=0)
    dropped = table.note_write(a, ga, 1, (0, 32), prev_version=0, new_version=1)
    assert dropped == [(b, 1, gb)]
    assert table.entry(a, 1).version == 1
    assert table.entry(b, 1) is None
    assert table.entry(c, 1).version == 1


def test_evict_keeps_dropping_until_under_budget():
    table = ResidencyTable(budget_bytes=70)
    ep = Ep("A")
    g1 = table.record(ep, 1, 0, 64, version=0)
    g2 = table.record(ep, 2, 0, 64, version=0)
    table.record(ep, 3, 0, 64, version=0)
    evicted = table.evict_over_budget(ep, protect_tick=table.next_tick())
    assert evicted == [(1, g1), (2, g2)]  # two LRU victims, oldest first
    assert table.bytes_held(ep) == 64


def test_score_sums_across_buffers():
    table = ResidencyTable(budget_bytes=1 << 20)
    ep = Ep("A")
    table.record(ep, 1, 0, 32, version=0)
    table.record(ep, 2, 0, 16, version=4)
    wanted = [(1, 0, 32, 0), (2, 0, 32, 4)]
    assert table.score(ep, wanted) == 32 + 16


# ---------------------------------------------------------------------------
# WorkerBufferCache
# ---------------------------------------------------------------------------


def test_worker_cache_put_get_and_sizes():
    cache = WorkerBufferCache()
    assert len(cache) == 0 and cache.nbytes == 0
    backing = np.zeros(32, dtype=np.uint8)
    cache.put(1, backing, start=0, generation=7)
    got = cache.get(1)
    assert got is not None and got.backing is backing and got.generation == 7
    assert len(cache) == 1 and cache.nbytes == 32
    assert cache.get(2) is None


def test_worker_cache_replace_reaccounts_nbytes():
    cache = WorkerBufferCache()
    cache.put(1, np.zeros(32, dtype=np.uint8), start=0, generation=1)
    cache.put(1, np.zeros(8, dtype=np.uint8), start=4, generation=2)
    assert len(cache) == 1 and cache.nbytes == 8
    assert cache.get(1).generation == 2


def test_worker_cache_invalidate_is_generation_guarded():
    cache = WorkerBufferCache()
    cache.put(1, np.zeros(8, dtype=np.uint8), start=0, generation=7)
    cache.invalidate([(1, 6)])  # aimed at a predecessor: no-op
    assert cache.get(1) is not None
    cache.invalidate([(1, 7), (2, 9)])  # right gen drops; unknown id ignored
    assert cache.get(1) is None
    cache.invalidate([(1, 7)])  # idempotent


# ---------------------------------------------------------------------------
# ChunkArena cached-form integration
# ---------------------------------------------------------------------------


def _full_ship(buffer_id: int, payload: bytes, gen: int, start: int = 0):
    return NetBuffer(buffer_id, start, payload, gen)


def test_arena_full_ship_populates_cache_then_cached_dispatch_serves_it():
    cache = WorkerBufferCache()
    ChunkArena((_full_ship(1, bytes(range(16)), gen=3),), cache=cache)
    arena = ChunkArena((NetBuffer(1, 0, None, 3),), cache=cache)
    backing, start = arena._bases[1]
    assert start == 0
    assert bytes(backing) == bytes(range(16))


def test_arena_cached_dispatch_without_entry_is_a_protocol_error():
    with pytest.raises(WireProtocolError):
        ChunkArena((NetBuffer(1, 0, None, 3),), cache=WorkerBufferCache())


def test_arena_cached_dispatch_with_wrong_generation_is_a_protocol_error():
    cache = WorkerBufferCache()
    ChunkArena((_full_ship(1, bytes(16), gen=3),), cache=cache)
    with pytest.raises(WireProtocolError):
        ChunkArena((NetBuffer(1, 0, None, 2),), cache=cache)


def test_arena_cached_dispatch_without_cache_is_a_protocol_error():
    """A residency-off worker receiving a cached dispatch fails loudly."""
    with pytest.raises(WireProtocolError):
        ChunkArena((NetBuffer(1, 0, None, 3),), cache=None)


def test_arena_writes_land_in_the_cached_backing():
    cache = WorkerBufferCache()
    arena = ChunkArena((_full_ship(1, bytes(16), gen=3),), cache=cache)
    backing, _ = arena._bases[1]
    backing[4:8] = 0xAB
    assert bytes(cache.get(1).backing[4:8]) == b"\xab" * 4


def test_arena_reship_replaces_the_cached_backing():
    cache = WorkerBufferCache()
    ChunkArena((_full_ship(1, b"\x01" * 16, gen=3),), cache=cache)
    ChunkArena((_full_ship(1, b"\x02" * 16, gen=4),), cache=cache)
    entry = cache.get(1)
    assert entry.generation == 4
    assert bytes(entry.backing) == b"\x02" * 16


def test_span_bytes_copies_the_requested_window():
    base = np.arange(32, dtype=np.uint8)
    assert span_bytes(base, 4, 12) == bytes(range(4, 12))
    assert span_bytes(np.empty(0, dtype=np.uint8), 0, 0) == b""


# ---------------------------------------------------------------------------
# Placement: _next_cold_endpoint + _place on a harness
# ---------------------------------------------------------------------------


class _Harness:
    """NetworkExecutor's placement methods over hand-built state."""

    MAX_KEY_ROUTES = NetworkExecutor.MAX_KEY_ROUTES
    _place = NetworkExecutor._place
    _route_keys = NetworkExecutor._route_keys
    _wanted_spans = NetworkExecutor._wanted_spans
    _next_cold_endpoint = NetworkExecutor._next_cold_endpoint

    def __init__(self, n: int, residency: ResidencyTable | None = None):
        self._endpoints = [Ep(f"w{i}") for i in range(n)]
        self._rr_cursor = 0
        self._residency = residency
        self._key_routes: OrderedDict = OrderedDict()
        self.engine = None

    @property
    def live(self):
        return [ep for ep in self._endpoints if not ep.failed]


def test_cold_round_robin_cycles_the_fixed_pool():
    h = _Harness(3)
    order = [h._next_cold_endpoint(h.live).name for _ in range(6)]
    assert order == ["w0", "w1", "w2", "w0", "w1", "w2"]


def test_cold_round_robin_skips_failed_without_rebiasing():
    """The failover skew fix: killing an endpoint mid-sequence must not
    re-bias the survivors' rotation toward low indices (the old
    ``live[cursor % len(live)]`` did exactly that)."""
    h = _Harness(3)
    assert [h._next_cold_endpoint(h.live).name for _ in range(2)] == ["w0", "w1"]
    h._endpoints[1].failed = True
    # w2's turn is next in the fixed pool; a live-indexed cursor would have
    # jumped back to w0 here.
    after = [h._next_cold_endpoint(h.live).name for _ in range(4)]
    assert after == ["w2", "w0", "w2", "w0"]


def test_place_single_live_endpoint_short_circuits():
    h = _Harness(3)
    h._endpoints[0].failed = True
    h._endpoints[2].failed = True
    assert h._place([], h.live).name == "w1"
    assert h._rr_cursor == 0  # no cursor burn on the shortcut


def test_place_prefers_the_residency_warm_endpoint():
    table = ResidencyTable(budget_bytes=1 << 20)
    h = _Harness(3, residency=table)
    table.record(h._endpoints[2], 1, 0, 64, version=0)
    h._wanted_spans = lambda tasks: [(1, 0, 64, 0)]
    assert h._place([object()], h.live).name == "w2"


def test_place_residency_tie_breaks_in_pool_order():
    """Equal non-zero scores: the first live endpoint wins, deterministically."""
    table = ResidencyTable(budget_bytes=1 << 20)
    h = _Harness(3, residency=table)
    table.record(h._endpoints[1], 1, 0, 64, version=0)
    table.record(h._endpoints[2], 1, 0, 64, version=0)
    h._wanted_spans = lambda tasks: [(1, 0, 64, 0)]
    for _ in range(3):
        assert h._place([object()], h.live).name == "w1"


def test_place_zero_score_falls_back_to_round_robin():
    table = ResidencyTable(budget_bytes=1 << 20)
    h = _Harness(3, residency=table)
    h._wanted_spans = lambda tasks: [(1, 0, 64, 0)]  # nothing resident
    assert h._place([object()], h.live).name == "w0"
    assert h._place([object()], h.live).name == "w1"


def test_place_key_affinity_beats_residency():
    table = ResidencyTable(budget_bytes=1 << 20)
    h = _Harness(3, residency=table)
    table.record(h._endpoints[2], 1, 0, 64, version=0)  # w2 is byte-warm
    h._wanted_spans = lambda tasks: [(1, 0, 64, 0)]
    h._route_keys = lambda tasks: (("square", 0xBEEF, 1.0),)
    h._key_routes[("square", 0xBEEF, 1.0)] = h._endpoints[1]
    assert h._place([object()], h.live).name == "w1"


def test_place_ignores_routes_to_failed_endpoints():
    h = _Harness(3)
    h._route_keys = lambda tasks: (("square", 0xBEEF, 1.0),)
    h._key_routes[("square", 0xBEEF, 1.0)] = h._endpoints[1]
    h._endpoints[1].failed = True
    chosen = h._place([object()], h.live)
    assert chosen.name == "w0"  # cold fallback
    # ... and the key is re-pinned to the new home.
    assert h._key_routes[("square", 0xBEEF, 1.0)] is chosen


def test_place_records_routes_and_caps_them_lru():
    h = _Harness(2)
    h.MAX_KEY_ROUTES = 4
    for i in range(6):
        h._route_keys = lambda tasks, i=i: ((f"t{i}", i, 1.0),)
        h._place([object()], h.live)
    assert len(h._key_routes) == 4
    assert ("t0", 0, 1.0) not in h._key_routes  # oldest evicted
    assert ("t5", 5, 1.0) in h._key_routes


def test_place_same_key_sticks_to_first_home():
    """The twin-coalescing property itself, in isolation: repeated chunks
    carrying one ATM key land on the endpoint that saw the key first."""
    h = _Harness(3)
    h._route_keys = lambda tasks: (("square", 0xF00D, 1.0),)
    first = h._place([object()], h.live)
    for _ in range(5):
        assert h._place([object()], h.live) is first


# ---------------------------------------------------------------------------
# Hypothesis: random interleavings keep worker views bit-identical
# ---------------------------------------------------------------------------

BUF_SIZE = 64
N_BUFFERS = 2
N_ENDPOINTS = 2

_span = (
    st.tuples(st.integers(0, BUF_SIZE), st.integers(0, BUF_SIZE))
    .filter(lambda t: t[0] != t[1])
    .map(lambda t: (min(t), max(t)))
)
_buf = st.integers(0, N_BUFFERS - 1)
_ep = st.integers(0, N_ENDPOINTS - 1)
_value = st.integers(0, 255)

_dispatch = st.tuples(
    st.just("dispatch"),
    _ep,
    st.lists(st.tuples(_buf, _span), min_size=1, max_size=2),
    st.one_of(st.none(), st.tuples(_span, _value)),
)
_parent_write = st.tuples(st.just("parent_write"), _buf, _span, _value)
_fail = st.tuples(st.just("fail"), _ep)

_ops = st.lists(
    st.one_of(_dispatch, _dispatch, _dispatch, _parent_write, _fail),
    min_size=1,
    max_size=40,
)


class _Model:
    """Serial parent+workers model of the full residency dispatch cycle.

    Mirrors the executor's exact sequencing per chunk: tick, lookup/record
    per buffer, budget eviction, frame to the worker (ChunkArena build),
    eviction invalidates (FIFO: after the chunk), task execution, then the
    write-commit (parent copy-back, version bump, note_write, invalidate
    fan-out).  Every dispatch asserts the served bytes match the parent.
    """

    def __init__(self, budget: int) -> None:
        self.table = ResidencyTable(budget_bytes=budget)
        self.endpoints = [Ep(f"w{i}") for i in range(N_ENDPOINTS)]
        self.caches = {ep: WorkerBufferCache() for ep in self.endpoints}
        self.parent = [
            np.arange(i, i + BUF_SIZE, dtype=np.uint8) for i in range(N_BUFFERS)
        ]
        self.versions = [0] * N_BUFFERS
        self._next_version = 100

    def bump_version(self, buffer_id: int) -> tuple[int, int]:
        prev = self.versions[buffer_id]
        self._next_version += 1
        self.versions[buffer_id] = self._next_version
        return prev, self._next_version

    def dispatch(self, ep_index, spans, write) -> None:
        ep = self.endpoints[ep_index]
        cache = self.caches[ep]
        # Coalesce duplicate buffers the way ChunkEncoder merges spans.
        merged: dict[int, tuple[int, int]] = {}
        for buffer_id, (start, end) in spans:
            if buffer_id in merged:
                old = merged[buffer_id]
                merged[buffer_id] = (min(old[0], start), max(old[1], end))
            else:
                merged[buffer_id] = (start, end)
        tick0 = self.table.next_tick()
        netbufs, dispatch_gens = [], {}
        for buffer_id, (start, end) in merged.items():
            version = self.versions[buffer_id]
            entry = self.table.lookup(ep, buffer_id, start, end, version)
            if entry is not None:
                netbufs.append(NetBuffer(buffer_id, entry.start, None, entry.generation))
                dispatch_gens[buffer_id] = entry.generation
            else:
                gen = self.table.record(ep, buffer_id, start, end, version)
                payload = span_bytes(self.parent[buffer_id], start, end)
                netbufs.append(NetBuffer(buffer_id, start, payload, gen))
                dispatch_gens[buffer_id] = gen
        evicted = self.table.evict_over_budget(ep, protect_tick=tick0)
        arena = ChunkArena(tuple(netbufs), cache=cache)  # the chunk frame
        cache.invalidate(evicted)  # FIFO: invalidate rides behind the chunk
        # THE PROPERTY: the bytes the worker serves every task are the
        # parent's bytes, whatever interleaving led here.
        for buffer_id, (start, end) in merged.items():
            backing, base_start = arena._bases[buffer_id]
            served = bytes(backing[start - base_start : end - base_start])
            assert served == self.parent[buffer_id][start:end].tobytes(), (
                f"worker {ep.name} served stale bytes of buffer {buffer_id} "
                f"[{start}:{end})"
            )
        if write is not None:
            (raw_start, raw_end), value = write
            # Clamp the write inside the chunk's span of its first buffer —
            # workers only ever write within regions they were shipped.
            buffer_id, (start, end) = next(iter(merged.items()))
            w_start = min(max(raw_start, start), end)
            w_end = min(max(raw_end, start), end)
            if w_end <= w_start:
                return
            backing, base_start = arena._bases[buffer_id]
            backing[w_start - base_start : w_end - base_start] = value
            # Result message: parent applies the write and commits it.
            self.parent[buffer_id][w_start:w_end] = value
            prev, new = self.bump_version(buffer_id)
            dropped = self.table.note_write(
                ep, dispatch_gens.get(buffer_id), buffer_id,
                (w_start, w_end), prev, new,
            )
            by_endpoint: dict[Ep, list[tuple[int, int]]] = {}
            for dep, dbuf, dgen in dropped:
                by_endpoint.setdefault(dep, []).append((dbuf, dgen))
            for dep, pairs in by_endpoint.items():
                self.caches[dep].invalidate(pairs)

    def parent_write(self, buffer_id, span, value) -> None:
        """An unknown writer (copy_from, another backend): no note_write —
        entries silently go stale and must re-ship on next touch."""
        start, end = span
        self.parent[buffer_id][start:end] = value
        self.bump_version(buffer_id)

    def fail(self, ep_index) -> None:
        ep = self.endpoints[ep_index]
        self.table.drop_endpoint(ep)
        self.caches[ep] = WorkerBufferCache()  # the worker died with its cache

    def audit(self) -> None:
        """Parent-authoritative coherence: every entry the table still
        calls *current* describes a worker backing that is bit-identical
        to the parent over the entry's span, at the entry's generation."""
        for ep in self.endpoints:
            held = 0
            for buffer_id in range(N_BUFFERS):
                entry = self.table.entry(ep, buffer_id)
                if entry is None:
                    continue
                held += entry.nbytes
                if entry.version != self.versions[buffer_id]:
                    continue  # stale: allowed, will re-ship on next touch
                cached = self.caches[ep].get(buffer_id)
                assert cached is not None, (
                    f"{ep.name} table entry for buffer {buffer_id} has no "
                    f"worker backing"
                )
                assert cached.generation == entry.generation
                lo = entry.start - cached.start
                view = bytes(cached.backing[lo : lo + entry.nbytes])
                assert view == self.parent[buffer_id][entry.start:entry.end].tobytes()
            assert held == self.table.bytes_held(ep)  # accounting invariant


@settings(max_examples=200, deadline=None)
@given(ops=_ops, budget=st.sampled_from([24, 48, 1 << 20]))
def test_random_interleavings_never_serve_stale_bytes(ops, budget):
    model = _Model(budget)
    for op in ops:
        if op[0] == "dispatch":
            model.dispatch(op[1], op[2], op[3])
        elif op[0] == "parent_write":
            model.parent_write(op[1], op[2], op[3])
        else:
            model.fail(op[1])
        model.audit()


@settings(max_examples=100, deadline=None)
@given(ops=_ops)
def test_tiny_budget_still_serves_correct_bytes(ops):
    """Budget 1: every chunk evicts everything older — residency degrades
    to ship-always but must never corrupt."""
    model = _Model(budget=1)
    for op in ops:
        if op[0] == "dispatch":
            model.dispatch(op[1], op[2], op[3])
        elif op[0] == "parent_write":
            model.parent_write(op[1], op[2], op[3])
        else:
            model.fail(op[1])
    model.audit()
