"""Ready-queue statistics consistency under concurrent churn.

Invariants (relied on by Figure 8 and the perf harness):

* after a full drain ``total_pushes == total_pops == tasks`` — batched
  pushes (``push_many``) count every member exactly once;
* ``max_depth`` is sane: at least 1 once anything was queued, never more
  than the number of tasks ever pushed;
* no task is lost or duplicated across FIFO / LIFO / work-stealing queues.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.runtime.data import Out
from repro.runtime.ready_queue import (
    FIFOReadyQueue,
    LIFOReadyQueue,
    WorkStealingDeques,
)
from repro.runtime.task import Task, TaskType

TT = TaskType("rq-stats")


def make_tasks(n):
    return [
        Task(task_type=TT, function=lambda: None,
             accesses=[Out(np.zeros(2))], task_id=i)
        for i in range(n)
    ]


def make_queue(kind: str, workers: int = 4):
    if kind == "fifo":
        return FIFOReadyQueue()
    if kind == "lifo":
        return LIFOReadyQueue()
    return WorkStealingDeques(workers, seed=7)


QUEUE_KINDS = ("fifo", "lifo", "work_stealing")


class TestSerialConsistency:
    @pytest.mark.parametrize("kind", QUEUE_KINDS)
    def test_push_many_counts_every_member(self, kind):
        queue = make_queue(kind)
        tasks = make_tasks(10)
        queue.push_many(tasks[:6], worker_hints=list(range(6)))
        for task in tasks[6:]:
            queue.push(task, worker_hint=task.task_id)
        assert queue.stats.total_pushes == 10
        assert len(queue) == 10
        popped = []
        for worker in range(32):
            while (task := queue.pop(worker % 4)) is not None:
                popped.append(task)
        assert queue.stats.total_pops == 10
        assert sorted(t.task_id for t in popped) == list(range(10))
        assert 1 <= queue.stats.max_depth <= 10

    @pytest.mark.parametrize("kind", QUEUE_KINDS)
    def test_push_many_empty_batch_is_noop(self, kind):
        queue = make_queue(kind)
        queue.push_many([])
        assert queue.stats.total_pushes == 0
        assert queue.stats.max_depth == 0

    def test_fifo_push_many_preserves_service_order(self):
        queue = FIFOReadyQueue()
        tasks = make_tasks(8)
        queue.push_many(tasks[:4])
        queue.push_many(tasks[4:])
        order = [queue.pop().task_id for _ in range(8)]
        assert order == list(range(8))

    def test_lifo_push_many_matches_per_task_pushes(self):
        batched, singly = LIFOReadyQueue(), LIFOReadyQueue()
        tasks = make_tasks(6)
        batched.push_many(tasks)
        for task in tasks:
            singly.push(task)
        assert [batched.pop().task_id for _ in range(6)] == \
               [singly.pop().task_id for _ in range(6)]

    def test_work_stealing_push_many_placement_matches_hints(self):
        queue = WorkStealingDeques(4, seed=3)
        tasks = make_tasks(8)
        queue.push_many(tasks, worker_hints=[t.task_id for t in tasks])
        # Own-deque pops (no stealing needed) must find exactly the tasks
        # hinted onto each worker, tail-first.
        assert queue.pop(1).task_id == 5
        assert queue.pop(1).task_id == 1
        assert queue.pop(3).task_id == 7
        assert queue.stats.total_pops == 3


class TestLegacyQueueCompatibility:
    def test_scheduler_tasks_ready_without_push_many(self):
        """Custom queues registered through the public scheduler seam that
        implement only the pre-batch interface (push/pop/__len__) must keep
        working: tasks_ready degrades to per-task pushes."""
        from repro.runtime.scheduler import Scheduler

        class LegacyQueue:
            def __init__(self):
                self.pushed = []

            def push(self, task, worker_hint=None):
                self.pushed.append((task, worker_hint))

            def pop(self, worker_id=0):
                return self.pushed.pop(0)[0] if self.pushed else None

            def __len__(self):
                return len(self.pushed)

        queue = LegacyQueue()
        scheduler = Scheduler(queue)
        tasks = make_tasks(3)
        scheduler.tasks_ready(tasks, worker_hints=[7, 8, 9])
        assert [(t.task_id, h) for t, h in queue.pushed] == \
               [(0, 7), (1, 8), (2, 9)]


class TestThreadedChurn:
    @pytest.mark.parametrize("kind", QUEUE_KINDS)
    def test_pushes_equal_pops_under_concurrent_churn(self, kind):
        workers = 4
        per_pusher = 200
        pushers = 3
        total = pushers * per_pusher
        queue = make_queue(kind, workers)
        popped: list[list[Task]] = [[] for _ in range(workers)]
        stop = threading.Event()

        def pusher(pusher_id: int) -> None:
            tasks = make_tasks(per_pusher)
            for lo in range(0, per_pusher, 16):
                chunk = tasks[lo:lo + 16]
                if lo % 32:
                    for offset, task in enumerate(chunk):
                        queue.push(task, worker_hint=lo + offset)
                else:
                    queue.push_many(
                        chunk, worker_hints=list(range(lo, lo + len(chunk)))
                    )

        def popper(worker_id: int) -> None:
            sink = popped[worker_id]
            while not stop.is_set():
                task = queue.pop(worker_id)
                if task is not None:
                    sink.append(task)

        popper_threads = [
            threading.Thread(target=popper, args=(i,), daemon=True)
            for i in range(workers)
        ]
        pusher_threads = [
            threading.Thread(target=pusher, args=(i,), daemon=True)
            for i in range(pushers)
        ]
        for thread in popper_threads + pusher_threads:
            thread.start()
        for thread in pusher_threads:
            thread.join(timeout=30.0)
        deadline = threading.Event()
        for _ in range(2000):
            if sum(len(s) for s in popped) == total:
                break
            deadline.wait(0.005)
        stop.set()
        for thread in popper_threads:
            thread.join(timeout=5.0)

        assert sum(len(s) for s in popped) == total, "tasks lost or stuck"
        assert queue.stats.total_pushes == total
        assert queue.stats.total_pops == total
        assert 1 <= queue.stats.max_depth <= total
        # No duplication: every pushed Task object drained exactly once.
        seen = [id(t) for sink in popped for t in sink]
        assert len(seen) == len(set(seen))
