"""Tests for the user-facing submission lifecycle (Session surface)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.exceptions import RuntimeStateError
from repro.runtime.data import In, Out
from repro.runtime.task import TaskType
from repro.session import Session

from tests.conftest import make_serial_runtime


class TestSubmissionLifecycle:
    def test_submit_and_wait(self):
        runtime = make_serial_runtime()
        src, dst = np.arange(4.0), np.zeros(4)
        tt = TaskType("copy")
        runtime.submit(tt, lambda s, d: d.__setitem__(slice(None), s),
                       accesses=[In(src), Out(dst)], args=(src, dst))
        result = runtime.wait_all()
        assert dst.tolist() == src.tolist()
        assert result.tasks_completed == 1

    def test_task_count(self):
        runtime = make_serial_runtime()
        tt = TaskType("noop")
        for _ in range(3):
            runtime.submit(tt, lambda: None, accesses=[Out(np.zeros(1))])
        assert runtime.task_count == 3

    def test_finish_closes_runtime(self):
        runtime = make_serial_runtime()
        tt = TaskType("noop")
        runtime.submit(tt, lambda: None, accesses=[Out(np.zeros(1))])
        runtime.finish()
        with pytest.raises(RuntimeStateError):
            runtime.submit(tt, lambda: None, accesses=[Out(np.zeros(1))])
        with pytest.raises(RuntimeStateError):
            runtime.wait_all()

    def test_context_manager_finishes_on_exit(self):
        data = np.zeros(1)
        tt = TaskType("inc")
        with make_serial_runtime() as runtime:
            runtime.submit(tt, lambda d: d.__setitem__(0, 1.0),
                           accesses=[Out(data)], args=(data,))
        assert data[0] == 1.0

    def test_multiple_barriers(self):
        runtime = make_serial_runtime()
        data = np.zeros(1)
        tt = TaskType("inc2")

        def bump(d):
            d[0] += 1

        runtime.submit(tt, bump, accesses=[Out(data)], args=(data,))
        first = runtime.wait_all()
        runtime.submit(tt, bump, accesses=[Out(data)], args=(data,))
        second = runtime.wait_all()
        assert data[0] == 2.0
        assert second.tasks_completed == 2 >= first.tasks_completed

    def test_default_executor_is_serial(self):
        session = Session()
        assert session.executor is not None
        # Reading .result before any barrier is a state error, not a silent
        # zeroed result (see repro.session.Session.result).
        with pytest.raises(RuntimeStateError):
            session.result
        assert session.wait_all().tasks_completed == 0
        assert session.result.tasks_completed == 0

    def test_result_before_any_drain_raises(self):
        runtime = make_serial_runtime()
        tt = TaskType("noop")
        runtime.submit(tt, lambda: None, accesses=[Out(np.zeros(1))])
        with pytest.raises(RuntimeStateError, match="wait_all"):
            runtime.result
        runtime.finish()
        assert runtime.result.tasks_completed == 1

    def test_wait_all_after_finish_raises_clearly(self):
        runtime = make_serial_runtime()
        runtime.finish()
        with pytest.raises(RuntimeStateError, match="finished"):
            runtime.wait_all()
        with pytest.raises(RuntimeStateError, match="finished"):
            runtime.finish()


class TestSessionTaskDecorator:
    def test_decorated_calls_submit_and_finish_executes(self):
        a, b = np.ones(3), np.zeros(3)
        with Session() as session:
            @session.task(memoizable=True)
            def double(src: In, dst: Out):
                dst[:] = 2 * src

            double(a, b)
        assert b.tolist() == [2.0, 2.0, 2.0]

    def test_decorator_exposes_task_type(self):
        with Session() as session:
            @session.task(name="exposed")
            def noop(dst: Out):
                dst[:] = 0.0

            assert noop.task_type.name == "exposed"
            noop(np.zeros(1))
