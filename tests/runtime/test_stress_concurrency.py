"""Concurrency stress: wide fan-out, high memoization churn, 8+ workers.

The graph is a wide fan-out with deliberately nasty THT geometry (a single
bucket of capacity 2 against 8 distinct input patterns), so entries are
continuously evicted and re-inserted while 8 workers race on lookups,
commits and (threaded) in-flight deferrals.

Asserted invariants, for both :class:`ThreadedExecutor` and
:class:`ProcessExecutor`:

* the drain finishes inside a bounded wall-clock window and never raises
  :class:`RuntimeStateError` (no worker starvation, no lost completion);
* every task completes exactly once and the accounting partitions
  (``executed + memoized + deferred == completed``);
* the per-bucket THT counter totals match the completed eligible tasks:
  each eligible task performs exactly one THT probe, so
  ``hits + misses == eligible tasks`` even across eviction churn — for the
  process backend this holds on the *merged* parent counters.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.atm.engine import ATMEngine
from repro.atm.policy import StaticATMPolicy
from repro.common.config import ATMConfig, RuntimeConfig
from repro.session import Session
from repro.runtime.data import In, Out
from repro.runtime.executor import ThreadedExecutor
from repro.runtime.mp_executor import ProcessExecutor
from repro.runtime.task import TaskType

WORKERS = 8
PATTERNS = 8          # distinct inputs; 4x the THT capacity below
FAN_OUT = 320         # consumer tasks, all independent (wide ready queue)
WALL_CLOCK_LIMIT = 120.0


def fill_pattern(dst, value):
    dst[:] = value


def consume(src, dst):
    dst[:] = np.sqrt(np.abs(src)) + src


def churn_config() -> ATMConfig:
    # One bucket, two entries: every third distinct pattern evicts one.
    return ATMConfig(tht_bucket_bits=0, tht_bucket_capacity=2)


def build_fanout(runtime: Session):
    produce_type = TaskType("stress_produce", memoizable=False)
    consume_type = TaskType("stress_consume", memoizable=True)
    sources = [np.zeros(64) for _ in range(PATTERNS)]
    outs = [np.zeros(64) for _ in range(FAN_OUT)]
    for index, source in enumerate(sources):
        runtime.submit(
            produce_type,
            fill_pattern,
            accesses=[Out(source)],
            args=(source, float(index + 1)),
        )
    for index, out in enumerate(outs):
        source = sources[index % PATTERNS]
        runtime.submit(
            consume_type,
            consume,
            accesses=[In(source), Out(out)],
            args=(source, out),
        )
    return sources, outs


def check_outputs(sources, outs):
    for index, out in enumerate(outs):
        expected = np.sqrt(np.abs(sources[index % PATTERNS])) + sources[index % PATTERNS]
        assert np.allclose(out, expected), f"consumer {index} produced wrong bytes"


@pytest.mark.parametrize("backend", ["threaded", "process"])
def test_stress_fanout_churn(backend):
    atm_config = churn_config()
    engine = ATMEngine(
        config=atm_config, policy=StaticATMPolicy(atm_config), num_threads=WORKERS
    )
    runtime_config = RuntimeConfig(num_threads=WORKERS, executor=backend)
    if backend == "threaded":
        executor = ThreadedExecutor(config=runtime_config, engine=engine)
    else:
        executor = ProcessExecutor(config=runtime_config, engine=engine)
    executor.DRAIN_TIMEOUT = WALL_CLOCK_LIMIT  # fail loudly instead of hanging

    runtime = Session(executor=executor)
    sources, outs = build_fanout(runtime)
    t0 = time.perf_counter()
    result = runtime.finish()  # raises RuntimeStateError on starvation/timeouts
    wall = time.perf_counter() - t0

    assert wall < WALL_CLOCK_LIMIT
    total = PATTERNS + FAN_OUT
    assert result.tasks_completed == total
    assert (
        result.tasks_executed + result.tasks_memoized + result.tasks_deferred
        == total
    )
    check_outputs(sources, outs)

    # One THT probe per eligible task, eviction churn notwithstanding.
    tht = engine.tht
    assert tht.hits + tht.misses == FAN_OUT
    assert engine.stats.tasks_seen == FAN_OUT
    assert tht.evictions > 0, "churn config should force continuous evictions"
    # Every avoided execution was fed from a real commit.
    assert engine.stats.memoized_tasks == result.tasks_memoized + result.tasks_deferred
