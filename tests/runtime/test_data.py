"""Tests for data regions and access annotations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.exceptions import TaskDefinitionError
from repro.runtime.data import (
    AccessMode,
    DataRegion,
    In,
    InOut,
    Out,
    as_region,
    total_bytes,
    validate_accesses,
)


class TestAccessMode:
    def test_in_reads_only(self):
        assert AccessMode.IN.reads and not AccessMode.IN.writes

    def test_out_writes_only(self):
        assert AccessMode.OUT.writes and not AccessMode.OUT.reads

    def test_inout_both(self):
        assert AccessMode.INOUT.reads and AccessMode.INOUT.writes


class TestDataRegion:
    def test_requires_numpy_array(self):
        with pytest.raises(TaskDefinitionError):
            DataRegion([1, 2, 3])

    def test_nbytes_and_shape(self):
        region = DataRegion(np.zeros((4, 4), dtype=np.float32))
        assert region.nbytes == 64
        assert region.shape == (4, 4)

    def test_views_of_same_buffer_share_base_id(self):
        base = np.zeros(100, dtype=np.float64)
        r1 = DataRegion(base[:50])
        r2 = DataRegion(base[50:])
        assert r1.base_id == r2.base_id
        assert not r1.overlaps(r2)

    def test_overlapping_views_detected(self):
        base = np.zeros(100, dtype=np.float64)
        r1 = DataRegion(base[:60])
        r2 = DataRegion(base[40:])
        assert r1.overlaps(r2)
        assert r2.overlaps(r1)

    def test_distinct_buffers_never_overlap(self):
        r1 = DataRegion(np.zeros(10))
        r2 = DataRegion(np.zeros(10))
        assert not r1.overlaps(r2)

    def test_reversed_view_interval_stays_inside_buffer(self):
        """Regression: a negative-stride view's data pointer addresses its
        first *logical* element (the highest address), so the interval must
        be anchored at the lowest touched byte, not extended upwards past
        the end of the buffer."""
        base = np.zeros(10, dtype=np.float64)
        reversed_region = DataRegion(base[::-1])
        assert reversed_region.byte_interval == (0, 80)
        assert reversed_region.overlaps(DataRegion(base[:5]))
        assert DataRegion(base[:5]).overlaps(reversed_region)
        tail = DataRegion(base[8:][::-1])
        assert tail.byte_interval == (64, 80)
        assert not tail.overlaps(DataRegion(base[:5]))

    def test_strided_1d_view_interval_covers_touched_bytes(self):
        """Regression: 1-D strided views used the contiguous formula
        (nbytes from the data pointer), under-covering the touched span."""
        base = np.zeros(10, dtype=np.float64)
        strided = DataRegion(base[::2])  # touches bytes 0..64+8
        assert strided.byte_interval == (0, 72)
        assert strided.overlaps(DataRegion(base[8:9]))  # byte 64..72

    def test_region_key_stable(self):
        base = np.zeros(16)
        assert DataRegion(base[4:8]).region_key == DataRegion(base[4:8]).region_key

    def test_copy_from_writes_through_to_application_memory(self):
        array = np.zeros(8)
        region = DataRegion(array)
        region.copy_from(np.arange(8, dtype=float))
        assert array.tolist() == list(range(8))

    def test_copy_from_reshapes(self):
        array = np.zeros((2, 4))
        DataRegion(array).copy_from(np.arange(8, dtype=float))
        assert array[1, 3] == 7.0

    def test_snapshot_is_independent_copy(self):
        array = np.arange(5, dtype=float)
        snap = DataRegion(array).snapshot()
        array[0] = 99.0
        assert snap[0] == 0.0

    def test_to_bytes_view_length(self):
        region = DataRegion(np.zeros(3, dtype=np.float64))
        assert region.to_bytes_view().shape == (24,)

    def test_non_contiguous_view_supported(self):
        base = np.zeros((8, 8), dtype=np.float32)
        column = base[:, 2]
        region = DataRegion(column)
        assert region.nbytes == 32
        assert region.to_bytes_view().size == 32

    def test_2d_block_of_4d_array_is_contiguous(self):
        blocks = np.zeros((2, 2, 4, 4), dtype=np.float32)
        region = DataRegion(blocks[1, 0])
        other = DataRegion(blocks[1, 1])
        assert not region.overlaps(other)


class TestAccessHelpers:
    def test_in_out_inout_modes(self):
        array = np.zeros(4)
        assert In(array).mode == AccessMode.IN
        assert Out(array).mode == AccessMode.OUT
        assert InOut(array).mode == AccessMode.INOUT

    def test_as_region_idempotent(self):
        region = DataRegion(np.zeros(4))
        assert as_region(region) is region

    def test_access_nbytes(self):
        assert In(np.zeros(4, dtype=np.float64)).nbytes == 32

    def test_named_region(self):
        assert In(np.zeros(2), name="weights").region.name == "weights"


class TestValidateAccesses:
    def test_conflicting_modes_rejected(self):
        array = np.zeros(4)
        with pytest.raises(TaskDefinitionError):
            validate_accesses([In(array), Out(array)])

    def test_duplicate_same_mode_allowed(self):
        array = np.zeros(4)
        validate_accesses([In(array), In(array)])

    def test_distinct_regions_allowed(self):
        validate_accesses([In(np.zeros(4)), Out(np.zeros(4))])


class TestTotalBytes:
    def test_sum_all(self):
        accesses = [In(np.zeros(4, dtype=np.float32)), Out(np.zeros(2, dtype=np.float64))]
        assert total_bytes(accesses) == 16 + 16

    def test_filter_by_mode(self):
        accesses = [In(np.zeros(4, dtype=np.float32)), Out(np.zeros(2, dtype=np.float64))]
        assert total_bytes(accesses, AccessMode.IN) == 16
        assert total_bytes(accesses, AccessMode.OUT) == 16


class TestRegionVersions:
    def test_fresh_region_has_stable_version(self):
        array = np.zeros(16)
        region = DataRegion(array)
        assert region.version == region.version

    def test_views_of_same_base_share_version(self):
        base = np.zeros(64)
        first, second = DataRegion(base[:32]), DataRegion(base[32:])
        assert first.version == second.version
        first.bump_version()
        assert first.version == second.version

    def test_bump_changes_version_monotonically(self):
        region = DataRegion(np.zeros(8))
        before = region.version
        bumped = region.bump_version()
        assert bumped > before
        assert region.version == bumped

    def test_copy_from_bumps_version(self):
        region = DataRegion(np.zeros(8))
        before = region.version
        region.copy_from(np.ones(8))
        assert region.version > before

    def test_version_token_reflects_identity_and_version(self):
        base = np.zeros(64)
        first, second = DataRegion(base[:32]), DataRegion(base[32:])
        assert first.version_token != second.version_token  # different intervals
        token_before = first.version_token
        first.bump_version()
        assert first.version_token != token_before

    def test_distinct_bases_have_distinct_histories(self):
        a, b = DataRegion(np.zeros(8)), DataRegion(np.zeros(8))
        va = a.bump_version()
        assert b.version != va

    def test_registry_autoremoves_collected_buffers(self):
        import gc

        from repro.runtime.data import region_versions

        region = DataRegion(np.zeros(8))
        _ = region.version
        key = region.base_id
        assert key in region_versions._entries
        del region
        gc.collect()
        # The weakref callback removed the dead entry — no prune() needed.
        assert key not in region_versions._entries

    def test_graph_completion_bumps_output_versions(self):
        from repro.runtime.graph import TaskDependenceGraph
        from repro.runtime.task import Task, TaskType

        graph = TaskDependenceGraph()
        buffer = np.zeros(16)
        access = Out(buffer)
        before = access.region.version
        task = Task(
            task_type=TaskType("vers-test"), function=lambda: None,
            accesses=[access], task_id=-1,
        )
        graph.add_task(task)
        graph.complete_task(task)
        assert access.region.version > before
