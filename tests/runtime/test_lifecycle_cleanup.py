"""Regression tests: executor resources are released on *every* exit path.

The seed's runtime handle only called ``finish()`` on ``__exit__`` when no
exception was in flight, so a raising ``with`` block leaked the process
backend's worker pool and its ``multiprocessing.shared_memory`` segments.
The Session lifecycle closes the executor on the error path too (without
draining), and ``finish()`` releases resources even when the drain raises.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.common.config import RuntimeConfig
from repro.common.exceptions import DrainAbortedError, RuntimeStateError
from repro.runtime.task import TaskType
from repro.session import Out, Session

SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR),
    reason="needs a POSIX shared-memory filesystem to observe segments",
)


def live_segments() -> set[str]:
    """Names of the currently mapped POSIX shared-memory segments."""
    return set(os.listdir(SHM_DIR))


def square_into(src: np.ndarray, dst: np.ndarray) -> None:
    """Module-level task body (the process backend pickles functions)."""
    dst[:] = src ** 2


def submit_square(session: Session, n: int = 3) -> list[np.ndarray]:
    outs = []
    tt = TaskType("leak_probe")
    for _ in range(n):
        src = np.arange(1024.0)
        dst = np.zeros(1024)
        session.submit(tt, square_into, accesses=[Out(dst)], args=(src, dst))
        outs.append(dst)
    return outs


class TestProcessBackendCleanup:
    def test_raising_with_block_leaves_no_segments(self):
        before = live_segments()
        with pytest.raises(RuntimeError, match="boom"):
            with Session(executor="process", cores=2) as session:
                submit_square(session)
                session.wait_all()  # drain so shared segments exist
                assert live_segments() - before, (
                    "expected the process backend to have mapped segments"
                )
                raise RuntimeError("boom")
        assert live_segments() - before == set(), (
            "raising with-block leaked shared-memory segments"
        )

    def test_raising_before_any_drain_leaves_no_segments(self):
        before = live_segments()
        with pytest.raises(RuntimeError):
            with Session(executor="process", cores=2) as session:
                submit_square(session)
                raise RuntimeError("early")
        assert live_segments() - before == set()

    def test_explicit_executor_instance_cleans_up_on_error_too(self):
        from repro.runtime.mp_executor import ProcessExecutor

        before = live_segments()
        config = RuntimeConfig(num_threads=2, executor="process")
        with pytest.raises(RuntimeError):
            with Session(executor=ProcessExecutor(config=config)) as session:
                submit_square(session)
                session.wait_all()
                raise RuntimeError("boom")
        assert live_segments() - before == set()

    def test_finish_releases_pool_and_result_survives(self):
        with Session(executor="process", cores=2) as session:
            outs = submit_square(session)
        assert session.result.tasks_completed == 3
        assert all(o[2] == 4.0 for o in outs)
        # the finalizer ran: the executor refuses further drains
        with pytest.raises(RuntimeStateError):
            session.executor.drain(session.graph)


class TestProcessBackendFailureCleanup:
    """Supervision failure paths must release resources like the happy path."""

    def test_aborted_drain_leaves_no_segments_or_children(self):
        import multiprocessing

        from repro.testing.faults import fault_session, raising_body, submit_one

        before = live_segments()
        with pytest.raises(DrainAbortedError):
            with fault_session("process") as session:
                submit_square(session)
                submit_one(session, raising_body, label="abort-leak")
                session.wait_all()
        assert live_segments() - before == set(), (
            "aborted process drain leaked shared-memory segments"
        )
        for child in multiprocessing.active_children():
            child.join(timeout=5.0)
        assert not any(
            c.name.startswith("repro-worker") and c.is_alive()
            for c in multiprocessing.active_children()
        ), "aborted process drain leaked live worker processes"

    def test_crashed_worker_quarantine_drain_leaves_no_segments_or_children(self):
        import multiprocessing

        from repro.testing.faults import (
            fault_session,
            kill_worker_body,
            submit_one,
        )

        before = live_segments()
        with fault_session(
            "process", on_task_failure="quarantine", allow_worker_kill=True,
            chunk_size=1,
        ) as session:
            submit_one(session, kill_worker_body, label="crash-leak")
            outs = submit_square(session)
            result = session.wait_all()
        assert result.tasks_failed == 1
        assert result.failures[0].error == "WorkerLostError"
        assert all(o[2] == 4.0 for o in outs)
        assert live_segments() - before == set(), (
            "crash-recovery drain leaked shared-memory segments"
        )
        for child in multiprocessing.active_children():
            child.join(timeout=5.0)
        assert not any(
            c.name.startswith("repro-worker") and c.is_alive()
            for c in multiprocessing.active_children()
        ), "crash-recovery drain leaked live worker processes"


class TestSerialErrorPath:
    def test_failing_task_still_closes_session(self):
        closed = []

        class Probe(Session):
            def close(self):
                closed.append(True)
                super().close()

        def explode():
            raise ValueError("task failure")

        # Supervision wraps the abort in DrainAbortedError; the original
        # ValueError stays visible in the message and as __cause__.
        with pytest.raises(DrainAbortedError, match="ValueError: task failure") as excinfo:
            with Probe() as session:
                session.submit(TaskType("boom"), explode,
                               accesses=[Out(np.zeros(1))])
        assert isinstance(excinfo.value.__cause__, ValueError)
        # finish() raised during drain but still marked the session closed
        assert not closed  # finish() path, not close(): exception came from drain
        with pytest.raises(RuntimeStateError):
            session.wait_all()
