"""Tests for the execution trace recorder."""

from __future__ import annotations

import pytest

from repro.runtime.trace import CoreState, StateInterval, TraceRecorder, render_ascii_trace


class TestTraceRecorder:
    def test_record_and_totals(self):
        trace = TraceRecorder()
        trace.record(0, CoreState.TASK_EXECUTION, 0.0, 2.0, "t#0")
        trace.record(0, CoreState.ATM_HASH, 2.0, 3.0, "t#1")
        trace.record(1, CoreState.TASK_EXECUTION, 0.0, 1.0, "t#2")
        totals = trace.state_totals()
        assert totals[CoreState.TASK_EXECUTION] == pytest.approx(3.0)
        assert totals[CoreState.ATM_HASH] == pytest.approx(1.0)

    def test_totals_per_core(self):
        trace = TraceRecorder()
        trace.record(0, CoreState.TASK_EXECUTION, 0.0, 2.0)
        trace.record(1, CoreState.TASK_EXECUTION, 0.0, 5.0)
        assert trace.state_totals(core=1)[CoreState.TASK_EXECUTION] == pytest.approx(5.0)

    def test_disabled_recorder_ignores_events(self):
        trace = TraceRecorder(enabled=False)
        trace.record(0, CoreState.TASK_EXECUTION, 0.0, 1.0)
        trace.sample_ready(0.0, 3)
        assert trace.intervals == []
        assert trace.ready_samples == []

    def test_zero_length_intervals_dropped(self):
        trace = TraceRecorder()
        trace.record(0, CoreState.IDLE, 1.0, 1.0)
        assert trace.intervals == []

    def test_span(self):
        trace = TraceRecorder()
        assert trace.span() == (0.0, 0.0)
        trace.record(0, CoreState.TASK_EXECUTION, 1.0, 4.0)
        trace.record(2, CoreState.TASK_EXECUTION, 0.5, 2.0)
        assert trace.span() == (0.5, 4.0)

    def test_cores(self):
        trace = TraceRecorder()
        trace.record(3, CoreState.IDLE, 0.0, 1.0)
        trace.record(1, CoreState.IDLE, 0.0, 1.0)
        assert trace.cores() == [1, 3]

    def test_mean_state_duration(self):
        trace = TraceRecorder()
        trace.record(0, CoreState.ATM_MEMOIZATION, 0.0, 1.0)
        trace.record(0, CoreState.ATM_MEMOIZATION, 1.0, 4.0)
        assert trace.mean_state_duration(CoreState.ATM_MEMOIZATION) == pytest.approx(2.0)
        assert trace.mean_state_duration(CoreState.ATM_HASH) == 0.0

    def test_ready_series_sorted(self):
        trace = TraceRecorder()
        trace.sample_ready(2.0, 5)
        trace.sample_ready(1.0, 3)
        assert trace.ready_depth_series() == [(1.0, 3), (2.0, 5)]
        assert trace.max_ready_depth() == 5

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(0, CoreState.IDLE, 0.0, 1.0)
        trace.sample_ready(0.0, 1)
        trace.clear()
        assert trace.intervals == [] and trace.ready_samples == []

    def test_interval_duration(self):
        interval = StateInterval(0, CoreState.TASK_EXECUTION, 1.0, 3.5)
        assert interval.duration == pytest.approx(2.5)


class TestAsciiRendering:
    def test_empty_trace(self):
        assert render_ascii_trace(TraceRecorder()) == "(empty trace)"

    def test_renders_one_line_per_core_plus_legend(self):
        trace = TraceRecorder()
        trace.record(0, CoreState.TASK_EXECUTION, 0.0, 10.0)
        trace.record(1, CoreState.ATM_MEMOIZATION, 0.0, 10.0)
        text = render_ascii_trace(trace, width=20)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "T" in lines[0]
        assert "M" in lines[1]
        assert lines[2].startswith("legend")

    def test_dominant_state_wins_bucket(self):
        trace = TraceRecorder()
        trace.record(0, CoreState.TASK_EXECUTION, 0.0, 9.0)
        trace.record(0, CoreState.ATM_HASH, 9.0, 10.0)
        text = render_ascii_trace(trace, width=10).splitlines()[0]
        assert text.count("T") >= 8
