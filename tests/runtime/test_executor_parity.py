"""Cross-executor parity matrix.

Every registered benchmark runs at ``WorkloadScale.TINY`` on the Serial,
Threaded, Process and Network (loopback transport) executors — the network
backend both with per-endpoint data residency (its default) and with
residency off (``net_residency=False``, the ship-everything protocol) —
with ATM off and with exact Static ATM — and must produce:

* **bit-identical output checksums** (the dependence graph plus exact
  ``p = 1.0`` keys make memoized copy-outs indistinguishable from
  re-execution, whatever the interleaving), and
* **identical ``tasks_memoized + tasks_executed`` accounting** (the IKT is
  disabled in the parity configuration, so the sum is order-independent:
  every completed task is exactly one of the two).

Where applicable (the deterministic discrete-event backend) the simulator is
included: its functional outputs must match the serial reference and its
*schedule checksum* — a digest of ``(task, core, start, finish)`` for every
task — must be reproducible run to run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import make_benchmark
from repro.apps.registry import BENCHMARK_NAMES
from repro.atm.engine import ATMEngine
from repro.atm.policy import StaticATMPolicy
from repro.common.config import ATMConfig, RuntimeConfig
from repro.common.hashing import hash_bytes
from repro.session import ReproConfig, Session
from repro.runtime.simulator import SimulatedExecutor

#: ``network-nores`` is the network backend with ``net_residency=False``:
#: the pre-residency ship-everything protocol must stay bit-compatible.
EXECUTORS = ("serial", "threaded", "process", "network", "network-nores")
MODES = ("none", "static")
#: Worker counts: serial is single by construction; threaded exercises the
#: shared-engine locking; the process pool stays at 2 to bound spawn cost;
#: the network backend runs 2 loopback workers (the default
#: ``net_endpoints="loopback"`` spawns ``cores`` in-process workers speaking
#: the real wire protocol over socketpairs).
WORKERS = {
    "serial": 1, "threaded": 4, "process": 2, "network": 2, "network-nores": 2,
}


def output_checksum(app) -> str:
    out = np.ascontiguousarray(np.asarray(app.output(), dtype=np.float64))
    return f"{hash_bytes(out):016x}"


def make_engine(mode: str, workers: int):
    if mode == "none":
        return None
    config = ATMConfig(use_ikt=False)
    return ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=workers)


def run_network_nores(app, workers: int, engine):
    """Run ``app`` on the network backend with residency switched off."""
    cfg = ReproConfig().with_overrides(
        runtime={
            "executor": "network",
            "num_threads": workers,
            "net_residency": False,
        }
    )
    with Session(cfg, engine=engine) as session:
        app.run(session)
    return session.result


def run_tiny(benchmark: str, executor: str, mode: str, workers: int | None = None):
    workers = WORKERS[executor] if workers is None else workers
    app = make_benchmark(benchmark, scale="tiny")
    engine = make_engine(mode, workers)
    if executor == "network-nores":
        result = run_network_nores(app, workers, engine)
    else:
        result = app.run_on(executor, cores=workers, engine=engine)
    return output_checksum(app), result


@pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
@pytest.mark.parametrize("mode", MODES)
def test_executor_parity(bench_name, mode):
    reference_checksum, reference = run_tiny(bench_name, "serial", mode)
    reference_sum = reference.tasks_memoized + reference.tasks_executed
    assert reference_sum == reference.tasks_completed  # no IKT -> no deferrals
    for executor in EXECUTORS[1:]:
        checksum, result = run_tiny(bench_name, executor, mode)
        assert checksum == reference_checksum, (
            f"{bench_name}: {executor}/{mode} output diverged from serial"
        )
        assert result.tasks_completed == reference.tasks_completed
        assert result.tasks_memoized + result.tasks_executed == reference_sum, (
            f"{bench_name}: {executor}/{mode} accounting diverged "
            f"({result.tasks_memoized}+{result.tasks_executed} != {reference_sum})"
        )
        if mode == "static" and reference.tasks_memoized > 0:
            # Non-vacuous reuse check: a backend whose memoization silently
            # broke must fail here.  With several workers, whether a repeated
            # task lands on the worker whose cold THT saw its twin is a pure
            # scheduling race (worker tables merge only at drain barriers),
            # so the worker-replicated backends' reuse is asserted on a
            # single-worker pool — one THT sees every repeat
            # deterministically — while the threaded backend shares one
            # engine and keeps the direct check.  (The multi-worker case is
            # pinned deterministically by test_two_worker_reuse_is_
            # deterministic_within_one_chunk below.)
            if executor in ("process", "network", "network-nores"):
                _, solo = run_tiny(bench_name, executor, mode, workers=1)
                assert solo.tasks_memoized > 0, (
                    f"{bench_name}: single-worker {executor}/static found no "
                    f"reuse although serial memoized "
                    f"{reference.tasks_memoized} tasks"
                )
            else:
                assert result.tasks_memoized > 0, (
                    f"{bench_name}: {executor}/static found no reuse although "
                    f"serial memoized {reference.tasks_memoized} tasks"
                )
        if mode == "none":
            assert result.tasks_memoized == 0
            assert result.tasks_executed == result.tasks_completed


def _run_twins(executor: str, chunk_size: int, n: int = 8):
    """Submit ``n`` same-key twin tasks (distinct buffers, identical
    content) on a 2-worker pool and return the drain result + sinks."""
    from tests.conftest import SQUARE_TYPE, square_body
    from repro.runtime.data import In, Out

    cfg = ReproConfig().with_overrides(
        runtime={
            "executor": executor,
            "num_threads": 2,
            "mp_workers": 2,
            "mp_chunk_size": chunk_size,
        }
    )
    engine = make_engine("static", 2)
    with Session(cfg, engine=engine) as session:
        sources = [np.full(16, 3.0) for _ in range(n)]
        sinks = [np.zeros(16) for _ in range(n)]
        with session.batch():
            for src, dst in zip(sources, sinks):
                session.submit(
                    SQUARE_TYPE, square_body,
                    accesses=[In(src), Out(dst)], args=(src, dst),
                )
        result = session.wait_all()
    return result, sinks


def test_two_worker_reuse_is_deterministic_within_one_chunk():
    """Pin of the PR 3 note (process backend): reuse at 2 workers is a
    scheduling race *only* across chunks.

    Whether a repeated task meets its twin's THT entry depends on which
    worker's table saw the twin — racy when twins land in different chunks
    (the process backend has no placement table to co-route them; the
    network backend fixes this at the root, see the test below).  Within
    one chunk it is deterministic: chunked dispatch sends the whole ready
    set to a single worker, whose serial execution guarantees every later
    twin hits the first one's commit.  Submitting all twins into one ready
    set with ``mp_chunk_size`` >= the set size therefore must memoize
    exactly ``n - 1`` tasks on a 2-worker pool, every run.
    """
    n = 8
    for _ in range(3):  # a race would need luck to pass three times
        result, sinks = _run_twins("process", chunk_size=64, n=n)
        assert result.tasks_completed == n
        assert result.tasks_memoized == n - 1, (
            f"process: expected deterministic reuse of {n - 1} twins in "
            f"one chunk, got {result.tasks_memoized}"
        )
        for dst in sinks:
            assert np.array_equal(dst, np.full(16, 9.0))


def test_network_twin_reuse_is_deterministic_across_chunks():
    """The two-worker reuse race, fixed at the root (since PR 7).

    With ``mp_chunk_size=2`` the eight twins ride four separate chunks —
    exactly the configuration whose reuse used to be a scheduling race
    (per-worker engine deltas only merge at the drain barrier, so twins on
    different endpoints both missed the THT).  The network backend's
    key-affinity placement now routes same-key chunks to the endpoint that
    saw the key first, so every later twin finds the first one's THT commit
    and the count is exact: ``n - 1`` memoized, every run.
    """
    n = 8
    for _ in range(3):  # the old race would need luck to pass three times
        result, sinks = _run_twins("network", chunk_size=2, n=n)
        assert result.tasks_completed == n
        assert result.tasks_memoized == n - 1, (
            f"network: expected deterministic cross-chunk reuse of {n - 1} "
            f"twins, got {result.tasks_memoized}"
        )
        for dst in sinks:
            assert np.array_equal(dst, np.full(16, 9.0))


def simulator_schedule_checksum(benchmark: str, mode: str) -> tuple[str, str]:
    """Run the simulated backend once; return (output, schedule) checksums."""
    workers = 4
    app = make_benchmark(benchmark, scale="tiny")
    executor = SimulatedExecutor(
        config=RuntimeConfig(num_threads=workers, executor="simulated"),
        engine=make_engine(mode, workers),
    )
    runtime = Session(executor=executor)
    app.run(runtime)
    schedule = np.asarray(
        [
            (task.task_id, task.executed_on, task.start_time, task.finish_time)
            for task in sorted(runtime.graph.tasks(), key=lambda t: t.task_id)
        ],
        dtype=np.float64,
    )
    return output_checksum(app), f"{hash_bytes(np.ascontiguousarray(schedule)):016x}"


@pytest.mark.parametrize("bench_name", ["blackscholes", "jacobi"])
def test_simulator_outputs_match_serial_and_schedule_is_deterministic(bench_name):
    serial_checksum, _ = run_tiny(bench_name, "serial", "static")
    out_first, sched_first = simulator_schedule_checksum(bench_name, "static")
    out_second, sched_second = simulator_schedule_checksum(bench_name, "static")
    assert out_first == serial_checksum
    assert out_second == serial_checksum
    assert sched_first == sched_second
