"""Tests for the dependence tracker (RAW / WAW / WAR over byte regions).

The indexed tracker returns predecessors as a deduplicated *list* (set
semantics without per-task set construction); tests compare via set().
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.data import In, InOut, Out
from repro.runtime.dependences import DependenceTracker
from repro.runtime.task import Task, TaskType

TT = TaskType("dep-test")


def make_task(accesses, task_id):
    return Task(task_type=TT, function=lambda: None, accesses=accesses, task_id=task_id)


class TestBasicDependences:
    def test_read_after_write(self):
        data = np.zeros(8)
        tracker = DependenceTracker()
        writer = make_task([Out(data)], 0)
        reader = make_task([In(data)], 1)
        assert set(tracker.dependences_for(writer)) == set()
        assert set(tracker.dependences_for(reader)) == {writer}

    def test_write_after_write(self):
        data = np.zeros(8)
        tracker = DependenceTracker()
        first = make_task([Out(data)], 0)
        second = make_task([Out(data)], 1)
        tracker.dependences_for(first)
        assert set(tracker.dependences_for(second)) == {first}

    def test_write_after_read(self):
        data = np.zeros(8)
        tracker = DependenceTracker()
        producer = make_task([Out(data)], 0)
        reader_a = make_task([In(data)], 1)
        reader_b = make_task([In(data)], 2)
        writer = make_task([Out(data)], 3)
        tracker.dependences_for(producer)
        tracker.dependences_for(reader_a)
        tracker.dependences_for(reader_b)
        deps = tracker.dependences_for(writer)
        assert reader_a in deps and reader_b in deps

    def test_independent_readers_share_no_dependence(self):
        data = np.zeros(8)
        tracker = DependenceTracker()
        r1 = make_task([In(data)], 0)
        r2 = make_task([In(data)], 1)
        tracker.dependences_for(r1)
        assert set(tracker.dependences_for(r2)) == set()

    def test_inout_does_not_depend_on_itself(self):
        data = np.zeros(8)
        tracker = DependenceTracker()
        task = make_task([InOut(data)], 0)
        assert set(tracker.dependences_for(task)) == set()

    def test_chain_of_inout_serialises(self):
        data = np.zeros(8)
        tracker = DependenceTracker()
        t0 = make_task([InOut(data)], 0)
        t1 = make_task([InOut(data)], 1)
        t2 = make_task([InOut(data)], 2)
        tracker.dependences_for(t0)
        assert set(tracker.dependences_for(t1)) == {t0}
        assert set(tracker.dependences_for(t2)) == {t1}


class TestRegionGranularity:
    def test_disjoint_blocks_are_independent(self):
        base = np.zeros(64)
        tracker = DependenceTracker()
        left = make_task([Out(base[:32])], 0)
        right = make_task([Out(base[32:])], 1)
        tracker.dependences_for(left)
        assert set(tracker.dependences_for(right)) == set()

    def test_overlapping_blocks_conflict(self):
        base = np.zeros(64)
        tracker = DependenceTracker()
        left = make_task([Out(base[:40])], 0)
        right = make_task([In(base[32:])], 1)
        tracker.dependences_for(left)
        assert set(tracker.dependences_for(right)) == {left}

    def test_writer_to_subregion_orders_full_reader(self):
        base = np.zeros(64)
        tracker = DependenceTracker()
        sub_writer = make_task([Out(base[16:32])], 0)
        full_reader = make_task([In(base)], 1)
        tracker.dependences_for(sub_writer)
        assert sub_writer in tracker.dependences_for(full_reader)

    def test_different_buffers_never_conflict(self):
        tracker = DependenceTracker()
        a = make_task([Out(np.zeros(8))], 0)
        b = make_task([In(np.zeros(8))], 1)
        tracker.dependences_for(a)
        assert set(tracker.dependences_for(b)) == set()


class TestTrackerBookkeeping:
    def test_edge_count(self):
        data = np.zeros(8)
        tracker = DependenceTracker()
        writer = make_task([Out(data)], 0)
        reader = make_task([In(data)], 1)
        tracker.dependences_for(writer)
        tracker.dependences_for(reader)
        assert tracker.edges_added == 1

    def test_reset(self):
        data = np.zeros(8)
        tracker = DependenceTracker()
        tracker.dependences_for(make_task([Out(data)], 0))
        tracker.reset()
        assert tracker.edges_added == 0
        assert set(tracker.dependences_for(make_task([In(data)], 1))) == set()

    @given(st.lists(st.tuples(st.integers(0, 3), st.booleans()), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_dependences_always_point_backwards(self, spec):
        """Property: every dependence edge goes from an earlier to a later task."""
        buffers = [np.zeros(8) for _ in range(4)]
        tracker = DependenceTracker()
        tasks = []
        for index, (buffer_index, is_write) in enumerate(spec):
            access = Out(buffers[buffer_index]) if is_write else In(buffers[buffer_index])
            task = make_task([access], index)
            deps = tracker.dependences_for(task)
            for dep in deps:
                assert dep.task_id < task.task_id
            tasks.append(task)
