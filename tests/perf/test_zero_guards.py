"""Zero-task guards: empty-graph drains and perf ratio fields.

Regression tests for the divide-by-zero class of bugs: draining a runtime
that never received a task must return a well-formed zero result on every
backend, and every derived ratio (``reuse_fraction``, tasks/sec,
events/sec, backend speedups) must degrade to a default instead of raising.
"""

from __future__ import annotations

import pytest

from repro.common.config import RuntimeConfig
from repro.perf.report import safe_ratio
from repro.session import Session
from repro.runtime.executor import RunResult, build_executor

BACKENDS = ("serial", "threaded", "process", "simulated")


class TestSafeRatio:
    def test_normal_division(self):
        assert safe_ratio(6.0, 3.0) == pytest.approx(2.0)

    def test_zero_denominator_returns_default(self):
        assert safe_ratio(5.0, 0.0) == 0.0
        assert safe_ratio(5.0, 0) == 0.0
        assert safe_ratio(5.0, 0.0, default=1.0) == 1.0


class TestEmptyGraphDrain:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_drain_yields_zero_result(self, backend):
        config = RuntimeConfig(num_threads=2, executor=backend)
        executor = build_executor(config)
        try:
            runtime = Session(executor=executor)
            result = runtime.finish()
            assert result.tasks_completed == 0
            assert result.tasks_executed == 0
            assert result.tasks_memoized == 0
            assert result.reuse_fraction == 0.0
        finally:
            executor.close()

    def test_zero_task_reuse_fraction_is_guarded(self):
        assert RunResult().reuse_fraction == 0.0
        populated = RunResult(tasks_completed=4, tasks_memoized=1)
        assert populated.reuse_fraction == pytest.approx(0.25)
