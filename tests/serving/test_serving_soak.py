"""Multi-client gateway soak: concurrent tenants under open-loop traffic.

Excluded from tier-1 (the ``serving`` marker): these tests run a threaded
pool with several genuinely concurrent TCP clients replaying seeded traffic
plans, which is seconds of wall-clock, not milliseconds.  Run with
``pytest -m serving`` (the CI serving tier / ``make serve-smoke`` path).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.apps import make_benchmark
from repro.serving import Gateway, GatewayClient
from repro.session import ReproConfig, Session
from repro.testing.traffic import make_plan, replay

pytestmark = pytest.mark.serving


def serial_checksums(apps, scale="tiny") -> dict:
    out = {}
    for name in apps:
        app = make_benchmark(name, scale=scale)
        with Session(ReproConfig()) as session:
            app.run(session)
        out[name] = np.asarray(app.output(), dtype=np.float64).copy()
    return out


class TestConcurrentTenants:
    def test_six_apps_from_concurrent_tenants_match_serial(self):
        """Every app, two tenants each, all connections live at once."""
        apps = ("blackscholes", "gauss-seidel", "jacobi",
                "kmeans", "lu", "swaptions")
        reference = serial_checksums(apps)
        cfg = ReproConfig().with_overrides(
            runtime={"executor": "threaded", "num_threads": 2}
        )
        failures: list[str] = []
        outputs: dict[str, np.ndarray] = {}

        def tenant_body(gateway, tenant, app_name):
            try:
                app = make_benchmark(app_name, scale="tiny")
                with GatewayClient("127.0.0.1", gateway.port,
                                   tenant=tenant) as client:
                    app.build(client)
                    result = client.finish()
                if result.tasks_failed or result.tasks_cancelled:
                    failures.append(f"{tenant}: {result.failures}")
                outputs[tenant] = np.asarray(
                    app.output(), dtype=np.float64
                ).copy()
            except Exception as exc:  # surfaced after join
                failures.append(f"{tenant}: {exc!r}")

        with Gateway(cfg) as gateway:
            threads = [
                threading.Thread(
                    target=tenant_body,
                    args=(gateway, f"{app}-{i}", app),
                )
                for app in apps
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert not failures, failures
        for tenant, out in outputs.items():
            app = tenant.rsplit("-", 1)[0]
            assert np.array_equal(out, reference[app]), (
                f"{tenant}: output diverged from the serial Session run"
            )

    def test_open_loop_traffic_plan_drains_cleanly(self):
        """Replay a seeded Poisson plan of app submissions as one tenant."""
        plan = make_plan(6, rate_hz=50.0, seed=11)
        cfg = ReproConfig().with_overrides(
            runtime={"executor": "threaded", "num_threads": 2}
        )
        with Gateway(cfg) as gateway:
            with GatewayClient("127.0.0.1", gateway.port,
                               tenant="traffic") as client:
                submitted = []

                def dispatch(request):
                    app = make_benchmark(request.app, scale="tiny")
                    app.build(client)
                    submitted.append(app)

                replay(plan, dispatch, speed=10.0)
                result = client.finish()
        assert len(submitted) == 6
        assert result.tasks_failed == 0
        assert result.extra["tasks_submitted"] == result.tasks_completed

    def test_fairness_under_asymmetric_load(self):
        """A heavy tenant's backlog must not starve a light tenant."""
        cfg = ReproConfig().with_overrides(
            runtime={"executor": "threaded", "num_threads": 2},
            serving={"max_pending": 32, "quantum": 8},
        )
        done_at: dict[str, float] = {}
        barrier = threading.Barrier(2)

        def tenant_body(gateway, tenant, n_apps):
            import time as _time

            apps = [make_benchmark("jacobi", scale="tiny")
                    for _ in range(n_apps)]
            with GatewayClient("127.0.0.1", gateway.port,
                               tenant=tenant) as client:
                barrier.wait(timeout=30)
                for app in apps:
                    app.build(client)
                client.finish()
                done_at[tenant] = _time.monotonic()

        with Gateway(cfg) as gateway:
            threads = [
                threading.Thread(target=tenant_body,
                                 args=(gateway, "heavy", 8)),
                threading.Thread(target=tenant_body,
                                 args=(gateway, "light", 1)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert set(done_at) == {"heavy", "light"}
        # DRR interleaves admissions, so the light tenant's single app
        # cannot be queued behind the heavy tenant's entire 8x backlog.
        assert done_at["light"] <= done_at["heavy"]
