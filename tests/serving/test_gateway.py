"""Fast in-process gateway tests (tier-1): serial pool, loopback TCP.

The heavier concurrent/threaded soak lives in ``test_serving_soak.py``
behind the ``serving`` marker; everything here runs the serial pool so the
whole file stays in the tier-1 time budget.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.apps import make_benchmark
from repro.common.exceptions import (
    ConfigurationError,
    GatewayProtocolError,
    GatewayShutdownError,
    TaskDefinitionError,
    TenantRejectedError,
)
from repro.runtime.data import In, InOut, Out
from repro.runtime.net_wire import read_frame, write_frame
from repro.runtime.task import TaskType
from repro.serving import Gateway, GatewayClient, SERVING_PROTOCOL_VERSION
from repro.session import ReproConfig, Session
from repro.testing.traffic import accumulate_block, fill_block

FILL = TaskType("serve_fill", memoizable=False)
ACC = TaskType("serve_acc", memoizable=False)


def boom_body(arr: np.ndarray) -> None:
    raise ValueError("deliberate serving-test failure")


@pytest.fixture(scope="module")
def gateway():
    cfg = ReproConfig().with_overrides(runtime={"executor": "serial"})
    gw = Gateway(cfg)
    gw.start()
    yield gw
    gw.stop()


def connect(gateway: Gateway, tenant: str, **kwargs) -> GatewayClient:
    return GatewayClient(
        "127.0.0.1", gateway.port, tenant=tenant, **kwargs
    )


class TestEndToEnd:
    def test_submit_barrier_writeback(self, gateway):
        blocks = [np.zeros(8) for _ in range(3)]
        acc = np.zeros(8)
        with connect(gateway, "e2e-basic") as client:
            for i, block in enumerate(blocks):
                client.submit(FILL, fill_block, accesses=[Out(block)],
                              args=(block, float(i + 1)))
            for block in blocks:
                client.submit(ACC, accumulate_block,
                              accesses=[In(block), InOut(acc)],
                              args=(block, acc))
            summary = client.wait_all()
            assert summary["tasks_completed"] == 6
            assert summary["tasks_failed"] == 0
        for i, block in enumerate(blocks):
            assert np.all(block == i + 1), "write-back missed a filled block"
        assert np.all(acc == 1 + 2 + 3)

    def test_multiple_waves_reuse_shipped_buffers(self, gateway):
        data = np.zeros(4)
        acc = np.zeros(4)
        with connect(gateway, "e2e-waves") as client:
            client.submit(FILL, fill_block, accesses=[Out(data)],
                          args=(data, 2.0))
            client.wait_all()
            assert np.all(data == 2.0)
            # Second wave: only refs travel; the gateway's arena copy is
            # authoritative and already holds the first wave's writes.
            client.submit(ACC, accumulate_block,
                          accesses=[In(data), InOut(acc)], args=(data, acc))
            result = client.finish()
        assert np.all(acc == 2.0)
        assert result.tasks_completed == 2
        assert result.extra["tenant"] == "e2e-waves"

    def test_benchmark_matches_local_session(self, gateway):
        remote = make_benchmark("jacobi", scale="tiny")
        with connect(gateway, "e2e-jacobi") as client:
            remote.build(client)
            result = client.finish()
        local = make_benchmark("jacobi", scale="tiny")
        with Session(ReproConfig()) as session:
            local.run(session)
        assert np.array_equal(remote.output(), local.output())
        assert result.tasks_completed == session.result.tasks_completed

    def test_result_and_stats_surfaces(self, gateway):
        data = np.zeros(4)
        with connect(gateway, "e2e-stats") as client:
            client.submit(FILL, fill_block, accesses=[Out(data)],
                          args=(data, 1.0))
            client.wait_all()
            result = client.result()
            stats = client.stats()
        assert result.tasks_completed == 1
        assert result.extra["tasks_submitted"] == 1
        assert stats["pool"]["executor"] == "serial"
        entry = stats["tenants"]["e2e-stats"]
        assert entry["completed"] == 1
        assert entry["latency_p50_s"] >= 0.0
        assert entry["latency_p99_s"] >= entry["latency_p50_s"]
        assert "pending" in stats["admission"]

    def test_reconnect_resumes_tenant_namespace(self, gateway):
        data = np.zeros(4)
        acc = np.zeros(4)
        with connect(gateway, "e2e-reconnect") as client:
            client.submit(FILL, fill_block, accesses=[Out(data)],
                          args=(data, 3.0))
            client.wait_all()
        with connect(gateway, "e2e-reconnect") as client:
            before = client.result()
            assert before.extra["tasks_submitted"] == 1  # counters survived
            client.submit(ACC, accumulate_block,
                          accesses=[In(data), InOut(acc)], args=(data, acc))
            after = client.finish()
        assert after.extra["tasks_submitted"] == 2
        assert np.all(acc == 3.0)


class TestFailureSurfacing:
    def test_failure_and_cancellation_reach_the_client(self, gateway):
        data = np.zeros(4)
        dep = np.zeros(4)
        with connect(gateway, "fail-report") as client:
            client.submit(TaskType("serve_boom", memoizable=False), boom_body,
                          accesses=[InOut(data)], args=(data,))
            client.submit(ACC, accumulate_block,
                          accesses=[In(data), InOut(dep)], args=(data, dep))
            result = client.finish()
        assert result.tasks_failed == 1
        assert result.tasks_cancelled == 1  # quarantined dependent
        assert result.tasks_completed == 0
        assert len(result.failures) >= 1
        failure = result.failures[0]
        assert "deliberate serving-test failure" in failure.reason
        assert failure.error == "TaskFailedError"

    def test_failures_are_per_tenant(self, gateway):
        ok = np.zeros(4)
        with connect(gateway, "fail-peer") as client:
            client.submit(FILL, fill_block, accesses=[Out(ok)],
                          args=(ok, 1.0))
            result = client.finish()
        assert result.tasks_failed == 0
        assert result.failures == []  # the other tenant's failure is not ours


class TestProtocolErrors:
    def test_submit_before_hello(self, gateway):
        with socket.create_connection(("127.0.0.1", gateway.port)) as sock:
            write_frame(sock, ("result",))
            reply = read_frame(sock)
            assert reply[0] == "error"
            assert reply[1] == "GatewayProtocolError"
            assert "before hello" in reply[2]

    def test_unknown_message_type_keeps_connection_usable(self, gateway):
        with socket.create_connection(("127.0.0.1", gateway.port)) as sock:
            write_frame(sock, ("hello", {
                "protocol": SERVING_PROTOCOL_VERSION, "tenant": "proto-live",
            }))
            assert read_frame(sock)[0] == "hello_ack"
            write_frame(sock, ("frobnicate",))
            reply = read_frame(sock)
            assert reply[:2] == ("error", "GatewayProtocolError")
            write_frame(sock, ("result",))  # the error did not kill the loop
            assert read_frame(sock)[0] == "result_reply"

    def test_duplicate_hello_rejected(self, gateway):
        hello = ("hello", {
            "protocol": SERVING_PROTOCOL_VERSION, "tenant": "proto-dup",
        })
        with socket.create_connection(("127.0.0.1", gateway.port)) as sock:
            write_frame(sock, hello)
            assert read_frame(sock)[0] == "hello_ack"
            write_frame(sock, hello)
            assert read_frame(sock)[:2] == ("error", "GatewayProtocolError")

    def test_protocol_version_mismatch(self, gateway):
        with socket.create_connection(("127.0.0.1", gateway.port)) as sock:
            write_frame(sock, ("hello", {"protocol": 999, "tenant": "x"}))
            reply = read_frame(sock)
            assert reply[:2] == ("error", "TenantRejectedError")
            assert "protocol mismatch" in reply[2]

    def test_client_raises_typed_errors(self, gateway):
        with pytest.raises(TenantRejectedError, match="weight"):
            connect(gateway, "proto-weight", weight=-1.0)

    def test_invalid_task_definition_is_an_error_reply(self, gateway):
        data = np.zeros(4)
        with connect(gateway, "proto-baddef") as client:
            with pytest.raises(TaskDefinitionError, match="conflicting"):
                client.submit(ACC, accumulate_block,
                              accesses=[In(data), InOut(data)],
                              args=(data, data))
            # The rejection answered the request; the connection (and the
            # tenant's accounting) are still live.
            client.submit(FILL, fill_block, accesses=[Out(data)],
                          args=(data, 1.0))
            result = client.finish()
        assert result.tasks_completed == 1
        assert result.extra["tasks_submitted"] == 1  # the bad one rolled back

    def test_second_live_connection_for_same_tenant_rejected(self, gateway):
        with connect(gateway, "proto-single"):
            with pytest.raises(TenantRejectedError, match="live connection"):
                connect(gateway, "proto-single")

    def test_atm_request_rejected_on_engineless_pool(self):
        cfg = ReproConfig().with_overrides(
            runtime={"executor": "process", "num_threads": 1}
        )
        with Gateway(cfg) as gw:
            with pytest.raises(TenantRejectedError, match="engine-less"):
                GatewayClient("127.0.0.1", gw.port, tenant="atm-proc",
                              atm_mode="static")

    def test_draining_gateway_refuses_new_tenants(self, gateway):
        gateway._draining = True
        try:
            with pytest.raises(GatewayShutdownError):
                connect(gateway, "late-arrival")
        finally:
            gateway._draining = False


class TestAtmNamespaces:
    """Per-tenant ATM isolation and the opt-in shared THT tier."""

    def run_app(self, gw, tenant, shared=None):
        app = make_benchmark("blackscholes", scale="tiny")
        kwargs = {} if shared is None else {"shared_tht": shared}
        with GatewayClient("127.0.0.1", gw.port, tenant=tenant,
                           atm_mode="static", **kwargs) as client:
            app.build(client)
            result = client.finish()
        return result, app.output().copy()

    def test_isolated_namespaces_show_no_cross_tenant_reuse(self):
        cfg = ReproConfig().with_overrides(
            runtime={"executor": "serial"}, atm={"mode": "static"}
        )
        with Gateway(cfg) as gw:
            first, out_first = self.run_app(gw, "iso-a")
            second, out_second = self.run_app(gw, "iso-b")
        # Without the shared tier the second tenant starts cold: identical
        # accounting to the first run and zero shared hits.
        assert first.extra["shared_hits"] == 0
        assert second.extra["shared_hits"] == 0
        assert second.tasks_memoized == first.tasks_memoized
        assert second.tasks_executed == first.tasks_executed
        assert np.array_equal(out_first, out_second)

    def test_shared_tier_lets_second_tenant_reuse(self):
        cfg = ReproConfig().with_overrides(
            runtime={"executor": "serial"},
            atm={"mode": "static"},
            serving={"shared_tht": True},
        )
        with Gateway(cfg) as gw:
            first, out_first = self.run_app(gw, "share-a", shared=True)
            second, out_second = self.run_app(gw, "share-b", shared=True)
        assert first.extra["shared_hits"] == 0  # nothing to reuse yet
        assert second.extra["shared_hits"] > 0
        assert second.tasks_memoized >= first.tasks_memoized
        assert second.tasks_executed < first.tasks_executed
        assert np.array_equal(out_first, out_second)

    def test_shared_tier_opt_out_per_tenant(self):
        cfg = ReproConfig().with_overrides(
            runtime={"executor": "serial"},
            atm={"mode": "static"},
            serving={"shared_tht": True},
        )
        with Gateway(cfg) as gw:
            self.run_app(gw, "optout-a", shared=True)
            second, _ = self.run_app(gw, "optout-b", shared=False)
        assert second.extra["shared_hits"] == 0


class TestPersistentSharedTier:
    """The shared tier backed by ``atm.tht_store`` (DESIGN.md §9)."""

    def run_app(self, gw, tenant):
        app = make_benchmark("blackscholes", scale="tiny")
        with GatewayClient("127.0.0.1", gw.port, tenant=tenant,
                           atm_mode="static", shared_tht=True) as client:
            app.build(client)
            result = client.finish()
        return result, app.output().copy()

    def store_config(self, url):
        return ReproConfig().with_overrides(
            runtime={"executor": "serial"},
            atm={"mode": "static", "tht_store": url},
            serving={"shared_tht": True},
        )

    def test_shared_tier_survives_gateway_restart(self, tmp_path):
        url = f"file://{tmp_path / 'shared.tht'}"
        cfg = self.store_config(url)
        with Gateway(cfg) as gw:
            first, out_first = self.run_app(gw, "persist-a")
        assert first.extra["shared_hits"] == 0
        # A brand-new gateway on the same store starts with a warm shared
        # tier: the very first tenant reuses the previous campaign's work.
        with Gateway(cfg) as gw:
            second, out_second = self.run_app(gw, "persist-b")
        assert second.extra["shared_hits"] > 0
        assert np.array_equal(out_first, out_second)

    def test_gateway_publishes_to_shard_sessions_can_reuse(self, tmp_path):
        from tests.atm.test_tht_store import load_shard_module

        server, addr = load_shard_module().serve_in_thread()
        url = f"tcp://{addr}"
        try:
            with Gateway(self.store_config(url)) as gw:
                self.run_app(gw, "shard-pub")
            # The merge pump shipped the shared tier to the shard; a plain
            # Session pointed at the same shard now warm-starts from it.
            app = make_benchmark("blackscholes", scale="tiny")
            with Session(
                {"atm": {"mode": "static", "tht_store": url}}, executor="serial"
            ) as session:
                app.run(session)
                assert session.warm_started
                assert session.stats["tht_hits"] > 0
        finally:
            server.shutdown_gracefully()

    def test_unavailable_store_degrades_to_in_memory_tier(self):
        cfg = self.store_config("tcp://127.0.0.1:1")
        with pytest.warns(RuntimeWarning, match="unavailable"):
            gw = Gateway(cfg)
        with gw:
            self.run_app(gw, "degraded-a")
            second, _ = self.run_app(gw, "degraded-b")
        assert second.extra["shared_hits"] > 0  # in-memory sharing still works


class TestGatewayConfig:
    def test_rejects_simulated_pool(self):
        cfg = ReproConfig().with_overrides(runtime={"executor": "simulated"})
        with pytest.raises(ConfigurationError, match="simulated"):
            Gateway(cfg)

    def test_port_zero_binds_ephemeral(self):
        with Gateway(ReproConfig()) as gw:
            assert gw.port > 0
