"""Tests for the seeded open-loop traffic generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.exceptions import WorkloadError
from repro.testing.traffic import (
    SERVED_APPS,
    Request,
    arrival_times,
    make_plan,
    replay,
)


class TestArrivalTimes:
    def test_poisson_is_seeded_and_ascending(self):
        a = arrival_times(200, rate_hz=50.0, seed=7)
        b = arrival_times(200, rate_hz=50.0, seed=7)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) >= 0)
        assert not np.array_equal(a, arrival_times(200, rate_hz=50.0, seed=8))

    def test_poisson_long_run_rate(self):
        times = arrival_times(5000, rate_hz=100.0, seed=1)
        observed = len(times) / times[-1]
        assert observed == pytest.approx(100.0, rel=0.1)

    def test_burst_groups_and_rate(self):
        times = arrival_times(4000, rate_hz=100.0, seed=3,
                              process="burst", burst_size=8)
        # Arrivals come in groups of burst_size simultaneous requests.
        assert np.array_equal(times[:8], np.repeat(times[0], 8))
        observed = len(times) / times[-1]
        assert observed == pytest.approx(100.0, rel=0.15)

    def test_invalid_arguments_raise(self):
        with pytest.raises(WorkloadError):
            arrival_times(-1, 1.0)
        with pytest.raises(WorkloadError):
            arrival_times(1, 0.0)
        with pytest.raises(WorkloadError):
            arrival_times(1, 1.0, process="burst", burst_size=0)
        with pytest.raises(WorkloadError, match="unknown arrival process"):
            arrival_times(1, 1.0, process="uniform")


class TestPlan:
    def test_plan_is_reproducible(self):
        assert make_plan(60, 20.0, seed=5) == make_plan(60, 20.0, seed=5)

    def test_plan_cycles_all_served_apps(self):
        plan = make_plan(len(SERVED_APPS) * 2, 10.0, seed=0)
        assert [r.app for r in plan[: len(SERVED_APPS)]] == list(SERVED_APPS)
        assert {r.app for r in plan} == set(SERVED_APPS)

    def test_per_request_seeds_are_distinct(self):
        plan = make_plan(100, 10.0, seed=9)
        assert len({r.seed for r in plan}) == 100

    def test_empty_apps_rejected(self):
        with pytest.raises(WorkloadError):
            make_plan(4, 1.0, apps=())


class TestReplay:
    def test_open_loop_with_fake_clock(self):
        """A slow dispatcher makes later requests late, never fewer."""
        plan = [Request(at_s=t, app="jacobi", seed=0) for t in (0.0, 1.0, 2.0)]
        now = [0.0]
        slept: list[float] = []

        def clock():
            return now[0]

        def sleep(dt):
            slept.append(dt)
            now[0] += dt

        def dispatch(request):
            now[0] += 1.5  # dispatcher slower than the 1.0 s arrival gap

        offsets = replay(plan, dispatch, clock=clock, sleep=sleep)
        assert len(offsets) == 3  # every request dispatched, none dropped
        assert slept == []  # already behind schedule -> no waiting
        # Later requests go out late (behind their planned offsets).
        assert offsets == [pytest.approx(1.5), pytest.approx(3.0),
                           pytest.approx(4.5)]

    def test_fast_dispatcher_waits_each_gap(self):
        plan = [Request(at_s=t, app="jacobi", seed=0) for t in (0.0, 1.0, 2.0)]
        now = [0.0]
        slept: list[float] = []

        def clock():
            return now[0]

        def sleep(dt):
            slept.append(dt)
            now[0] += dt

        replay(plan, lambda r: None, clock=clock, sleep=sleep)
        assert slept == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_speed_scales_waits(self):
        plan = [Request(at_s=t, app="lu", seed=0) for t in (0.0, 4.0)]
        now = [0.0]
        slept: list[float] = []

        def clock():
            return now[0]

        def sleep(dt):
            slept.append(dt)
            now[0] += dt

        replay(plan, lambda r: None, speed=4.0, clock=clock, sleep=sleep)
        assert slept == [pytest.approx(1.0)]

    def test_invalid_speed_rejected(self):
        with pytest.raises(WorkloadError):
            replay([], lambda r: None, speed=0.0)
