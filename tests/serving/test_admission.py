"""Unit tests for the fair-share admission controller (DESIGN.md §8)."""

from __future__ import annotations

import threading

import pytest

from repro.common.exceptions import AdmissionError, RuntimeStateError
from repro.serving import AdmissionController


def make(max_pending=64, max_tenant_queue=128, quantum=4) -> AdmissionController:
    return AdmissionController(
        max_pending=max_pending,
        max_tenant_queue=max_tenant_queue,
        quantum=quantum,
    )


class TestLifecycle:
    def test_rejects_degenerate_limits(self):
        for kwargs in (
            {"max_pending": 0, "max_tenant_queue": 1, "quantum": 1},
            {"max_pending": 1, "max_tenant_queue": 0, "quantum": 1},
            {"max_pending": 1, "max_tenant_queue": 1, "quantum": 0},
        ):
            with pytest.raises(AdmissionError):
                AdmissionController(**kwargs)

    def test_duplicate_registration_raises(self):
        adm = make()
        adm.register("a")
        with pytest.raises(AdmissionError, match="already registered"):
            adm.register("a")

    def test_nonpositive_weight_raises(self):
        adm = make()
        with pytest.raises(AdmissionError, match="weight"):
            adm.register("a", weight=0.0)

    def test_enqueue_unknown_tenant_raises(self):
        adm = make()
        with pytest.raises(AdmissionError, match="not registered"):
            adm.enqueue("ghost", [1])

    def test_unregister_with_backlog_refuses(self):
        adm = make()
        adm.register("a")
        adm.enqueue("a", [1, 2])
        with pytest.raises(RuntimeStateError, match="queued"):
            adm.unregister("a")
        adm.take()
        adm.unregister("a")  # drained now
        assert adm.queued("a") == 0


class TestFifoAndPool:
    def test_single_tenant_preserves_fifo(self):
        adm = make()
        adm.register("a")
        adm.enqueue("a", list(range(20)))
        admitted = [item for _, item in adm.take()]
        assert admitted == list(range(20))

    def test_per_tenant_order_survives_interleaving(self):
        """DRR interleaves tenants but never reorders within one tenant."""
        adm = make(max_pending=1000, quantum=2)
        adm.register("a")
        adm.register("b")
        adm.enqueue("a", [("a", i) for i in range(30)])
        adm.enqueue("b", [("b", i) for i in range(30)])
        admitted = adm.take()
        for name in ("a", "b"):
            seq = [item[1] for tenant, item in admitted if tenant == name]
            assert seq == sorted(seq), f"tenant {name} reordered"

    def test_pending_pool_is_bounded(self):
        adm = make(max_pending=10)
        adm.register("a")
        adm.enqueue("a", list(range(25)))
        assert len(adm.take()) == 10
        assert adm.pending == 10
        assert adm.take() == []  # pool full -> nothing admitted
        adm.release(4)
        assert len(adm.take()) == 4
        adm.release(6 + 4)
        assert len(adm.take()) == 10  # budget capped even with 11 queued
        adm.release(10)
        assert len(adm.take()) == 1  # the remainder
        assert adm.queued("a") == 0

    def test_oversized_batch_rejected_immediately(self):
        adm = make(max_tenant_queue=8)
        adm.register("a")
        with pytest.raises(AdmissionError, match="exceeds the per-tenant"):
            adm.enqueue("a", list(range(9)))

    def test_backpressure_timeout_raises(self):
        adm = make(max_tenant_queue=4)
        adm.register("a")
        adm.enqueue("a", [1, 2, 3])
        with pytest.raises(AdmissionError, match="timed out"):
            adm.enqueue("a", [4, 5], timeout=0.05)

    def test_backpressure_unblocks_when_pool_drains(self):
        adm = make(max_pending=100, max_tenant_queue=4)
        adm.register("a")
        adm.enqueue("a", [1, 2, 3, 4])
        done = threading.Event()

        def producer():
            adm.enqueue("a", [5, 6], timeout=5.0)
            done.set()

        thread = threading.Thread(target=producer)
        thread.start()
        assert not done.wait(0.05)  # genuinely blocked on the full queue
        adm.take()  # drain the backlog -> space frees -> producer resumes
        assert done.wait(5.0)
        thread.join()
        assert adm.queued("a") == 2


class TestDeficitRoundRobin:
    def test_equal_weights_split_evenly(self):
        adm = make(max_pending=40, quantum=4)
        adm.register("a")
        adm.register("b")
        adm.enqueue("a", list(range(100)))
        adm.enqueue("b", list(range(100)))
        counts = {"a": 0, "b": 0}
        for tenant, _ in adm.take():
            counts[tenant] += 1
        assert counts["a"] == counts["b"] == 20

    def test_weights_bias_admission_share(self):
        adm = make(max_pending=30, quantum=2)
        adm.register("heavy", weight=2.0)
        adm.register("light", weight=1.0)
        adm.enqueue("heavy", list(range(100)))
        adm.enqueue("light", list(range(100)))
        counts = {"heavy": 0, "light": 0}
        for tenant, _ in adm.take():
            counts[tenant] += 1
        assert counts["heavy"] + counts["light"] == 30
        # 2:1 weights -> 2:1 share (exact here: both stay backlogged).
        assert counts["heavy"] == 2 * counts["light"]

    def test_heavy_backlog_cannot_starve_light_tenant(self):
        """The fairness property the serving bench gates on."""
        adm = make(max_pending=16, quantum=4)
        adm.register("heavy")
        adm.register("light")
        adm.enqueue("heavy", list(range(128)))
        adm.enqueue("light", list(range(16)))
        light_seen = 0
        for _ in range(9):  # nine pump/complete cycles
            admitted = adm.take()
            light_seen += sum(1 for tenant, _ in admitted if tenant == "light")
            adm.release(len(admitted))
        assert light_seen == 16  # all light work through despite 8x backlog
        assert adm.queued("light") == 0

    def test_idle_tenant_credit_does_not_bank(self):
        adm = make(max_pending=100, quantum=4)
        adm.register("idle")
        adm.register("busy")
        adm.enqueue("busy", list(range(8)))
        adm.take()  # idle tenant visited with an empty queue
        adm.release(8)
        # If idle credit banked across visits, the idle tenant would now
        # burst ahead; classic DRR resets it, so a fresh arrival is admitted
        # with exactly one round's credit like anyone else.
        adm.enqueue("idle", list(range(8)))
        adm.enqueue("busy", list(range(8)))
        counts = {"idle": 0, "busy": 0}
        for tenant, _ in adm.take():
            counts[tenant] += 1
        assert counts["idle"] == counts["busy"] == 8

    def test_fractional_weight_still_progresses(self):
        adm = make(max_pending=100, quantum=1)
        adm.register("slow", weight=0.25)
        adm.enqueue("slow", list(range(3)))
        # quantum * weight = 0.25 credit/round: the ceil-based refill grants
        # whole-task credit instead of looping forever below 1.0.
        assert len(adm.take()) == 3

    def test_snapshot_counters(self):
        adm = make()
        adm.register("a", weight=1.5)
        adm.enqueue("a", list(range(6)))
        adm.take()
        snap = adm.snapshot()
        assert snap["pending"] == 6
        assert snap["max_pending"] == adm.max_pending
        assert snap["tenants"]["a"]["enqueued"] == 6
        assert snap["tenants"]["a"]["admitted"] == 6
        assert snap["tenants"]["a"]["queued"] == 0
        assert snap["tenants"]["a"]["weight"] == 1.5
