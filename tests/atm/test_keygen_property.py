"""Property-based keygen tests (hypothesis; skipped if it is unavailable).

Random region shapes, dtypes, arities and sampling fractions assert that

* the ``"exact"`` pipeline stays bit-identical to the preserved seed
  implementation (:mod:`repro.atm.keygen_reference`) — the generative
  counterpart of the fixed-case suite in ``test_keygen_equivalence.py``;
* ``"digest"`` keys are *stable*: they depend only on content, order and
  ``p``, never on cache state — evicting the LRU (tiny budget), disabling
  the cache, or bumping write-versions over unchanged bytes must all
  reproduce the same key value.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.atm.keygen import HashKeyGenerator  # noqa: E402
from repro.atm.keygen_reference import ReferenceKeyGenerator  # noqa: E402
from repro.common.config import ATMConfig, P_LADDER  # noqa: E402
from repro.runtime.data import In  # noqa: E402
from repro.runtime.task import Task, TaskType  # noqa: E402

TT = TaskType("prop-test", memoizable=True)

_DTYPES = (np.float64, np.float32, np.int32, np.int16, np.uint8)


def _arrays_from(seed: int, shapes_dtypes) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    arrays = []
    for n_elements, dtype_index in shapes_dtypes:
        dtype = np.dtype(_DTYPES[dtype_index % len(_DTYPES)])
        if dtype.kind == "f":
            arrays.append(rng.standard_normal(n_elements).astype(dtype))
        else:
            info = np.iinfo(dtype)
            arrays.append(
                rng.integers(info.min, int(info.max), n_elements).astype(dtype)
            )
    return arrays


def make_task(arrays) -> Task:
    return Task(
        task_type=TT,
        function=lambda: None,
        accesses=[In(a) for a in arrays],
        task_id=0,
    )


shapes_strategy = st.lists(
    st.tuples(st.integers(1, 4096), st.integers(0, len(_DTYPES) - 1)),
    min_size=1,
    max_size=4,
)
p_strategy = st.one_of(
    st.sampled_from(P_LADDER),
    st.floats(min_value=2.0 ** -15, max_value=1.0, allow_nan=False),
)


class TestExactMatchesReferenceProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        shapes=shapes_strategy,
        p=p_strategy,
        type_aware=st.booleans(),
    )
    def test_exact_pipeline_equals_seed(self, seed, shapes, p, type_aware):
        arrays = _arrays_from(seed, shapes)
        config = ATMConfig(type_aware=type_aware)
        new = HashKeyGenerator(config)
        ref = ReferenceKeyGenerator(config)
        task = make_task(arrays)
        for _ in range(2):  # cold caches, then hot caches
            key_new = new.compute(task, p)
            key_ref = ref.compute(task, p)
            assert key_new.value == key_ref.value
            assert key_new.sampled_bytes == key_ref.sampled_bytes
            assert key_new.total_bytes == key_ref.total_bytes


class TestDigestKeyStabilityProperty:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), shapes=shapes_strategy, p=p_strategy)
    def test_digest_keys_survive_cache_eviction(self, seed, shapes, p):
        """Key values never depend on what the LRU happened to keep."""
        arrays = _arrays_from(seed, shapes)
        task = make_task(arrays)
        baseline = HashKeyGenerator(
            ATMConfig(key_pipeline="digest", key_cache=False)
        ).compute(task, p)
        # A one-entry-sized budget forces continuous eviction...
        starved = HashKeyGenerator(
            ATMConfig(key_pipeline="digest", key_cache_budget_bytes=64)
        )
        for _ in range(3):
            assert starved.compute(task, p).value == baseline.value
        # ...and a comfortable budget must agree too, hot or cold.
        cached = HashKeyGenerator(ATMConfig(key_pipeline="digest"))
        for _ in range(3):
            assert cached.compute(task, p).value == baseline.value

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), shapes=shapes_strategy, p=p_strategy)
    def test_digest_keys_survive_version_bumps(self, seed, shapes, p):
        """A write-version bump without a byte change recomputes the same key."""
        arrays = _arrays_from(seed, shapes)
        task = make_task(arrays)
        generator = HashKeyGenerator(ATMConfig(key_pipeline="digest"))
        before = generator.compute(task, p)
        for access in task.accesses:
            access.region.bump_version()
        after = generator.compute(task, p)
        assert after.value == before.value
        assert after.sampled_bytes == before.sampled_bytes
