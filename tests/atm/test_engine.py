"""Tests for the ATM engine (lookup, memoization, training, postponed copies)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atm.engine import ATMEngine
from repro.atm.policy import DynamicATMPolicy, StaticATMPolicy
from repro.common.config import ATMConfig
from repro.common.exceptions import MemoizationError
from repro.runtime.atm_protocol import ATMAction
from repro.runtime.data import In, Out
from repro.runtime.task import Task, TaskState, TaskType

MEMO_TYPE = TaskType("memo", memoizable=True, tau_max=0.01, l_training=2)
PLAIN_TYPE = TaskType("plain", memoizable=False)


def square_task(src, dst, task_type=MEMO_TYPE, task_id=0):
    def body():
        dst[:] = src ** 2

    return Task(
        task_type=task_type,
        function=body,
        accesses=[In(src), Out(dst)],
        task_id=task_id,
    )


def make_static_engine(**overrides) -> ATMEngine:
    config = ATMConfig(**overrides)
    return ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=2)


def process(engine: ATMEngine, task: Task):
    """Drive a task through the engine the way an executor would."""
    decision = engine.task_ready(task)
    executed = False
    if not decision.skips_execution:
        task.run()
        executed = True
    commit = None
    if decision.atm_handled:
        commit = engine.task_finished(task, decision, executed)
    return decision, commit


class TestStaticEngine:
    def test_first_task_misses_and_commits(self):
        engine = make_static_engine()
        src, dst = np.arange(8.0), np.zeros(8)
        decision, commit = process(engine, square_task(src, dst))
        assert decision.action == ATMAction.EXECUTE
        assert commit.stored_bytes == dst.nbytes
        assert engine.stats.misses == 1
        assert len(engine.tht) == 1

    def test_second_identical_task_is_memoized(self):
        engine = make_static_engine()
        src = np.arange(8.0)
        first_out, second_out = np.zeros(8), np.zeros(8)
        process(engine, square_task(src, first_out, task_id=0))
        decision, _ = process(engine, square_task(src, second_out, task_id=1))
        assert decision.action == ATMAction.SKIP
        assert decision.copied_bytes == second_out.nbytes
        assert np.allclose(second_out, src ** 2)
        assert engine.stats.tht_hits == 1

    def test_different_inputs_not_memoized(self):
        engine = make_static_engine()
        a, b = np.arange(8.0), np.arange(8.0) + 1
        process(engine, square_task(a, np.zeros(8), task_id=0))
        decision, _ = process(engine, square_task(b, np.zeros(8), task_id=1))
        assert decision.action == ATMAction.EXECUTE

    def test_non_memoizable_task_type_ignored(self):
        engine = make_static_engine()
        src, dst = np.arange(4.0), np.zeros(4)
        decision = engine.task_ready(square_task(src, dst, task_type=PLAIN_TYPE))
        assert decision.action == ATMAction.EXECUTE
        assert not decision.atm_handled
        assert engine.stats.eligible_tasks == 0

    def test_ikt_defers_task_while_producer_in_flight(self):
        engine = make_static_engine()
        src = np.arange(8.0)
        producer_out, consumer_out = np.zeros(8), np.zeros(8)
        producer = square_task(src, producer_out, task_id=0)
        consumer = square_task(src, consumer_out, task_id=1)
        producer_decision = engine.task_ready(producer)
        assert producer_decision.action == ATMAction.EXECUTE
        consumer_decision = engine.task_ready(consumer)
        assert consumer_decision.action == ATMAction.DEFER
        assert consumer_decision.waiting_on is producer
        completions = []
        engine.set_deferred_completion_callback(lambda t, b: completions.append((t, b)))
        producer.run()
        commit = engine.task_finished(producer, producer_decision, executed=True)
        assert commit.deferred_completed == 1
        assert completions and completions[0][0] is consumer
        assert np.allclose(consumer_out, src ** 2)
        assert engine.stats.ikt_hits == 1

    def test_ikt_disabled(self):
        engine = make_static_engine(use_ikt=False)
        src = np.arange(8.0)
        producer = square_task(src, np.zeros(8), task_id=0)
        consumer = square_task(src, np.zeros(8), task_id=1)
        engine.task_ready(producer)
        assert engine.task_ready(consumer).action == ATMAction.EXECUTE

    def test_inconsistent_executed_flag_rejected(self):
        engine = make_static_engine()
        src, dst = np.arange(4.0), np.zeros(4)
        task = square_task(src, dst)
        decision = engine.task_ready(task)
        with pytest.raises(MemoizationError):
            engine.task_finished(task, decision, executed=False)

    def test_memory_bytes_breakdown(self):
        engine = make_static_engine()
        src, dst = np.arange(8.0), np.zeros(8)
        process(engine, square_task(src, dst))
        parts = engine.memory_bytes()
        assert parts["total"] == (
            parts["tht"] + parts["ikt"] + parts["shuffles"] + parts["key_cache"]
        )
        assert parts["tht"] > 0
        assert engine.memory_overhead_percent(int(src.nbytes + dst.nbytes)) > 0.0

    def test_describe_mentions_policy(self):
        assert "static" in make_static_engine().describe()


class TestDynamicEngine:
    def make_engine(self) -> ATMEngine:
        config = ATMConfig()
        return ATMEngine(config=config, policy=DynamicATMPolicy(config), num_threads=2)

    def test_training_hits_execute_and_report_tau(self):
        engine = self.make_engine()
        src = np.arange(16.0)
        process(engine, square_task(src, np.zeros(16), task_id=0))
        decision, _ = process(engine, square_task(src, np.zeros(16), task_id=1))
        assert decision.action == ATMAction.EXECUTE_AND_TRAIN
        assert engine.stats.training_hits == 1
        assert engine.stats.training_errors[0] == pytest.approx(0.0)

    def test_steady_state_reached_and_memoizes(self):
        engine = self.make_engine()
        src = np.arange(16.0)
        outs = [np.zeros(16) for _ in range(6)]
        decisions = [process(engine, square_task(src, out, task_id=i))[0] for i, out in enumerate(outs)]
        # l_training = 2: first is a miss, two training hits, then SKIPs.
        actions = [d.action for d in decisions]
        assert actions[0] == ATMAction.EXECUTE
        assert actions[1] == actions[2] == ATMAction.EXECUTE_AND_TRAIN
        assert all(a == ATMAction.SKIP for a in actions[3:])
        assert all(np.allclose(out, src ** 2) for out in outs)

    def test_failed_training_doubles_p(self):
        engine = self.make_engine()
        rng = np.random.default_rng(0)
        # Inputs that collide at 1 sampled byte but produce different outputs.
        a = rng.uniform(1.0, 2.0, 64)
        b = a.copy()
        b[1:] += 0.3   # same leading MSB byte is likely, different outputs
        process(engine, square_task(a, np.zeros(64), task_id=0))
        initial_p = engine.policy.sampling_fraction(square_task(a, np.zeros(64)))
        for index in range(6):
            process(engine, square_task(b if index % 2 else a, np.zeros(64), task_id=index + 1))
        assert engine.policy.sampling_fraction(square_task(a, np.zeros(64))) >= initial_p

    def test_blacklisted_task_bypasses_atm(self):
        config = ATMConfig()
        policy = DynamicATMPolicy(config)
        engine = ATMEngine(config=config, policy=policy, num_threads=2)
        out = np.zeros(8)
        task_type = TaskType("bl-engine", memoizable=True, tau_max=0.01, l_training=50)
        src = np.arange(8.0)
        # Force the policy into a state where `out` is blacklisted and steady.
        state = policy.trainer.state_for(task_type.name)
        from repro.atm.adaptive import TrainingPhase

        state.phase = TrainingPhase.STEADY
        state.unstable_outputs.add(Out(out).region.region_key)
        decision = engine.task_ready(square_task(src, out, task_type=task_type))
        assert decision.action == ATMAction.EXECUTE
        assert not decision.atm_handled
        assert engine.stats.blacklisted_skips == 1


class TestStatsIntegration:
    def test_reuse_events_record_producer_and_consumer(self):
        engine = make_static_engine()
        src = np.arange(8.0)
        producer_task = square_task(src, np.zeros(8), task_id=0)
        producer_task.creation_index = 0
        process(engine, producer_task)
        consumer_task = square_task(src, np.zeros(8), task_id=5)
        consumer_task.creation_index = 5
        process(engine, consumer_task)
        events = engine.stats.snapshot()["reuse_events"]
        assert events == [(0, 5, "tht")]

    def test_cumulative_reuse_curve(self):
        engine = make_static_engine()
        src = np.arange(8.0)
        for index in range(5):
            task = square_task(src, np.zeros(8), task_id=index)
            task.creation_index = index
            process(engine, task)
        x, y = engine.stats.cumulative_reuse_curve(total_tasks=5)
        assert len(x) == 4            # four reuses of the first task
        assert y[-1] == pytest.approx(1.0)
        assert (x == 0.0).all()       # all generated by the first task

    def test_reuse_percentage(self):
        engine = make_static_engine()
        src = np.arange(8.0)
        for index in range(4):
            process(engine, square_task(src, np.zeros(8), task_id=index))
        assert engine.stats.reuse_percentage() == pytest.approx(75.0)
