"""Persistent THT store tests (DESIGN.md §9).

Covers the ``file://`` snapshot format (round-trip bit-identity, append +
compact, corruption -> named error + cold start), the ``tcp://`` cache-shard
protocol (handshake, fetch/publish/stats, unavailability), and the Session
warm-start semantics on the six benchmark applications.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.apps import make_benchmark
from repro.apps.registry import BENCHMARK_NAMES
from repro.atm.store import (
    SHARD_PROTOCOL_VERSION,
    STORE_SCHEMA_VERSION,
    FileTHTStore,
    ShardState,
    ShardTHTStore,
    merge_deltas,
    open_store,
    parse_store_url,
)
from repro.atm.tht import TaskHistoryTable
from repro.common.config import ATMConfig
from repro.common.exceptions import (
    ConfigurationError,
    THTStoreCorruptError,
    THTStoreError,
    THTStoreUnavailableError,
)
from repro.common.hashing import HashKey, hash_bytes
from repro.runtime.net_wire import encode_frame
from repro.session import In, Out, Session

CFG = ATMConfig(tht_bucket_bits=4, tht_bucket_capacity=8)


def load_shard_module():
    """Import ``scripts/tht_shard.py`` (not a package) by file path."""
    name = "tht_shard_under_test"
    if name in sys.modules:
        return sys.modules[name]
    path = Path(__file__).resolve().parents[2] / "scripts" / "tht_shard.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def fill_table(n: int = 12, seed: int = 0) -> TaskHistoryTable:
    tht = TaskHistoryTable(CFG)
    tht.enable_journal()
    for i in range(n):
        tht.insert(
            HashKey(value=seed * 100_000 + i * 17),
            "store-test",
            [np.arange(6, dtype=np.float64) + seed * 1000 + i],
            producer_index=i,
        )
    return tht


def entry_map(delta: dict) -> dict:
    return {
        (e.key_value, e.task_type_name, e.p_canonical): e
        for e in delta["entries"]
    }


@pytest.fixture()
def store_path(tmp_path) -> Path:
    return tmp_path / "tht" / "store.tht"


@pytest.fixture(scope="module")
def shard():
    """An in-process cache-shard daemon; yields its ``tcp://`` URL."""
    server, addr = load_shard_module().serve_in_thread(
        bucket_bits=CFG.tht_bucket_bits, bucket_capacity=CFG.tht_bucket_capacity
    )
    yield f"tcp://{addr}"
    server.shutdown_gracefully()


class TestUrlParsing:
    def test_file_and_tcp_urls(self, tmp_path):
        kind, path = parse_store_url(f"file://{tmp_path}/x.tht")
        assert kind == "file" and path == tmp_path / "x.tht"
        assert parse_store_url("tcp://host.example:9201") == (
            "tcp", ("host.example", 9201)
        )

    @pytest.mark.parametrize("url", [
        "ftp://x", "file://", "tcp://nohost", "tcp://h:notaport", "relative/path",
    ])
    def test_bad_urls_raise(self, url):
        with pytest.raises(THTStoreError):
            parse_store_url(url)

    def test_config_validates_store_url(self):
        with pytest.raises(ConfigurationError, match="tht_store"):
            ATMConfig(tht_store="ftp://x").validate()
        with pytest.raises(ConfigurationError, match="tht_store"):
            ATMConfig(tht_store="tcp://h:70000").validate()
        ATMConfig(tht_store="tcp://h:9201").validate()
        ATMConfig(tht_store="file:///tmp/x.tht").validate()

    def test_open_store_dispatches_by_scheme(self, store_path):
        store = open_store(f"file://{store_path}", CFG)
        assert isinstance(store, FileTHTStore)
        assert store.url == f"file://{store_path}"


class TestMergeDeltas:
    def test_later_entries_win_and_counters_sum(self):
        first = fill_table(4, seed=1).snapshot()
        second = fill_table(4, seed=1).snapshot()  # same keys, new outputs
        merged = merge_deltas([first, second])
        assert len(merged["entries"]) == 4
        for key, entry in entry_map(merged).items():
            np.testing.assert_array_equal(
                entry.outputs[0], entry_map(second)[key].outputs[0]
            )
        assert merged["counters"]["insertions"] == 8


class TestFileStore:
    def test_missing_file_loads_empty(self, store_path):
        delta = FileTHTStore(store_path, CFG).load()
        assert delta["entries"] == []
        assert not store_path.exists()

    def test_round_trip_is_bit_identical(self, store_path):
        tht = fill_table(12)
        shipped = tht.snapshot(reset=True)
        store = FileTHTStore(store_path, CFG)
        assert store.publish(shipped) == 12
        loaded = FileTHTStore(store_path, CFG).load()
        assert entry_map(loaded).keys() == entry_map(shipped).keys()
        for key, entry in entry_map(shipped).items():
            restored = entry_map(loaded)[key]
            assert hash_bytes(restored.outputs[0].tobytes()) == hash_bytes(
                entry.outputs[0].tobytes()
            )
            assert restored.stored_bytes == entry.stored_bytes
            assert restored.producer_index == entry.producer_index

    def test_empty_delta_publish_is_a_noop(self, store_path):
        store = FileTHTStore(store_path, CFG)
        assert store.publish({"entries": [], "counters": {}}) == 0
        assert not store_path.exists()

    def test_appends_compact_to_a_bounded_frame_count(self, store_path):
        config = ATMConfig(
            tht_bucket_bits=CFG.tht_bucket_bits,
            tht_bucket_capacity=CFG.tht_bucket_capacity,
            tht_store_compact_frames=3,
        )
        store = FileTHTStore(store_path, config)
        for seed in range(10):
            store.publish(fill_table(2, seed=seed).snapshot())
        stats = store.stats()
        assert stats["delta_frames"] <= config.tht_store_compact_frames + 1
        assert stats["entries"] == 20
        assert len(store.load()["entries"]) == 20
        # compaction leaves no temp litter behind
        assert list(store_path.parent.glob("*.tmp")) == []

    @pytest.mark.parametrize("damage", ["truncate", "garbage", "flip"])
    def test_damaged_file_raises_the_named_error(self, store_path, damage):
        store = FileTHTStore(store_path, CFG)
        store.publish(fill_table(6).snapshot())
        raw = store_path.read_bytes()
        if damage == "truncate":
            store_path.write_bytes(raw[:-7])
        elif damage == "garbage":
            store_path.write_bytes(b"these are not frames")
        else:
            store_path.write_bytes(raw[: len(raw) // 2] + b"\xff" + raw[len(raw) // 2 + 1:])
        with pytest.raises(THTStoreCorruptError):
            store.load()

    def test_schema_mismatch_raises_corrupt(self, store_path):
        store_path.parent.mkdir(parents=True)
        store_path.write_bytes(
            encode_frame(("tht_store", {"schema": STORE_SCHEMA_VERSION + 1}))
        )
        with pytest.raises(THTStoreCorruptError, match="schema"):
            FileTHTStore(store_path, CFG).load()

    def test_header_kind_mismatch_raises_corrupt(self, store_path):
        store_path.parent.mkdir(parents=True)
        store_path.write_bytes(encode_frame(("something_else", {})))
        with pytest.raises(THTStoreCorruptError, match="header"):
            FileTHTStore(store_path, CFG).load()

    def test_publish_self_heals_a_damaged_store(self, store_path):
        store = FileTHTStore(store_path, CFG)
        store.publish(fill_table(4).snapshot())
        store_path.write_bytes(b"broken beyond repair")
        store.publish(fill_table(5, seed=9).snapshot())
        assert len(store.load()["entries"]) == 5


class TestShardState:
    def test_hello_checks_the_protocol_version(self):
        state = ShardState(CFG)
        kind, info = state.handle(("hello", {"protocol": SHARD_PROTOCOL_VERSION}))
        assert kind == "hello_ack"
        assert info["schema"] == STORE_SCHEMA_VERSION
        reply = state.handle(("hello", {"protocol": 999}))
        assert reply[0] == "error"

    def test_publish_then_fetch_round_trips(self):
        state = ShardState(CFG)
        shipped = fill_table(8).snapshot()
        kind, received = state.handle(("publish", shipped))
        assert (kind, received) == ("publish_ack", 8)
        kind, delta = state.handle(("fetch",))
        assert kind == "fetch_result"
        assert entry_map(delta).keys() == entry_map(shipped).keys()
        kind, stats = state.handle(("stats",))
        assert kind == "stats_reply"
        assert stats["entries"] == 8
        assert stats["publishes"] == 1 and stats["fetches"] == 1

    def test_malformed_requests_get_error_replies(self):
        state = ShardState(CFG)
        assert state.handle("not-a-tuple")[0] == "error"
        assert state.handle(("frobnicate",))[0] == "error"
        assert state.handle(("publish", "not-a-delta"))[0] == "error"


class TestShardService:
    def test_publish_visible_to_other_clients(self, shard):
        shipped = fill_table(10, seed=3).snapshot()
        with open_store(shard, CFG) as writer:
            assert writer.publish(shipped) == 10
        with open_store(shard, CFG) as reader:
            fetched = reader.load()
            stats = reader.stats()
        assert entry_map(shipped).keys() <= entry_map(fetched).keys()
        assert stats["publishes"] >= 1
        assert stats["backend"] == "shard"

    def test_unreachable_shard_raises_unavailable(self):
        with pytest.raises(THTStoreUnavailableError):
            ShardTHTStore("127.0.0.1", 1, CFG, timeout_s=0.5)

    def test_closed_connection_raises_unavailable(self, shard):
        store = open_store(shard, CFG)
        store.close()
        with pytest.raises(THTStoreUnavailableError):
            store.load()

    def test_backed_shard_survives_restart(self, tmp_path):
        backing = tmp_path / "shard-backing.tht"
        module = load_shard_module()
        server, addr = module.serve_in_thread(
            bucket_bits=CFG.tht_bucket_bits,
            bucket_capacity=CFG.tht_bucket_capacity,
            backing=backing,
        )
        shipped = fill_table(7, seed=5).snapshot()
        with ShardTHTStore(*addr.rsplit(":", 1)[:1], int(addr.rsplit(":", 1)[1]), CFG) as c:
            c.publish(shipped)
        server.shutdown_gracefully()  # flushes the backing file
        assert backing.exists()
        server2, addr2 = module.serve_in_thread(
            bucket_bits=CFG.tht_bucket_bits,
            bucket_capacity=CFG.tht_bucket_capacity,
            backing=backing,
        )
        try:
            with ShardTHTStore(*addr2.rsplit(":", 1)[:1], int(addr2.rsplit(":", 1)[1]), CFG) as c:
                restored = c.load()
            assert entry_map(shipped).keys() == entry_map(restored).keys()
        finally:
            server2.shutdown_gracefully()


def run_saxpy(config, n=10):
    """One tiny memoizable workload; returns (session, outputs)."""
    with Session(config, executor="serial") as s:
        @s.task(memoizable=True)
        def saxpy(x: In, y: Out, a):
            y[:] = a * x

        xs = [np.full(32, float(i)) for i in range(n)]
        ys = [np.zeros(32) for _ in range(n)]
        for x, y in zip(xs, ys):
            saxpy(x, y, 2.0)
        s.wait_all()
        return s, [y.copy() for y in ys]


class TestSessionWarmStart:
    def atm(self, url) -> dict:
        return {"atm": {"mode": "static", "tht_store": url}}

    def test_file_store_cold_then_warm(self, store_path):
        url = f"file://{store_path}"
        cold, cold_out = run_saxpy(self.atm(url))
        assert not cold.warm_started
        assert cold.stats["tht_hits"] == 0
        warm, warm_out = run_saxpy(self.atm(url))
        assert warm.warm_started
        assert warm.stats["tht_hits"] == 10  # every task reused: >50% hit-rate
        assert all(np.array_equal(a, b) for a, b in zip(cold_out, warm_out))

    def test_shard_store_cold_then_warm(self, shard):
        cold, cold_out = run_saxpy(self.atm(shard), n=8)
        warm, warm_out = run_saxpy(self.atm(shard), n=8)
        assert warm.warm_started
        assert warm.stats["tht_hits"] == 8
        assert all(np.array_equal(a, b) for a, b in zip(cold_out, warm_out))

    def test_corrupt_store_warns_and_cold_starts(self, store_path):
        url = f"file://{store_path}"
        run_saxpy(self.atm(url))
        store_path.write_bytes(b"definitely not a store")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            session, _ = run_saxpy(self.atm(url))
        assert not session.warm_started
        assert session.stats["tht_hits"] == 0
        # the finish() flush replaced the damaged file: next run is warm
        healed, _ = run_saxpy(self.atm(url))
        assert healed.warm_started

    def test_unreachable_shard_warns_and_cold_starts(self):
        with pytest.warns(RuntimeWarning, match="unavailable"):
            session, _ = run_saxpy(self.atm("tcp://127.0.0.1:1"))
        assert not session.warm_started

    def test_store_without_engine_is_a_config_error(self, store_path):
        with pytest.raises(ConfigurationError, match="tht_store"):
            Session(
                {"atm": {"mode": "none", "tht_store": f"file://{store_path}"}},
                executor="serial",
            )

    def test_error_path_close_does_not_publish(self, store_path):
        url = f"file://{store_path}"
        session, _ = run_saxpy(self.atm(url))
        before = store_path.read_bytes()
        with pytest.raises(ValueError):
            with Session(self.atm(url), executor="serial") as s:
                @s.task(memoizable=True)
                def work(x: In, y: Out):
                    y[:] = x

                raise ValueError("in-flight failure")
        assert store_path.read_bytes() == before

    @pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
    def test_warm_restore_serves_benchmark_bit_identical(self, tmp_path, bench_name):
        """Cold-vs-warm on each benchmark app: same bytes, real reuse."""
        url = f"file://{tmp_path / 'bench.tht'}"
        reference = make_benchmark(bench_name, scale="tiny")
        with Session({"atm": {"mode": "static"}}, executor="serial") as s:
            reference.run(s)

        cold = make_benchmark(bench_name, scale="tiny")
        with Session(self.atm(url), executor="serial") as s:
            cold.run(s)
            cold_memoized = s.result.tasks_memoized

        warm = make_benchmark(bench_name, scale="tiny")
        with Session(self.atm(url), executor="serial") as s:
            warm.run(s)
            assert s.warm_started
            assert s.stats["tht_hits"] > 0
            # The restored table serves at least the hits the live table
            # produced within one cold run.
            assert s.result.tasks_memoized >= cold_memoized

        expected = hash_bytes(np.ascontiguousarray(reference.output()).tobytes())
        for app in (cold, warm):
            got = hash_bytes(np.ascontiguousarray(app.output()).tobytes())
            assert got == expected, f"{bench_name}: warm restore changed the output"
