"""Tests for the Dynamic-ATM trainer and the ATM policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atm.adaptive import DynamicATMTrainer, TrainingPhase
from repro.atm.policy import (
    ATMMode,
    DynamicATMPolicy,
    FixedPPolicy,
    NoATMPolicy,
    StaticATMPolicy,
    make_policy,
)
from repro.common.config import ATMConfig, MIN_P
from repro.runtime.data import In, Out
from repro.runtime.task import Task, TaskType


def make_task(task_type=None, out=None):
    task_type = task_type or TaskType("train-test", memoizable=True, tau_max=0.01, l_training=3)
    out = out if out is not None else np.zeros(4)
    return Task(
        task_type=task_type,
        function=lambda: None,
        accesses=[In(np.zeros(4)), Out(out)],
        task_id=0,
    )


class TestTrainerPhases:
    def test_starts_in_training_at_p_initial(self):
        trainer = DynamicATMTrainer(ATMConfig())
        task = make_task()
        assert trainer.is_training(task)
        assert trainer.current_p(task) == MIN_P

    def test_failure_doubles_p(self):
        trainer = DynamicATMTrainer(ATMConfig())
        task = make_task()
        trainer.record_training_outcome(task, tau=1.0)
        assert trainer.current_p(task) == pytest.approx(2 * MIN_P)

    def test_p_never_exceeds_one(self):
        trainer = DynamicATMTrainer(ATMConfig())
        task = make_task()
        for _ in range(40):
            trainer.record_training_outcome(task, tau=1.0)
        assert trainer.current_p(task) == 1.0

    def test_steady_after_l_training_consecutive_successes(self):
        trainer = DynamicATMTrainer(ATMConfig())
        task = make_task()  # l_training = 3
        for _ in range(3):
            trainer.record_training_outcome(task, tau=0.0)
        assert not trainer.is_training(task)
        assert trainer.chosen_p(task.task_type.name) == MIN_P

    def test_failure_resets_success_counter(self):
        trainer = DynamicATMTrainer(ATMConfig())
        task = make_task()
        trainer.record_training_outcome(task, tau=0.0)
        trainer.record_training_outcome(task, tau=0.0)
        trainer.record_training_outcome(task, tau=1.0)   # reset
        trainer.record_training_outcome(task, tau=0.0)
        trainer.record_training_outcome(task, tau=0.0)
        assert trainer.is_training(task)
        trainer.record_training_outcome(task, tau=0.0)
        assert not trainer.is_training(task)

    def test_outcomes_ignored_once_steady(self):
        trainer = DynamicATMTrainer(ATMConfig())
        task = make_task()
        for _ in range(3):
            trainer.record_training_outcome(task, tau=0.0)
        p_before = trainer.chosen_p(task.task_type.name)
        trainer.record_training_outcome(task, tau=5.0)
        assert trainer.chosen_p(task.task_type.name) == p_before

    def test_chosen_p_none_while_training(self):
        trainer = DynamicATMTrainer(ATMConfig())
        task = make_task()
        assert trainer.chosen_p(task.task_type.name) is None

    def test_per_task_type_isolation(self):
        trainer = DynamicATMTrainer(ATMConfig())
        type_a = TaskType("type-a", memoizable=True, tau_max=0.01, l_training=2)
        type_b = TaskType("type-b", memoizable=True, tau_max=0.01, l_training=2)
        trainer.record_training_outcome(make_task(type_a), tau=1.0)
        assert trainer.current_p(make_task(type_a)) == 2 * MIN_P
        assert trainer.current_p(make_task(type_b)) == MIN_P

    def test_task_type_overrides_used(self):
        trainer = DynamicATMTrainer(ATMConfig(tau_max=0.5, l_training=99))
        custom = TaskType("custom", memoizable=True, tau_max=0.2, l_training=1)
        task = make_task(custom)
        trainer.record_training_outcome(task, tau=0.1)
        assert not trainer.is_training(task)

    def test_summary(self):
        trainer = DynamicATMTrainer(ATMConfig())
        task = make_task()
        trainer.record_training_outcome(task, tau=1.0)
        summary = trainer.summary()[task.task_type.name]
        assert summary["training_failures"] == 1
        assert summary["phase"] == "training"


class TestUnstableOutputBlacklist:
    def test_single_failure_does_not_blacklist(self):
        trainer = DynamicATMTrainer(ATMConfig())
        out = np.zeros(4)
        task = make_task(out=out)
        trainer.record_training_outcome(task, tau=0.0)   # one prior success
        trainer.record_training_outcome(task, tau=1.0)   # single failure
        assert not trainer.is_output_blacklisted(make_task(task.task_type, out=out))

    def test_repeated_failures_blacklist_output(self):
        trainer = DynamicATMTrainer(ATMConfig())
        out = np.zeros(4)
        task_type = TaskType("bl", memoizable=True, tau_max=0.01, l_training=50)
        unstable = make_task(task_type, out=out)
        stable = make_task(task_type, out=np.zeros(4))
        trainer.record_training_outcome(stable, tau=0.0)
        trainer.record_training_outcome(unstable, tau=1.0)
        trainer.record_training_outcome(stable, tau=0.0)
        trainer.record_training_outcome(unstable, tau=1.0)
        assert trainer.is_output_blacklisted(make_task(task_type, out=out))
        assert not trainer.is_output_blacklisted(stable)

    def test_blacklisting_disabled_by_config(self):
        trainer = DynamicATMTrainer(ATMConfig(track_unstable_outputs=False))
        out = np.zeros(4)
        task = make_task(out=out)
        trainer.record_training_outcome(task, tau=0.0)
        trainer.record_training_outcome(task, tau=1.0)
        trainer.record_training_outcome(task, tau=0.0)
        trainer.record_training_outcome(task, tau=1.0)
        assert not trainer.is_output_blacklisted(make_task(task.task_type, out=out))


class TestPolicies:
    def test_static_policy_full_p_no_training(self):
        policy = StaticATMPolicy()
        task = make_task()
        assert policy.sampling_fraction(task) == 1.0
        assert not policy.is_training(task)
        assert policy.describe() == "static"

    def test_fixed_p_policy(self):
        policy = FixedPPolicy(0.25)
        assert policy.sampling_fraction(make_task()) == 0.25
        assert policy.mode == ATMMode.FIXED_P

    def test_dynamic_policy_delegates_to_trainer(self):
        policy = DynamicATMPolicy(ATMConfig())
        task = make_task()
        assert policy.is_training(task)
        assert policy.sampling_fraction(task) == MIN_P
        policy.record_training_outcome(task, tau=1.0)
        assert policy.sampling_fraction(task) == 2 * MIN_P

    def test_dynamic_policy_blacklist_only_in_steady_state(self):
        config = ATMConfig()
        policy = DynamicATMPolicy(config)
        task_type = TaskType("bl2", memoizable=True, tau_max=0.01, l_training=2)
        out = np.zeros(4)
        unstable = make_task(task_type, out=out)
        # Two failures, each amid successes: the output gets blacklisted, but
        # the blacklist only takes effect once the steady phase is reached.
        policy.record_training_outcome(make_task(task_type), tau=0.0)
        policy.record_training_outcome(unstable, tau=1.0)
        policy.record_training_outcome(make_task(task_type), tau=0.0)
        policy.record_training_outcome(unstable, tau=1.0)
        assert not policy.is_blacklisted(unstable)  # still training: never blacklisted
        policy.record_training_outcome(make_task(task_type), tau=0.0)
        policy.record_training_outcome(make_task(task_type), tau=0.0)  # -> steady
        assert policy.is_blacklisted(make_task(task_type, out=out))

    def test_no_atm_policy_describe(self):
        assert NoATMPolicy().describe() == "no-atm"

    def test_factory(self):
        assert isinstance(make_policy("static"), StaticATMPolicy)
        assert isinstance(make_policy(ATMMode.DYNAMIC), DynamicATMPolicy)
        assert isinstance(make_policy("none"), NoATMPolicy)
        assert isinstance(make_policy("fixed_p", p=0.5), FixedPPolicy)
        with pytest.raises(ValueError):
            make_policy("fixed_p")
        with pytest.raises(ValueError):
            make_policy("bogus")
