"""Equivalence proofs: the zero-copy/cached keygen vs the seed implementation.

The optimised :class:`~repro.atm.keygen.HashKeyGenerator` (default
``"exact"`` pipeline) must produce **bit-identical** ``HashKey.value`` to the
preserved seed implementation
(:class:`~repro.atm.keygen_reference.ReferenceKeyGenerator`) for every arity,
shuffle flavour and sampling fraction, with the digest caches hot or cold.
The ``"digest"`` pipeline is additionally proven identical for single-input
tasks and semantically equivalent (order/content/p-sensitive, deterministic)
for multi-input tasks.

Also covers digest-cache invalidation: a write to a region must change the
next key.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.atm.keygen import HashKeyGenerator
from repro.atm.keygen_reference import ReferenceKeyGenerator
from repro.common.config import ATMConfig
from repro.runtime.data import In, Out
from repro.runtime.task import Task, TaskType

TT = TaskType("equiv-test", memoizable=True)

P_GRID = (0.001, 0.5, 1.0)


def make_task(arrays, outputs=()):
    accesses = [In(a) for a in arrays] + [Out(o) for o in outputs]
    return Task(task_type=TT, function=lambda: None, accesses=accesses, task_id=0)


def array_sets():
    rng = np.random.default_rng(42)
    return {
        "one_float64": [rng.standard_normal(4096)],
        "one_int32": [rng.integers(-1000, 1000, 2048, dtype=np.int32)],
        "multi_uniform": [rng.standard_normal(1024) for _ in range(4)],
        "multi_mixed_dtypes": [
            rng.standard_normal(513),                                  # odd size
            rng.integers(0, 255, 1000, dtype=np.uint8),
            rng.standard_normal(256).astype(np.float32),
            rng.integers(-7, 7, 77, dtype=np.int16),
        ],
        "multi_lopsided": [rng.standard_normal(65536), rng.standard_normal(32)],
    }


class TestExactPipelineBitIdentical:
    @pytest.mark.parametrize("type_aware", [True, False])
    @pytest.mark.parametrize("p", P_GRID)
    @pytest.mark.parametrize("case", sorted(array_sets()))
    def test_bit_identical_to_seed(self, case, p, type_aware):
        arrays = array_sets()[case]
        config = ATMConfig(type_aware=type_aware)
        new = HashKeyGenerator(config)
        ref = ReferenceKeyGenerator(config)
        task = make_task(arrays)
        for _ in range(3):  # repeat: cold caches, then hot caches
            key_new = new.compute(task, p)
            key_ref = ref.compute(task, p)
            assert key_new.value == key_ref.value
            assert key_new.sampled_bytes == key_ref.sampled_bytes
            assert key_new.total_bytes == key_ref.total_bytes

    @pytest.mark.parametrize("p", P_GRID)
    def test_cache_on_equals_cache_off(self, p):
        arrays = array_sets()["multi_mixed_dtypes"]
        cached = HashKeyGenerator(ATMConfig(key_cache=True))
        uncached = HashKeyGenerator(ATMConfig(key_cache=False))
        task = make_task(arrays)
        for _ in range(3):
            assert cached.compute(task, p).value == uncached.compute(task, p).value

    def test_no_input_task_matches_seed(self):
        config = ATMConfig()
        new = HashKeyGenerator(config)
        ref = ReferenceKeyGenerator(config)
        task = make_task([], outputs=[np.zeros(8)])
        assert new.compute(task, 1.0).value == ref.compute(task, 1.0).value

    def test_dense_fallback_boundary(self):
        """Keys stay identical on both sides of the dense-sample crossover."""
        arrays = array_sets()["multi_uniform"]
        config = ATMConfig()
        new = HashKeyGenerator(config)
        ref = ReferenceKeyGenerator(config)
        task = make_task(arrays)
        total = sum(a.nbytes for a in arrays)
        for count_fraction in (1 / 32, 1 / 16, 1 / 8, 0.9):
            p = count_fraction
            assert new.compute(task, p).value == ref.compute(task, p).value, p

    def test_prefix_growth_preserves_keys(self):
        """Growing the stored shuffle (larger p) must not change earlier keys."""
        arrays = array_sets()["one_float64"]
        config = ATMConfig()
        new = HashKeyGenerator(config)
        ref = ReferenceKeyGenerator(config)
        task = make_task(arrays)
        small_before = new.compute(task, 0.01).value
        new.compute(task, 0.4)  # grows the stored prefix
        assert new.compute(task, 0.01).value == small_before
        assert small_before == ref.compute(task, 0.01).value


class TestDigestPipeline:
    def config(self, **kw):
        return ATMConfig(key_pipeline="digest", **kw)

    @pytest.mark.parametrize("p", P_GRID)
    def test_single_input_identical_to_seed(self, p):
        arrays = array_sets()["one_float64"]
        new = HashKeyGenerator(self.config())
        ref = ReferenceKeyGenerator(ATMConfig())
        task = make_task(arrays)
        assert new.compute(task, p).value == ref.compute(task, p).value

    def test_multi_input_deterministic_and_consistent(self):
        arrays = array_sets()["multi_mixed_dtypes"]
        g1 = HashKeyGenerator(self.config())
        g2 = HashKeyGenerator(self.config(key_cache=False))
        task = make_task(arrays)
        k1 = g1.compute(task, 0.25)
        # Identical content in fresh buffers -> identical key.
        copies = [a.copy() for a in arrays]
        assert g1.compute(make_task(copies), 0.25).value == k1.value
        # Cache on/off agree.
        assert g2.compute(task, 0.25).value == k1.value

    def test_multi_input_order_sensitive(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal(512), rng.standard_normal(512)
        generator = HashKeyGenerator(self.config())
        assert (
            generator.compute(make_task([a, b]), 0.5).value
            != generator.compute(make_task([b, a]), 0.5).value
        )

    def test_multi_input_content_sensitive(self):
        rng = np.random.default_rng(4)
        arrays = [rng.standard_normal(512) for _ in range(3)]
        generator = HashKeyGenerator(self.config())
        before = generator.compute(make_task(arrays), 1.0).value
        mutated = [a.copy() for a in arrays]
        mutated[1][7] += 1.0
        assert generator.compute(make_task(mutated), 1.0).value != before


class TestLayoutKeyedCaches:
    """Cache entries must be keyed by the per-input byte layout.

    Two tasks of the same type and same total input bytes may split those
    bytes differently; a region appearing at the same ordinal in both must
    not reuse the other layout's cached sample segment.
    """

    @pytest.mark.parametrize("pipeline", ["exact", "digest"])
    def test_shared_region_across_layouts(self, pipeline):
        rng = np.random.default_rng(11)
        shared = rng.standard_normal(8)          # 64 bytes, ordinal 1 in both
        b, c = rng.standard_normal(8), rng.standard_normal(16)
        d, e = rng.standard_normal(16), rng.standard_normal(8)
        layout_one = [b, shared, c]              # sizes (64, 64, 128)
        layout_two = [d, shared, e]              # sizes (128, 64, 64)
        config = ATMConfig(key_pipeline=pipeline)
        cached = HashKeyGenerator(config)
        key_one = cached.compute(make_task(layout_one), 0.05)
        key_two = cached.compute(make_task(layout_two), 0.05)
        fresh = HashKeyGenerator(config)
        assert fresh.compute(make_task(layout_two), 0.05).value == key_two.value
        assert fresh.compute(make_task(layout_one), 0.05).value == key_one.value
        if pipeline == "exact":
            ref = ReferenceKeyGenerator(ATMConfig())
            assert ref.compute(make_task(layout_one), 0.05).value == key_one.value
            assert ref.compute(make_task(layout_two), 0.05).value == key_two.value


class TestDigestCacheInvalidation:
    def test_write_through_copy_from_changes_next_key(self):
        rng = np.random.default_rng(5)
        big = rng.standard_normal(8192)
        small = rng.standard_normal(64)
        generator = HashKeyGenerator(ATMConfig())
        task = make_task([big, small])
        before = generator.compute(task, 0.05)
        assert generator.compute(task, 0.05).value == before.value  # cache hit
        assert generator.counters["key_cache_hits"] >= 1
        # Commit a write through the sanctioned path: the next key changes.
        task.accesses[1].region.copy_from(small + 123.0)
        after = generator.compute(task, 0.05)
        assert after.value != before.value

    def test_bump_version_invalidates_without_content_change_check(self):
        """A version bump alone forces recomputation (conservative, safe)."""
        rng = np.random.default_rng(6)
        data = rng.standard_normal(4096)
        generator = HashKeyGenerator(ATMConfig())
        task = make_task([data])
        before = generator.compute(task, 0.1)
        misses_before = generator.counters["key_cache_misses"]
        task.accesses[0].region.bump_version()
        after = generator.compute(task, 0.1)
        # Same bytes -> same key, but recomputed (cache missed on new version).
        assert after.value == before.value
        assert generator.counters["key_cache_misses"] == misses_before + 1

    def test_end_to_end_task_write_invalidates(self):
        """A write committed by the runtime changes the consumer's next key."""
        from repro.session import Session
        from repro.runtime.data import InOut

        rng = np.random.default_rng(7)
        shared = rng.standard_normal(2048)
        generator = HashKeyGenerator(ATMConfig())
        probe = make_task([shared])
        before = generator.compute(probe, 0.25)

        writer_type = TaskType("equiv-writer", memoizable=False)

        def writer(buf):
            buf += 1.0

        runtime = Session(executor="serial", cores=1)
        runtime.submit(writer_type, writer, accesses=[InOut(shared)], args=(shared,))
        runtime.finish()

        after = generator.compute(make_task([shared]), 0.25)
        assert after.value != before.value
