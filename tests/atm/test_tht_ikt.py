"""Tests for the Task History Table and the In-flight Key Table."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atm.ikt import InFlightKeyTable
from repro.atm.tht import TaskHistoryTable, THTEntry
from repro.common.config import ATMConfig
from repro.common.hashing import HashKey
from repro.runtime.data import Out
from repro.runtime.task import Task, TaskType

TT = TaskType("table-test", memoizable=True)


def make_key(value: int, p: float = 1.0) -> HashKey:
    return HashKey(value=value, p=p, sampled_bytes=8, total_bytes=8)


def make_outputs(seed: int = 0) -> list[np.ndarray]:
    return [np.full(4, float(seed)), np.full(2, float(seed) + 0.5)]


def make_task(index: int = 0) -> Task:
    return Task(task_type=TT, function=lambda: None,
                accesses=[Out(np.zeros(4))], task_id=index)


class TestTHTEntry:
    def test_stored_bytes(self):
        entry = THTEntry(1, 1.0, "t", make_outputs(), producer_index=0)
        assert entry.stored_bytes == 4 * 8 + 2 * 8

    def test_matching_requires_key_type_and_p(self):
        entry = THTEntry(42, 0.5, "t", make_outputs(), producer_index=0)
        assert entry.matches(make_key(42, 0.5), "t")
        assert not entry.matches(make_key(42, 1.0), "t")
        assert not entry.matches(make_key(43, 0.5), "t")
        assert not entry.matches(make_key(42, 0.5), "other")

    def test_memory_bytes_includes_metadata(self):
        entry = THTEntry(1, 1.0, "t", make_outputs(), producer_index=0)
        assert entry.memory_bytes == entry.stored_bytes + 24


class TestTaskHistoryTable:
    def config(self, bits=2, capacity=2) -> ATMConfig:
        return ATMConfig(tht_bucket_bits=bits, tht_bucket_capacity=capacity)

    def test_insert_then_lookup(self):
        tht = TaskHistoryTable(self.config())
        key = make_key(5)
        tht.insert(key, "t", make_outputs(1), producer_index=3)
        entry = tht.lookup(key, "t")
        assert entry is not None
        assert entry.producer_index == 3
        assert tht.hits == 1

    def test_miss_recorded(self):
        tht = TaskHistoryTable(self.config())
        assert tht.lookup(make_key(1), "t") is None
        assert tht.misses == 1
        assert tht.hit_rate == 0.0

    def test_bucket_selection_uses_low_bits(self):
        tht = TaskHistoryTable(self.config(bits=2))
        assert tht.bucket_index(make_key(0b1011)) == 0b11

    def test_fifo_eviction(self):
        tht = TaskHistoryTable(self.config(bits=0, capacity=2))
        keys = [make_key(i) for i in range(3)]
        for index, key in enumerate(keys):
            tht.insert(key, "t", make_outputs(index), producer_index=index)
        assert tht.evictions == 1
        assert tht.lookup(keys[0], "t") is None       # oldest evicted
        assert tht.lookup(keys[1], "t") is not None
        assert tht.lookup(keys[2], "t") is not None

    def test_refresh_existing_key_updates_in_place(self):
        tht = TaskHistoryTable(self.config(bits=0, capacity=4))
        key = make_key(9)
        tht.insert(key, "t", make_outputs(1), producer_index=1)
        tht.insert(key, "t", make_outputs(2), producer_index=2)
        assert len(tht) == 1
        assert tht.lookup(key, "t").producer_index == 2
        assert tht.evictions == 0

    def test_same_key_different_p_coexist(self):
        tht = TaskHistoryTable(self.config(bits=0, capacity=4))
        tht.insert(make_key(7, p=1.0), "t", make_outputs(1), producer_index=1)
        tht.insert(make_key(7, p=0.5), "t", make_outputs(2), producer_index=2)
        assert len(tht) == 2
        assert tht.lookup(make_key(7, p=0.5), "t").producer_index == 2

    def test_memory_bytes_grows_with_entries(self):
        tht = TaskHistoryTable(self.config())
        empty = tht.memory_bytes()
        tht.insert(make_key(1), "t", make_outputs(), producer_index=0)
        assert tht.memory_bytes() > empty

    def test_occupancy_histogram(self):
        tht = TaskHistoryTable(self.config(bits=1, capacity=4))
        tht.insert(make_key(0), "t", make_outputs(), producer_index=0)  # bucket 0
        tht.insert(make_key(1), "t", make_outputs(), producer_index=1)  # bucket 1
        tht.insert(make_key(3), "t", make_outputs(), producer_index=2)  # bucket 1
        assert tht.occupancy_histogram() == [1, 2]

    def test_clear(self):
        tht = TaskHistoryTable(self.config())
        tht.insert(make_key(1), "t", make_outputs(), producer_index=0)
        tht.lookup(make_key(1), "t")
        tht.clear()
        assert len(tht) == 0
        assert tht.hits == 0 and tht.insertions == 0

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_bucket_capacity_invariant(self, key_values):
        """Property: no bucket ever exceeds its configured capacity."""
        tht = TaskHistoryTable(self.config(bits=2, capacity=3))
        for index, value in enumerate(key_values):
            tht.insert(make_key(value), "t", make_outputs(index), producer_index=index)
            assert all(count <= 3 for count in tht.occupancy_histogram())


class TestInFlightKeyTable:
    def test_register_lookup_retire(self):
        ikt = InFlightKeyTable(max_entries=4)
        key = make_key(11)
        producer = make_task(0)
        assert ikt.register(key, "t", producer)
        assert ikt.lookup(key, "t") is producer
        assert ikt.retire(key, "t", producer)
        assert ikt.lookup(key, "t") is None

    def test_lookup_miss_counted(self):
        ikt = InFlightKeyTable()
        ikt.lookup(make_key(1), "t")
        assert ikt.misses == 1 and ikt.hits == 0

    def test_capacity_enforced(self):
        ikt = InFlightKeyTable(max_entries=1)
        assert ikt.register(make_key(1), "t", make_task(0))
        assert not ikt.register(make_key(2), "t", make_task(1))
        assert ikt.rejected_registrations == 1

    def test_retire_only_matching_task(self):
        ikt = InFlightKeyTable()
        key = make_key(4)
        first, second = make_task(0), make_task(1)
        ikt.register(key, "t", first)
        assert not ikt.retire(key, "t", second)
        assert ikt.retire(key, "t", first)

    def test_distinct_task_types_do_not_collide(self):
        ikt = InFlightKeyTable()
        key = make_key(6)
        ikt.register(key, "a", make_task(0))
        assert ikt.lookup(key, "b") is None

    def test_memory_bytes(self):
        ikt = InFlightKeyTable(max_entries=8)
        assert ikt.memory_bytes() == 8 * 24

    def test_clear(self):
        ikt = InFlightKeyTable()
        ikt.register(make_key(1), "t", make_task(0))
        ikt.clear()
        assert len(ikt) == 0 and ikt.registrations == 0


class TestCanonicalPMatching:
    """Satellite fix: float-equality on p silently broke Dynamic-ATM matches."""

    def test_p_recomputed_through_different_float_path_matches(self):
        from repro.atm.tht import THTEntry

        # 15 doublings of 2^-15 vs the literal 1.0-adjacent ladder value:
        # equal on paper, but a float-equality compare can be defeated by
        # intermediate rounding (e.g. scaling through percentages).
        p_stored = 0.1 + 0.2 - 0.2          # 0.10000000000000003
        p_probe = 0.1                        # 0.1
        assert p_stored != p_probe           # the seed bug's precondition
        entry = THTEntry(42, p_stored, "t", make_outputs(), producer_index=0)
        assert entry.matches(make_key(42, p_probe), "t")

    def test_ladder_values_stay_distinct(self):
        from repro.atm.tht import THTEntry
        from repro.common.config import P_LADDER

        entry = THTEntry(42, P_LADDER[0], "t", make_outputs(), producer_index=0)
        for p in P_LADDER[1:]:
            assert not entry.matches(make_key(42, p), "t")

    def test_canonical_p_quantization(self):
        from repro.common.hashing import canonical_p

        assert canonical_p(1.0) == canonical_p(1.0 - 2.0 ** -60)
        assert canonical_p(0.5) != canonical_p(0.25)
        assert canonical_p(2.0 ** -15) != canonical_p(2.0 ** -14)
        assert canonical_p(1e-12) >= 1  # tiny fractions clamp, never zero


class TestJournalDeltas:
    """Regression: journaled snapshot(reset=True) must ship every commit."""

    def config(self, bits=2, capacity=8) -> ATMConfig:
        return ATMConfig(tht_bucket_bits=bits, tht_bucket_capacity=capacity)

    def test_merge_feeds_enabled_journal(self):
        # The seed bug: merge() inserted directly into buckets and never
        # journaled, so a journaled shared tier silently dropped every
        # merged peer entry from its next delta.
        peer = TaskHistoryTable(self.config())
        peer.insert(make_key(1), "t", make_outputs(1), producer_index=1)
        peer.insert(make_key(2), "t", make_outputs(2), producer_index=2)
        shared = TaskHistoryTable(self.config())
        shared.enable_journal()
        shared.merge(peer.snapshot())
        delta = shared.snapshot(reset=True)
        assert sorted(e.key_value for e in delta["entries"]) == [1, 2]
        # Consumed: the next delta is empty until new commits land.
        assert shared.snapshot(reset=True)["entries"] == []

    def test_merge_journal_false_skips_journal(self):
        # Warm-start restore path: loaded entries must not be re-published.
        peer = TaskHistoryTable(self.config())
        peer.insert(make_key(1), "t", make_outputs(1), producer_index=1)
        tht = TaskHistoryTable(self.config())
        tht.enable_journal()
        tht.merge(peer.snapshot(), journal=False)
        assert tht.snapshot(reset=True)["entries"] == []
        assert tht.lookup(make_key(1), "t") is not None

    def test_merged_entries_flow_through_chained_tiers(self):
        worker = TaskHistoryTable(self.config())
        worker.insert(make_key(7), "t", make_outputs(7), producer_index=7)
        middle = TaskHistoryTable(self.config())
        middle.enable_journal()
        middle.merge(worker.snapshot())
        downstream = TaskHistoryTable(self.config())
        downstream.merge(middle.snapshot(reset=True))
        assert downstream.lookup(make_key(7), "t") is not None

    def test_threaded_churn_no_counted_but_lost_insertions(self):
        # Regression for the non-atomic snapshot: entries and counters were
        # read in two passes, so inserts landing between them were counted
        # by a reset=True snapshot that never shipped them.  Across all
        # delta cycles, counted insertions must equal shipped entries.
        import threading

        config = ATMConfig(tht_bucket_bits=3, tht_bucket_capacity=512)
        tht = TaskHistoryTable(config)
        tht.enable_journal()
        downstream = TaskHistoryTable(config)
        per_thread, threads_n = 400, 4

        def churn(base):
            for i in range(per_thread):
                tht.insert(
                    make_key(base + i), "t", [np.full(2, float(i))],
                    producer_index=base + i,
                )

        threads = [
            threading.Thread(target=churn, args=(t * 10_000,))
            for t in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        shipped = 0
        counted = 0
        while any(t.is_alive() for t in threads):
            delta = tht.snapshot(reset=True)
            shipped += len(delta["entries"])
            counted += delta["counters"]["insertions"]
            downstream.merge(delta)
        for thread in threads:
            thread.join()
        final = tht.snapshot(reset=True)
        shipped += len(final["entries"])
        counted += final["counters"]["insertions"]
        downstream.merge(final)
        assert shipped == counted == per_thread * threads_n
        assert len(downstream) == per_thread * threads_n


class TestPerBucketCounters:
    def test_counters_aggregate_across_buckets(self):
        config = ATMConfig(tht_bucket_bits=2, tht_bucket_capacity=4)
        tht = TaskHistoryTable(config)
        for value in range(8):  # spread over all 4 buckets
            tht.insert(make_key(value), "t", make_outputs(value), producer_index=value)
        for value in range(8):
            assert tht.lookup(make_key(value), "t") is not None
        tht.lookup(make_key(123456), "t")
        assert tht.hits == 8
        assert tht.misses == 1
        assert tht.insertions == 8

    def test_concurrent_probes_keep_exact_counts(self):
        import threading

        config = ATMConfig(tht_bucket_bits=4, tht_bucket_capacity=8)
        tht = TaskHistoryTable(config)
        for value in range(32):
            tht.insert(make_key(value), "t", make_outputs(value), producer_index=value)

        def probe():
            for value in range(32):
                tht.lookup(make_key(value), "t")       # hit
                tht.lookup(make_key(1000 + value), "t")  # miss

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tht.hits == 8 * 32
        assert tht.misses == 8 * 32
