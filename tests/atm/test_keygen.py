"""Tests for ATM hash-key generation (input sampling and type-aware shuffles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atm.keygen import HashKeyGenerator
from repro.common.config import ATMConfig
from repro.runtime.data import In, Out
from repro.runtime.task import Task, TaskType

TT = TaskType("keygen-test", memoizable=True)


def make_task(inputs, outputs=None):
    accesses = [In(arr) for arr in inputs]
    for out in outputs or []:
        accesses.append(Out(out))
    return Task(task_type=TT, function=lambda: None, accesses=accesses, task_id=0)


class TestKeyComputation:
    def test_identical_inputs_same_key(self):
        generator = HashKeyGenerator(ATMConfig())
        data = np.arange(64, dtype=np.float32)
        k1 = generator.compute(make_task([data]), p=1.0)
        k2 = generator.compute(make_task([data.copy()]), p=1.0)
        assert k1.value == k2.value

    def test_different_inputs_different_key(self):
        generator = HashKeyGenerator(ATMConfig())
        a = np.arange(64, dtype=np.float32)
        b = a.copy()
        b[10] += 1.0
        assert generator.compute(make_task([a]), 1.0).value != generator.compute(make_task([b]), 1.0).value

    def test_key_records_p_and_byte_counts(self):
        generator = HashKeyGenerator(ATMConfig())
        data = np.zeros(64, dtype=np.float32)   # 256 bytes
        key = generator.compute(make_task([data]), p=0.5)
        assert key.p == 0.5
        assert key.sampled_bytes == 128
        assert key.total_bytes == 256

    def test_small_p_samples_at_least_one_byte(self):
        generator = HashKeyGenerator(ATMConfig())
        data = np.zeros(8, dtype=np.float32)
        key = generator.compute(make_task([data]), p=2.0 ** -15)
        assert key.sampled_bytes == 1

    def test_no_input_task_keyed_by_type(self):
        generator = HashKeyGenerator(ATMConfig())
        task = make_task([], outputs=[np.zeros(4)])
        key1 = generator.compute(task, 1.0)
        key2 = generator.compute(make_task([], outputs=[np.zeros(4)]), 1.0)
        assert key1.value == key2.value
        assert key1.total_bytes == 0

    def test_multiple_inputs_concatenated(self):
        generator = HashKeyGenerator(ATMConfig())
        a = np.arange(16, dtype=np.float32)
        b = np.arange(16, 32, dtype=np.float32)
        key_ab = generator.compute(make_task([a, b]), 1.0)
        key_ba = generator.compute(make_task([b, a]), 1.0)
        assert key_ab.value != key_ba.value

    def test_different_p_gives_different_key_for_same_data(self):
        generator = HashKeyGenerator(ATMConfig())
        data = np.arange(256, dtype=np.float64)
        full = generator.compute(make_task([data]), 1.0)
        sampled = generator.compute(make_task([data]), 0.25)
        assert full.value != sampled.value or full.sampled_bytes != sampled.sampled_bytes


class TestSampling:
    def test_msb_sampling_ignores_low_order_perturbations(self):
        """Type-aware MSB-first selection at small p must not see low-bit jitter."""
        generator = HashKeyGenerator(ATMConfig(type_aware=True))
        base = np.linspace(1.0, 2.0, 128, dtype=np.float64)
        jittered = base + 1e-14
        p = 1.0 / 8.0  # selects exactly the MSB of every float64 element
        key_base = generator.compute(make_task([base]), p)
        key_jittered = generator.compute(make_task([jittered]), p)
        assert key_base.value == key_jittered.value

    def test_full_p_detects_low_order_perturbations(self):
        generator = HashKeyGenerator(ATMConfig(type_aware=True))
        base = np.linspace(1.0, 2.0, 128, dtype=np.float64)
        jittered = base + 1e-14
        assert generator.compute(make_task([base]), 1.0).value != generator.compute(
            make_task([jittered]), 1.0
        ).value

    def test_selected_byte_count(self):
        generator = HashKeyGenerator(ATMConfig())
        assert generator.selected_byte_count(1000, 0.1) == 100
        assert generator.selected_byte_count(1000, 1.0) == 1000
        assert generator.selected_byte_count(1000, 2.0 ** -15) == 1
        assert generator.selected_byte_count(0, 0.5) == 0


class TestShuffleCaching:
    def test_shuffle_reused_per_task_type_and_size(self):
        generator = HashKeyGenerator(ATMConfig())
        data = np.arange(64, dtype=np.float32)   # 256 bytes
        generator.compute(make_task([data]), 0.5)
        first = generator.shuffle_memory_bytes()
        # Truncated prefix (ceil(256 * 0.5) = 128 slots) in uint32: far below
        # the seed's full int64 permutation (256 * 8 bytes).
        assert first >= 128 * 4
        assert first < 256 * 8
        generator.compute(make_task([data]), 0.25)  # smaller p reuses the prefix
        assert generator.shuffle_memory_bytes() == first
        assert generator.shuffle_record_count() == 1

    def test_full_sampling_stores_no_shuffle(self):
        """p = 1.0 reads every byte in order; no index vector is needed."""
        generator = HashKeyGenerator(ATMConfig())
        generator.compute(make_task([np.zeros(16, dtype=np.float32)]), 1.0)
        generator.compute(make_task([np.zeros(32, dtype=np.float32)]), 1.0)
        assert generator.shuffle_memory_bytes() == 0
        assert generator.shuffle_record_count() == 0

    def test_new_shuffle_for_new_input_size(self):
        generator = HashKeyGenerator(ATMConfig())
        generator.compute(make_task([np.zeros(16, dtype=np.float32)]), 0.5)
        assert generator.shuffle_record_count() == 1
        generator.compute(make_task([np.zeros(32, dtype=np.float32)]), 0.5)
        assert generator.shuffle_record_count() == 2

    def test_shuffle_prefix_grows_for_larger_p(self):
        generator = HashKeyGenerator(ATMConfig())
        data = np.arange(256, dtype=np.float32)
        generator.compute(make_task([data]), 0.1)
        small = generator.shuffle_memory_bytes()
        generator.compute(make_task([data]), 0.5)
        assert generator.shuffle_memory_bytes() > small
        assert generator.counters["shuffle_regrowths"] == 1

    def test_shuffle_lru_bound(self):
        generator = HashKeyGenerator(ATMConfig(shuffle_cache_entries=2))
        for n in (16, 32, 64, 128):
            generator.compute(make_task([np.zeros(n, dtype=np.float32)]), 0.5)
        assert generator.shuffle_record_count() == 2
        assert generator.counters["shuffle_evictions"] == 2

    def test_deterministic_across_generator_instances(self):
        data = np.arange(1024, dtype=np.float32)
        k1 = HashKeyGenerator(ATMConfig()).compute(make_task([data]), 0.05)
        k2 = HashKeyGenerator(ATMConfig()).compute(make_task([data]), 0.05)
        assert k1.value == k2.value

    def test_plain_shuffle_mode(self):
        generator = HashKeyGenerator(ATMConfig(type_aware=False))
        data = np.arange(64, dtype=np.float32)
        key = generator.compute(make_task([data]), 0.5)
        assert key.sampled_bytes == 128

    def test_lookup3_hash_function_option(self):
        generator = HashKeyGenerator(ATMConfig(hash_function="lookup3"))
        data = np.arange(8, dtype=np.float32)
        assert generator.compute(make_task([data]), 1.0).value >= 0
