"""Tests for the stencil solvers, Kmeans and SparseLU applications."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.kmeans import KmeansApp, assign_block, update_centers
from repro.apps.sparselu import SparseLUApp, bdiv, bmod, fwd, lu0
from repro.apps.stencil import (
    GaussSeidelApp,
    JacobiApp,
    StencilGrid,
    WALL_TEMPERATURE,
    gauss_seidel_block,
    jacobi_block,
)
from repro.common.rng import generator_for

from tests.conftest import make_serial_runtime


class TestStencilKernels:
    def test_jacobi_uniform_field_stays_uniform(self):
        block = np.full((8, 8), 3.0, dtype=np.float32)
        out = np.zeros_like(block)
        halo = np.full(8, 3.0, dtype=np.float32)
        jacobi_block(block, out, halo, halo, halo, halo)
        assert np.allclose(out, 3.0)

    def test_jacobi_heat_flows_in_from_hot_halo(self):
        block = np.zeros((8, 8), dtype=np.float32)
        out = np.zeros_like(block)
        cold = np.zeros(8, dtype=np.float32)
        hot = np.full(8, 100.0, dtype=np.float32)
        jacobi_block(block, out, hot, cold, cold, cold)
        assert out[0].max() > 0.0          # first row warmed by the hot top halo
        assert np.allclose(out[4:], 0.0)   # interior untouched after one sweep

    def test_gauss_seidel_uniform_field_stays_uniform(self):
        block = np.full((8, 8), 2.0, dtype=np.float32)
        halo = np.full(8, 2.0, dtype=np.float32)
        gauss_seidel_block(block, halo, halo, halo, halo)
        assert np.allclose(block, 2.0)

    def test_gauss_seidel_propagates_further_than_jacobi(self):
        """In-place updates let heat travel several rows in one sweep."""
        gs_block = np.zeros((8, 8), dtype=np.float32)
        cold = np.zeros(8, dtype=np.float32)
        hot = np.full(8, 100.0, dtype=np.float32)
        gauss_seidel_block(gs_block, hot, cold, cold, cold)
        assert gs_block[2].max() > 0.0

    def test_stencil_grid_assembly_shape(self):
        grid = StencilGrid(3, 4, 8, generator_for(0, "grid"))
        assert grid.assemble().shape == (24, 32)


class TestStencilApps:
    @pytest.mark.parametrize("app_class", [GaussSeidelApp, JacobiApp])
    def test_heat_enters_the_room(self, app_class):
        app = app_class(scale="tiny")
        runtime = make_serial_runtime()
        app.run(runtime)
        matrix = app.output().reshape(
            app.grid.block_rows * app.grid.block_size, -1
        )
        # Border rows are warmer than the centre after a few sweeps.
        assert matrix[0].mean() > matrix[matrix.shape[0] // 2].mean()
        assert matrix.max() <= WALL_TEMPERATURE + 1e-3

    def test_gauss_seidel_task_count(self):
        app = GaussSeidelApp(scale="tiny")
        runtime = make_serial_runtime()
        app.run(runtime)
        assert runtime.task_count > app.expected_stencil_tasks()

    def test_jacobi_deterministic(self):
        outputs = []
        for _ in range(2):
            app = JacobiApp(scale="tiny")
            runtime = make_serial_runtime()
            app.run(runtime)
            outputs.append(app.output())
        assert np.array_equal(outputs[0], outputs[1])

    def test_interior_blocks_identical_inputs(self):
        """The redundancy source: interior blocks start bit-identical."""
        app = GaussSeidelApp(scale="tiny")
        blocks = app.grid.blocks
        centre = blocks[3, 3]
        other = blocks[4, 4]
        assert np.array_equal(centre, other)


class TestKmeansKernels:
    def test_assign_block_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(-1, 1, (32, 4)).astype(np.float32)
        centers = rng.uniform(-1, 1, (3, 4)).astype(np.float32)
        sums = np.zeros((3, 4))
        counts = np.zeros(3)
        assign_block(points, centers, sums, counts)
        expected_assign = np.argmin(
            ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2), axis=1
        )
        for cluster in range(3):
            mask = expected_assign == cluster
            assert counts[cluster] == mask.sum()
            assert np.allclose(sums[cluster], points[mask].sum(axis=0), atol=1e-5)

    def test_assign_block_counts_sum_to_points(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(-1, 1, (40, 3)).astype(np.float32)
        centers = rng.uniform(-1, 1, (4, 3)).astype(np.float32)
        sums, counts = np.zeros((4, 3)), np.zeros(4)
        assign_block(points, centers, sums, counts)
        assert counts.sum() == 40

    def test_update_centers_weighted_mean(self):
        centers = np.zeros((2, 2), dtype=np.float32)
        sums = [np.array([[2.0, 2.0], [0.0, 0.0]]), np.array([[2.0, 2.0], [9.0, 3.0]])]
        counts = [np.array([2.0, 0.0]), np.array([2.0, 3.0])]
        update_centers(centers, sums, counts, rotation=0)
        assert np.allclose(centers[0], [1.0, 1.0])
        assert np.allclose(centers[1], [3.0, 1.0])

    def test_update_centers_keeps_empty_cluster(self):
        centers = np.array([[5.0, 5.0]], dtype=np.float32)
        update_centers(centers, [np.zeros((1, 2))], [np.zeros(1)], rotation=0)
        assert np.allclose(centers, [[5.0, 5.0]])


class TestKmeansApp:
    def test_converges_near_true_centers(self):
        app = KmeansApp(scale="tiny")
        runtime = make_serial_runtime()
        app.run(runtime)
        centers = app.centers
        # Every point block should be close to some final center.
        points = app.points.reshape(-1, app.dims)
        distances = np.sqrt(((points[:, None, :] - centers[None]) ** 2).sum(axis=2)).min(axis=1)
        assert distances.mean() < 10.0

    def test_task_count(self):
        app = KmeansApp(scale="tiny")
        runtime = make_serial_runtime()
        app.run(runtime)
        assert runtime.task_count == app.expected_task_count()


class TestSparseLUKernels:
    def _block(self, n=8, seed=0):
        rng = np.random.default_rng(seed)
        return (rng.uniform(-1, 1, (n, n)) / n + np.eye(n) * 3).astype(np.float32)

    def test_lu0_factorisation(self):
        block = self._block()
        original = block.astype(np.float64).copy()
        lu0(block)
        lower = np.tril(block.astype(np.float64), -1) + np.eye(8)
        upper = np.triu(block.astype(np.float64))
        assert np.allclose(lower @ upper, original, atol=1e-4)

    def test_fwd_solves_lower_system(self):
        diag = self._block()
        lu0(diag)
        lower = np.tril(diag.astype(np.float64), -1) + np.eye(8)
        rhs = self._block(seed=3).astype(np.float64)
        block = rhs.astype(np.float32).copy()
        fwd(diag, block)
        assert np.allclose(lower @ block.astype(np.float64), rhs, atol=1e-4)

    def test_bdiv_solves_upper_system(self):
        diag = self._block()
        lu0(diag)
        upper = np.triu(diag.astype(np.float64))
        rhs = self._block(seed=4).astype(np.float64)
        block = rhs.astype(np.float32).copy()
        bdiv(diag, block)
        assert np.allclose(block.astype(np.float64) @ upper, rhs, atol=1e-4)

    def test_bmod_update(self):
        a = self._block(seed=5)
        b = self._block(seed=6)
        target = self._block(seed=7)
        expected = target.astype(np.float64) - a.astype(np.float64) @ b.astype(np.float64)
        bmod(a, b, target)
        assert np.allclose(target, expected, atol=1e-4)


class TestSparseLUApp:
    def test_factorisation_residual_small(self):
        app = SparseLUApp(scale="tiny")
        runtime = make_serial_runtime()
        app.run(runtime)
        assert app.relative_error(app.output()) < 1e-3
        assert app.correctness(app.output()) > 99.9

    def test_bmod_count_matches_prediction(self):
        app = SparseLUApp(scale="tiny")
        expected = app.expected_bmod_count()
        runtime = make_serial_runtime()
        app.run(runtime)
        bmod_tasks = [t for t in runtime.graph.tasks() if t.task_type.name == "bmod"]
        assert len(bmod_tasks) == expected

    def test_matrix_contains_repeated_blocks(self):
        app = SparseLUApp(scale="tiny")
        patterns = set()
        for i in range(app.nb):
            for j in range(app.nb):
                if i != j and app.present[i, j]:
                    patterns.add(app.blocks[i, j].tobytes())
        off_diagonal = int(app.present.sum()) - app.nb
        assert len(patterns) < off_diagonal
