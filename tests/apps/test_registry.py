"""Tests for the benchmark registry and paper parameters."""

from __future__ import annotations

import pytest

from repro.apps.base import BenchmarkApp, WorkloadScale
from repro.apps.registry import (
    BENCHMARK_CLASSES,
    BENCHMARK_NAMES,
    PAPER_PARAMETERS,
    make_benchmark,
)
from repro.common.exceptions import WorkloadError


class TestRegistry:
    def test_six_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 6
        assert set(BENCHMARK_NAMES) == {
            "blackscholes", "gauss-seidel", "jacobi", "kmeans", "lu", "swaptions",
        }

    def test_make_benchmark_returns_fresh_instances(self):
        a = make_benchmark("blackscholes", scale="tiny")
        b = make_benchmark("blackscholes", scale="tiny")
        assert a is not b
        assert isinstance(a, BenchmarkApp)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            make_benchmark("linpack")

    def test_unknown_scale_rejected(self):
        with pytest.raises(WorkloadError):
            make_benchmark("kmeans", scale="gigantic")

    def test_scale_enum_accepted(self):
        app = make_benchmark("swaptions", scale=WorkloadScale.TINY)
        assert app.scale == WorkloadScale.TINY

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_benchmark_has_paper_parameters(self, name):
        paper = PAPER_PARAMETERS[name]
        assert paper.l_training >= 1
        assert paper.tau_max_percent > 0
        assert paper.memory_overhead_percent > 0
        assert paper.static_atm_speedup > 0
        assert paper.dynamic_atm_speedup > 0

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_info_consistent_with_table2(self, name):
        app_class = BENCHMARK_CLASSES[name]
        paper = PAPER_PARAMETERS[name]
        assert app_class.info.l_training == paper.l_training
        assert 100.0 * app_class.info.tau_max == pytest.approx(paper.tau_max_percent)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_memoized_task_type_registered(self, name):
        app = make_benchmark(name, scale="tiny")
        assert app.info.memoized_task_type in app.task_types
        assert app.memoized_task_type.atm_eligible

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_cost_models_positive(self, name):
        app = make_benchmark(name, scale="tiny")
        for task_type in app.task_types.values():
            assert callable(task_type.cost_model)
