"""Tests for the two financial applications: Blackscholes and Swaptions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.blackscholes import BlackscholesApp, black_scholes_price, cndf
from repro.apps.swaptions import SWAPTION_PARAM_DOUBLES, SwaptionsApp, price_swaption

from tests.conftest import make_serial_runtime


class TestCNDF:
    def test_symmetry(self):
        x = np.array([-1.5, -0.3, 0.0, 0.3, 1.5])
        assert np.allclose(cndf(x) + cndf(-x), 1.0, atol=1e-7)

    def test_known_values(self):
        assert cndf(np.array([0.0]))[0] == pytest.approx(0.5, abs=1e-7)
        assert cndf(np.array([10.0]))[0] == pytest.approx(1.0, abs=1e-6)
        assert cndf(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-6)

    def test_monotonic(self):
        xs = np.linspace(-3, 3, 100)
        values = cndf(xs)
        assert np.all(np.diff(values) > 0)


class TestBlackScholesFormula:
    def _params(self, spot, strike, rate, vol, time, otype):
        return np.array([[spot, strike, rate, vol, time, otype]], dtype=np.float64)

    def test_call_deep_in_the_money(self):
        price = black_scholes_price(self._params(100, 50, 0.02, 0.2, 1.0, 0))[0]
        assert price == pytest.approx(100 - 50 * np.exp(-0.02), rel=1e-2)

    def test_put_deep_in_the_money(self):
        price = black_scholes_price(self._params(10, 100, 0.02, 0.2, 1.0, 1))[0]
        assert price == pytest.approx(100 * np.exp(-0.02) - 10, rel=1e-2)

    def test_call_increases_with_spot(self):
        low = black_scholes_price(self._params(90, 100, 0.02, 0.3, 1.0, 0))[0]
        high = black_scholes_price(self._params(110, 100, 0.02, 0.3, 1.0, 0))[0]
        assert high > low

    def test_price_nonnegative(self):
        rng = np.random.default_rng(1)
        params = np.column_stack([
            rng.uniform(10, 120, 50), rng.uniform(10, 120, 50),
            rng.uniform(0.01, 0.08, 50), rng.uniform(0.05, 0.6, 50),
            rng.uniform(0.1, 2.0, 50), rng.integers(0, 2, 50).astype(float),
        ])
        assert (black_scholes_price(params) >= -1e-6).all()

    def test_vectorised_matches_elementwise(self):
        rng = np.random.default_rng(2)
        params = np.column_stack([
            rng.uniform(50, 100, 10), rng.uniform(50, 100, 10),
            np.full(10, 0.03), np.full(10, 0.25), np.full(10, 1.0),
            np.zeros(10),
        ])
        full = black_scholes_price(params)
        single = np.array([black_scholes_price(params[i:i + 1])[0] for i in range(10)])
        assert np.allclose(full, single)


class TestBlackscholesApp:
    def test_app_runs_and_produces_prices(self):
        app = BlackscholesApp(scale="tiny")
        runtime = make_serial_runtime()
        app.run(runtime)
        output = app.output()
        assert output.shape[0] == app.blocks * app.options_per_block
        assert np.isfinite(output).all()
        assert runtime.task_count == app.expected_task_count()

    def test_deterministic_across_instances(self):
        outputs = []
        for _ in range(2):
            app = BlackscholesApp(scale="tiny")
            runtime = make_serial_runtime()
            app.run(runtime)
            outputs.append(app.output())
        assert np.array_equal(outputs[0], outputs[1])

    def test_portfolio_contains_repeated_blocks(self):
        app = BlackscholesApp(scale="tiny")
        unique_blocks = {app.params[b].tobytes() for b in range(app.blocks)}
        assert len(unique_blocks) < app.blocks

    def test_footprint_positive(self):
        assert BlackscholesApp(scale="tiny").application_bytes() > 0

    def test_info_matches_paper_table1(self):
        info = BlackscholesApp.info
        assert info.memoized_task_type == "bs_thread"
        assert info.paper_number_of_tasks == 6109


class TestSwaptionPricer:
    def _record(self, strike=0.04, vol=0.2, trials=500, seed=1234):
        params = np.zeros(SWAPTION_PARAM_DOUBLES)
        params[0] = strike
        params[1] = 3.0
        params[2] = 5.0
        params[3] = vol
        params[4] = trials
        params[5] = seed
        params[6:] = 0.04
        return params

    def test_deterministic_for_identical_parameters(self):
        result_a, result_b = np.zeros(2), np.zeros(2)
        price_swaption(self._record(), result_a, steps=16)
        price_swaption(self._record(), result_b, steps=16)
        assert np.array_equal(result_a, result_b)

    def test_price_positive_and_stderr_small(self):
        result = np.zeros(2)
        price_swaption(self._record(trials=2000), result, steps=16)
        assert result[0] > 0.0
        assert 0.0 <= result[1] < result[0]

    def test_higher_volatility_higher_price(self):
        low, high = np.zeros(2), np.zeros(2)
        price_swaption(self._record(vol=0.1, trials=4000), low, steps=16)
        price_swaption(self._record(vol=0.4, trials=4000), high, steps=16)
        assert high[0] > low[0]


class TestSwaptionsApp:
    def test_app_runs(self):
        app = SwaptionsApp(scale="tiny")
        runtime = make_serial_runtime()
        app.run(runtime)
        prices = app.output()
        assert prices.shape == (app.n_swaptions,)
        assert np.isfinite(prices).all()

    def test_parameter_record_is_376_bytes(self):
        app = SwaptionsApp(scale="tiny")
        assert app.params[0].nbytes == 376 == app.info.paper_task_input_bytes

    def test_portfolio_contains_exact_duplicates(self):
        app = SwaptionsApp(scale="tiny")
        rows = {app.params[i].tobytes() for i in range(app.n_swaptions)}
        assert len(rows) < app.n_swaptions

    def test_correctness_of_duplicate_prices(self):
        app = SwaptionsApp(scale="tiny")
        runtime = make_serial_runtime()
        app.run(runtime)
        # Exact duplicate parameter rows must produce exactly equal prices.
        seen: dict[bytes, float] = {}
        for index in range(app.n_swaptions):
            key = app.params[index].tobytes()
            price = app.output()[index]
            if key in seen:
                assert price == seen[key]
            seen[key] = price
