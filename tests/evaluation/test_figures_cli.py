"""Tests for the figure/table generators, the reporting helpers and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import (
    ablation_sizing,
    fig3_speedup,
    fig4_correctness,
    fig5_sensitivity,
    fig6_scalability,
    fig8_ready_tasks,
    fig9_redundancy,
    tables,
)
from repro.evaluation.cli import build_parser, main
from repro.evaluation.reporting import format_kv, format_series, format_table
from repro.evaluation.runner import clear_reference_cache

FAST = dict(scale="tiny", cores=4)
ONE_BENCH = ("blackscholes",)
TWO_BENCH = ("blackscholes", "swaptions")


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_reference_cache()
    yield


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        text = format_table(["name", "value"], [["a", 1.234], ["bbbb", None]])
        lines = text.splitlines()
        assert "1.23" in lines[2]
        assert "-" in lines[3]

    def test_format_table_with_title(self):
        assert format_table(["x"], [[1]], title="T").startswith("T\n")

    def test_format_series(self):
        assert format_series("s", [1, 2], [3.0, 4.0]) == "s: (1, 3), (2, 4)"

    def test_format_kv(self):
        text = format_kv({"alpha": 1.5, "beta": "x"}, title="K")
        assert text.splitlines()[0] == "K"
        assert "1.500" in text


class TestFigureGenerators:
    def test_fig3_compute_and_report(self):
        rows = fig3_speedup.compute(benchmarks=ONE_BENCH, include_oracles=False, **FAST)
        assert len(rows) == 1
        assert rows[0].static_tht_ikt > 0
        text = fig3_speedup.report(rows)
        assert "geomean" in text and "blackscholes" in text

    def test_fig4_compute_and_report(self):
        rows = fig4_correctness.compute(benchmarks=ONE_BENCH, include_oracle=False, **FAST)
        assert rows[0].static_correctness == pytest.approx(100.0)
        assert "Figure 4" in fig4_correctness.report(rows)

    def test_fig5_compute_and_report(self):
        curves = fig5_sensitivity.compute(
            benchmarks=ONE_BENCH, ladder=(2.0 ** -10, 1.0), **FAST
        )
        curve = curves[0]
        assert curve.correctness_at(1.0) == pytest.approx(100.0)
        assert len(curve.p_values) == 2
        assert "Figure 5" in fig5_sensitivity.report(curves)
        with pytest.raises(KeyError):
            curve.correctness_at(0.123)

    def test_fig6_compute_and_report(self):
        series = fig6_scalability.compute(
            benchmarks=ONE_BENCH, core_counts=(1, 2), include_oracle=False, scale="tiny"
        )
        assert series[0].cores == [1, 2]
        assert all(s > 0 for s in series[0].dynamic_speedup)
        text = fig6_scalability.report(series)
        assert "geomean" in text

    def test_fig8_compute_and_report(self):
        result = fig8_ready_tasks.compute(benchmark="blackscholes", scale="tiny", cores=4)
        assert result.without_atm_max_ready >= 0
        assert result.speedup > 0
        assert "Figure 8" in fig8_ready_tasks.report(result)

    def test_fig9_compute_and_report(self):
        curves = fig9_redundancy.compute(benchmarks=TWO_BENCH, mode="static", **FAST)
        blackscholes = curves[0]
        assert blackscholes.total_reuse_events > 0
        assert blackscholes.reuse_generated_before(1.0) == pytest.approx(1.0)
        assert "Figure 9" in fig9_redundancy.report(curves)

    def test_tables_compute_and_report(self):
        t1 = tables.compute_table1(scale="tiny")
        assert len(t1) == 6
        assert "Table I" in tables.report_table1(t1)
        t2 = tables.compute_table2()
        assert {row.benchmark for row in t2} == set(
            r.benchmark for r in t1
        )
        assert all(row.l_training == row.paper_l_training for row in t2)
        assert "Table II" in tables.report_table2(t2)
        t3 = tables.compute_table3(scale="tiny")
        assert all(row.memory_overhead_percent >= 0 for row in t3)
        assert "Table III" in tables.report_table3(t3)

    def test_ablation_sweeps(self):
        bits = ablation_sizing.compute_bucket_bits_sweep(
            benchmark="blackscholes", bits_values=(0, 4), **FAST
        )
        assert [p.value for p in bits] == [0, 4]
        capacity = ablation_sizing.compute_capacity_sweep(
            benchmark="blackscholes", capacities=(4, 128), **FAST
        )
        assert capacity[-1].reuse_percent >= capacity[0].reuse_percent - 1e-9
        assert "ablation" in ablation_sizing.report(bits, "blackscholes")


class TestCLI:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        for command in ["fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                        "table1", "table2", "table3", "ablation", "all"]:
            args = parser.parse_args([command])
            assert args.command == command

    def test_main_table2_runs_and_writes_output(self, tmp_path, capsys):
        output_file = tmp_path / "table2.txt"
        exit_code = main(["table2", "--output", str(output_file)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Table II" in captured.out
        assert "Table II" in output_file.read_text()

    def test_main_fig4_on_one_benchmark(self, capsys):
        exit_code = main([
            "fig4", "--scale", "tiny", "--cores", "2", "--benchmarks", "swaptions",
        ])
        assert exit_code == 0
        assert "swaptions" in capsys.readouterr().out
