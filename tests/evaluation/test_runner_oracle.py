"""Tests for the experiment runner and the oracle sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.exceptions import EvaluationError
from repro.evaluation.oracle import find_oracle
from repro.evaluation.runner import (
    ExperimentSpec,
    clear_reference_cache,
    geometric_mean,
    run_benchmark,
    run_reference,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_reference_cache()
    yield
    clear_reference_cache()


class TestRunner:
    def test_reference_is_cached(self):
        first = run_reference("swaptions", scale="tiny", cores=2)
        second = run_reference("swaptions", scale="tiny", cores=2)
        assert first[1] == second[1]
        assert np.array_equal(first[0], second[0])

    def test_no_atm_run_has_no_stats(self):
        result = run_benchmark(ExperimentSpec(benchmark="swaptions", scale="tiny", mode="none", cores=2))
        assert result.atm_stats == {}
        assert result.speedup == pytest.approx(1.0, rel=0.02)

    def test_static_run_reports_speedup_and_correctness(self):
        result = run_benchmark(
            ExperimentSpec(benchmark="blackscholes", scale="tiny", mode="static", cores=4)
        )
        assert result.correctness == pytest.approx(100.0)
        assert result.speedup > 1.5
        assert result.tasks_memoized > 0
        assert result.memory_overhead_percent > 0.0

    def test_dynamic_run_reports_chosen_p(self):
        result = run_benchmark(
            ExperimentSpec(benchmark="blackscholes", scale="tiny", mode="dynamic", cores=4)
        )
        assert result.chosen_p is None or 0 < result.chosen_p <= 1.0
        assert "reuse_events" in result.atm_stats

    def test_fixed_p_run(self):
        result = run_benchmark(
            ExperimentSpec(benchmark="swaptions", scale="tiny", mode="fixed_p", p=1.0, cores=2)
        )
        assert result.correctness == pytest.approx(100.0)

    def test_tracing_spec_returns_trace(self):
        result = run_benchmark(
            ExperimentSpec(benchmark="swaptions", scale="tiny", mode="static", cores=2,
                           enable_tracing=True)
        )
        assert result.trace is not None
        assert result.trace.intervals

    def test_serial_executor_spec(self):
        result = run_benchmark(
            ExperimentSpec(benchmark="swaptions", scale="tiny", mode="static", cores=1,
                           executor="serial")
        )
        assert result.time_unit == "s"

    def test_unknown_executor_rejected(self):
        with pytest.raises(EvaluationError):
            run_benchmark(ExperimentSpec(benchmark="swaptions", scale="tiny", executor="gpu"))

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([2.0, 0.0]) == pytest.approx(2.0)

    @pytest.mark.parametrize("spec", [
        ExperimentSpec(benchmark="blackscholes"),
        ExperimentSpec(benchmark="kmeans", scale="tiny", mode="static", cores=2),
        ExperimentSpec(benchmark="swaptions", mode="fixed_p", p=0.25,
                       executor="serial", cores=4, seed=7),
        ExperimentSpec(benchmark="jacobi", mode="dynamic", use_ikt=False,
                       tht_bucket_bits=4, enable_tracing=True),
    ])
    def test_spec_round_trips_through_session_config(self, spec):
        # ExperimentSpec is a thin view over ReproConfig: projecting the
        # lowered tree back must reproduce the spec (p is reconstructed for
        # fixed_p only; the other modes ignore it).
        rebuilt = ExperimentSpec.from_config(
            spec.to_config(), spec.benchmark, spec.scale
        )
        assert rebuilt == spec
        assert hash(rebuilt) == hash(spec)

    def test_fixed_p_without_p_rejected(self):
        with pytest.raises(EvaluationError, match="explicit p"):
            ExperimentSpec(benchmark="swaptions", mode="fixed_p").to_config()


class TestOracle:
    def test_oracle_meets_correctness_target(self):
        oracle = find_oracle("blackscholes", min_correctness=95.0, scale="tiny", cores=4)
        assert oracle.correctness >= 95.0
        assert 0 < oracle.chosen_p <= 1.0
        assert oracle.sweep[-1][0] == oracle.chosen_p

    def test_oracle_100_is_at_least_as_conservative_as_95(self):
        o95 = find_oracle("blackscholes", min_correctness=95.0, scale="tiny", cores=4)
        o100 = find_oracle("blackscholes", min_correctness=100.0, scale="tiny", cores=4)
        assert o100.chosen_p >= o95.chosen_p
        assert o100.correctness == pytest.approx(100.0)

    def test_oracle_with_restricted_ladder(self):
        oracle = find_oracle(
            "swaptions", min_correctness=95.0, scale="tiny", cores=2, ladder=(0.5, 1.0)
        )
        assert oracle.chosen_p in (0.5, 1.0)
