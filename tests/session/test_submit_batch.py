"""Tests for the batched submission surface (Session.submit_batch / batch())."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.exceptions import RuntimeStateError
from repro.runtime.data import In, InOut, Out
from repro.runtime.task import TaskType
from repro.session import Session

TT = TaskType("batch-test")


class TestSubmitBatch:
    def test_tuple_specs_run_to_completion(self):
        x = np.arange(8, dtype=np.float64)
        y = np.zeros(8)
        z = np.zeros(8)

        def scale(factor):
            y[:] = factor * x

        def shift():
            z[:] = y + 1.0

        with Session(executor="serial") as s:
            tasks = s.submit_batch([
                (TT, scale, [In(x), Out(y)], (3.0,)),
                (TT, shift, [In(y), Out(z)]),
            ])
            assert [t.task_id for t in tasks] == [0, 1]
            result = s.finish()
        assert result.tasks_completed == 2
        assert z.tolist() == (3.0 * x + 1.0).tolist()

    def test_mapping_specs(self):
        data = np.zeros(4)
        with Session(executor="serial") as s:
            tasks = s.submit_batch([
                {"task_type": TT, "function": lambda: None,
                 "accesses": [Out(data)], "kwargs": {}},
                {"task_type": TT, "function": lambda: None,
                 "accesses": [InOut(data)]},
            ])
            s.wait_all()
        assert len(tasks) == 2
        assert s.graph.edge_count == 1  # WAW edge within the batch

    def test_edges_match_per_task_submission(self):
        def program(submit):
            base = np.zeros(32)
            blocks = [base[:16], base[16:]]
            specs = [(TT, lambda: None, [Out(block)]) for block in blocks]
            specs.append((TT, lambda: None, [In(base)]))
            return submit(specs)

        with Session(executor="serial") as batched:
            program(batched.submit_batch)
            batched_edges = sorted(batched.graph.iter_edges())
            batched.wait_all()
        with Session(executor="serial") as singly:
            program(lambda specs: [singly.submit(*spec) for spec in specs])
            single_edges = sorted(singly.graph.iter_edges())
            singly.wait_all()
        assert batched_edges == single_edges == [(0, 2), (1, 2)]

    def test_rejected_after_finish(self):
        s = Session(executor="serial")
        s.finish()
        with pytest.raises(RuntimeStateError):
            s.submit_batch([(TT, lambda: None, [Out(np.zeros(2))])])


class TestBatchContext:
    def test_decorated_calls_are_buffered_then_flushed(self):
        with Session(executor="serial") as s:
            @s.task(outs=("y",))
            def produce(y):
                y[:] = 1.0

            ys = [np.zeros(4) for _ in range(5)]
            with s.batch():
                tasks = [produce(y) for y in ys]
                # Nothing reached the graph yet.
                assert s.graph.task_count == 0
            assert s.graph.task_count == 5
            assert [t.task_id for t in tasks] == list(range(5))
            s.wait_all()
        assert all(y.tolist() == [1.0] * 4 for y in ys)

    def test_exception_discards_buffered_tasks(self):
        with Session(executor="serial") as s:
            @s.task(outs=("y",))
            def produce(y):
                y[:] = 1.0

            with pytest.raises(ValueError):
                with s.batch():
                    produce(np.zeros(4))
                    raise ValueError("boom")
            assert s.graph.task_count == 0
            # Task ids were rolled back: the next submission starts at 0.
            task = produce(np.zeros(4))
            assert task.task_id == 0
            s.wait_all()

    def test_nested_batch_rejected(self):
        with Session(executor="serial") as s:
            with s.batch():
                with pytest.raises(RuntimeStateError):
                    with s.batch():
                        pass

    def test_dependences_cross_batch_boundaries(self):
        data = np.zeros(8)
        log = []
        with Session(executor="serial") as s:
            @s.task(inouts=("x",))
            def bump(x, tag):
                log.append(tag)

            with s.batch():
                bump(data, 0)
                bump(data, 1)
            with s.batch():
                bump(data, 2)
            s.wait_all()
        assert log == [0, 1, 2]
        assert s.graph.edge_count == 2


class TestFastResubmissionPath:
    def test_positional_and_keyword_calls_build_identical_accesses(self):
        x = np.arange(4, dtype=np.float64)
        y = np.zeros(4)
        with Session(executor="serial") as s:
            @s.task(ins=("x",), outs=("y",))
            def saxpy(x, y, a):
                y[:] = a * x

            positional = saxpy(x, y, 2.0)
            keyword = saxpy(x=x, y=y, a=2.0)
            s.wait_all()
        for task in (positional, keyword):
            assert [a.region.name for a in task.accesses] == ["x", "y"]
            assert [a.mode.value for a in task.accesses] == ["in", "out"]
        assert y.tolist() == (2.0 * x).tolist()

    def test_defaulted_call_falls_back_to_bind(self):
        y = np.zeros(4)
        captured = {}
        with Session(executor="serial") as s:
            @s.task(outs=("y",))
            def fill(y, value=7.0):
                y[:] = value
                captured["value"] = value

            fill(y)  # one positional arg, default applies
            s.wait_all()
        assert captured["value"] == 7.0
        assert y.tolist() == [7.0] * 4
