"""Round-trip and validation tests for the unified ReproConfig tree."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import (
    ATMConfig,
    RuntimeConfig,
    ServingConfig,
    SimulationConfig,
)
from repro.common.exceptions import ConfigurationError
from repro.session import ReproConfig


class TestDictRoundTrip:
    def test_default_round_trips(self):
        cfg = ReproConfig()
        assert ReproConfig.from_dict(cfg.to_dict()) == cfg

    def test_partial_dict_fills_defaults(self):
        cfg = ReproConfig.from_dict({"runtime": {"num_threads": 3}})
        assert cfg.runtime.num_threads == 3
        assert cfg.atm == ATMConfig()
        assert cfg.simulation == SimulationConfig()

    def test_unknown_section_raises(self):
        with pytest.raises(ConfigurationError, match="scheduler_pool"):
            ReproConfig.from_dict({"scheduler_pool": {}})

    def test_unknown_field_names_the_field(self):
        with pytest.raises(ConfigurationError, match=r"runtime\.num_thread"):
            ReproConfig.from_dict({"runtime": {"num_thread": 4}})
        with pytest.raises(ConfigurationError, match=r"atm\.bucket_bits"):
            ReproConfig.from_dict({"atm": {"bucket_bits": 4}})
        with pytest.raises(ConfigurationError, match=r"simulation\.bandwidth"):
            ReproConfig.from_dict({"simulation": {"bandwidth": 1.0}})

    def test_invalid_value_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="num_threads"):
            ReproConfig.from_dict({"runtime": {"num_threads": 0}})
        with pytest.raises(ConfigurationError, match="executor"):
            ReproConfig.from_dict({"runtime": {"executor": "gpu"}})
        with pytest.raises(ConfigurationError, match="mode"):
            ReproConfig.from_dict({"atm": {"mode": "telepathic"}})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            ReproConfig.from_dict([("runtime", {})])
        with pytest.raises(ConfigurationError, match="runtime"):
            ReproConfig.from_dict({"runtime": 7})


# Strategies drawing random *valid* leaf configs for the property tests.
runtime_configs = st.builds(
    RuntimeConfig,
    num_threads=st.integers(min_value=1, max_value=64),
    executor=st.sampled_from(["serial", "threaded", "process", "simulated"]),
    scheduler=st.sampled_from(["fifo", "lifo", "work_stealing"]),
    enable_tracing=st.booleans(),
    max_ready_tasks=st.none() | st.integers(min_value=1, max_value=1024),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    mp_workers=st.none() | st.integers(min_value=1, max_value=16),
    mp_chunk_size=st.integers(min_value=1, max_value=64),
    mp_start_method=st.sampled_from([None, "fork", "spawn", "forkserver"]),
    net_endpoints=st.sampled_from(
        ["loopback", "loopback:3", "127.0.0.1:9101", "a:1,b:2,c:3"]
    ),
    net_timeout_s=st.floats(min_value=0.001, max_value=600.0, allow_nan=False),
    net_max_retries=st.integers(min_value=0, max_value=16),
    net_timeout_grace_s=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    net_residency=st.booleans(),
    net_residency_budget_bytes=st.integers(min_value=1, max_value=1 << 40),
    task_timeout_s=st.none() | st.floats(min_value=0.001, max_value=600.0, allow_nan=False),
    task_max_retries=st.integers(min_value=0, max_value=16),
    retry_backoff_s=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    drain_timeout_s=st.floats(min_value=0.001, max_value=3600.0, allow_nan=False),
    on_task_failure=st.sampled_from(["abort", "quarantine"]),
)

atm_configs = st.builds(
    ATMConfig,
    mode=st.sampled_from(["none", "static", "dynamic", "fixed_p"]),
    tht_bucket_bits=st.integers(min_value=0, max_value=24),
    tht_bucket_capacity=st.integers(min_value=1, max_value=256),
    use_ikt=st.booleans(),
    p=st.sampled_from([2.0 ** -15, 2.0 ** -8, 0.25, 0.5, 1.0]),
    tau_max=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    l_training=st.integers(min_value=1, max_value=100),
    type_aware=st.booleans(),
    hash_function=st.sampled_from(["numpy", "lookup3", "one_at_a_time"]),
    hash_seed=st.integers(min_value=0, max_value=2**32 - 1),
    key_pipeline=st.sampled_from(["exact", "digest"]),
    key_cache=st.booleans(),
    key_cache_budget_bytes=st.integers(min_value=0, max_value=1 << 30),
    shuffle_cache_entries=st.integers(min_value=1, max_value=4096),
)

simulation_configs = st.builds(
    SimulationConfig,
    copy_bandwidth=st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
    hash_bandwidth=st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
    task_overhead=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    creation_throughput=st.floats(min_value=0.001, max_value=1e4, allow_nan=False),
    memory_contention_factor=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)

repro_configs = st.builds(
    ReproConfig,
    runtime=runtime_configs,
    atm=atm_configs,
    simulation=simulation_configs,
)


class TestPropertyRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(cfg=repro_configs)
    def test_dict_round_trip(self, cfg):
        assert ReproConfig.from_dict(cfg.to_dict()) == cfg

    @settings(max_examples=40, deadline=None)
    @given(cfg=repro_configs)
    def test_env_round_trip(self, cfg):
        assert ReproConfig.from_env(cfg.to_env()) == cfg

    @settings(max_examples=25, deadline=None)
    @given(cfg=repro_configs)
    def test_file_round_trip(self, cfg, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("cfg")
        for suffix in ("toml", "json"):
            path = tmp_path / f"cfg.{suffix}"
            cfg.to_file(path)
            assert ReproConfig.from_file(path) == cfg


class TestFileRoundTrip:
    @pytest.mark.parametrize("suffix", ["toml", "json"])
    def test_non_default_round_trips(self, tmp_path, suffix):
        cfg = ReproConfig.from_dict({
            "runtime": {"executor": "network", "mp_workers": 3,
                        "mp_start_method": "spawn", "num_threads": 5,
                        "net_endpoints": "10.0.0.1:9101,10.0.0.2:9101",
                        "net_timeout_s": 2.5, "net_max_retries": 5},
            "atm": {"mode": "dynamic", "p": 0.25, "hash_function": "lookup3"},
            "simulation": {"copy_bandwidth": 123.5},
        })
        path = tmp_path / f"run.{suffix}"
        cfg.to_file(path)
        assert ReproConfig.from_file(path) == cfg

    def test_unknown_suffix_rejected(self, tmp_path):
        cfg = ReproConfig()
        with pytest.raises(ConfigurationError, match="yaml"):
            cfg.to_file(tmp_path / "run.yaml")
        (tmp_path / "run.yaml").write_text("{}")
        with pytest.raises(ConfigurationError, match="yaml"):
            ReproConfig.from_file(tmp_path / "run.yaml")

    def test_invalid_toml_reports_path(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[runtime\nnum_threads = 2")
        with pytest.raises(ConfigurationError, match="broken.toml"):
            ReproConfig.from_file(path)

    def test_unknown_field_in_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"runtime": {"threads": 2}}')
        with pytest.raises(ConfigurationError, match=r"runtime\.threads"):
            ReproConfig.from_file(path)


class TestSupervisionKnobs:
    """The PR-6 supervision knobs flow through every exchange format."""

    KNOBS = {
        "task_timeout_s": 1.5,
        "task_max_retries": 3,
        "retry_backoff_s": 0.25,
        "drain_timeout_s": 42.0,
        "on_task_failure": "quarantine",
    }

    @pytest.mark.parametrize("suffix", ["toml", "json"])
    def test_file_round_trip(self, tmp_path, suffix):
        cfg = ReproConfig.from_dict({"runtime": dict(self.KNOBS)})
        path = tmp_path / f"run.{suffix}"
        cfg.to_file(path)
        loaded = ReproConfig.from_file(path)
        for name, value in self.KNOBS.items():
            assert getattr(loaded.runtime, name) == value

    def test_env_round_trip_including_disabled_timeout(self):
        cfg = ReproConfig.from_dict({"runtime": dict(self.KNOBS)})
        assert ReproConfig.from_env(cfg.to_env()) == cfg
        # task_timeout_s=None (the default: no per-task budget) survives too.
        assert ReproConfig.from_env(ReproConfig().to_env()) == ReproConfig()
        parsed = ReproConfig.from_env({"REPRO_RUNTIME_TASK_TIMEOUT_S": "none"})
        assert parsed.runtime.task_timeout_s is None

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ConfigurationError, match="task_timeout_s"):
            RuntimeConfig(task_timeout_s=0.0)
        with pytest.raises(ConfigurationError, match="task_max_retries"):
            RuntimeConfig(task_max_retries=-1)
        with pytest.raises(ConfigurationError, match="retry_backoff_s"):
            RuntimeConfig(retry_backoff_s=-0.1)
        with pytest.raises(ConfigurationError, match="drain_timeout_s"):
            RuntimeConfig(drain_timeout_s=0.0)
        with pytest.raises(ConfigurationError, match="on_task_failure"):
            RuntimeConfig(on_task_failure="retry-forever")


class TestResidencyKnobs:
    """The PR-7 network residency knobs flow through every exchange format."""

    KNOBS = {
        "net_timeout_grace_s": 0.75,
        "net_residency": False,
        "net_residency_budget_bytes": 64 << 20,
    }

    @pytest.mark.parametrize("suffix", ["toml", "json"])
    def test_file_round_trip(self, tmp_path, suffix):
        cfg = ReproConfig.from_dict({"runtime": dict(self.KNOBS)})
        path = tmp_path / f"run.{suffix}"
        cfg.to_file(path)
        loaded = ReproConfig.from_file(path)
        for name, value in self.KNOBS.items():
            assert getattr(loaded.runtime, name) == value

    def test_dict_and_env_round_trip(self):
        cfg = ReproConfig.from_dict({"runtime": dict(self.KNOBS)})
        assert ReproConfig.from_dict(cfg.to_dict()) == cfg
        assert ReproConfig.from_env(cfg.to_env()) == cfg
        parsed = ReproConfig.from_env({"REPRO_RUNTIME_NET_RESIDENCY": "false"})
        assert parsed.runtime.net_residency is False

    def test_defaults(self):
        cfg = RuntimeConfig()
        assert cfg.net_residency is True
        assert cfg.net_timeout_grace_s == 0.25
        assert cfg.net_residency_budget_bytes == 256 << 20

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ConfigurationError, match="net_timeout_grace_s"):
            RuntimeConfig(net_timeout_grace_s=-0.1)
        with pytest.raises(ConfigurationError, match="net_residency_budget_bytes"):
            RuntimeConfig(net_residency_budget_bytes=0)


class TestServingConfig:
    """The PR-8 serving-gateway section flows through every exchange format."""

    KNOBS = {
        "host": "0.0.0.0",
        "port": 9201,
        "max_pending": 64,
        "max_tenant_queue": 512,
        "quantum": 16,
        "default_weight": 2.0,
        "shared_tht": True,
        "merge_interval_s": 0.1,
        "merge_min_commits": 8,
        "result_history": 256,
        "shutdown_grace_s": 2.5,
    }

    @pytest.mark.parametrize("suffix", ["toml", "json"])
    def test_file_round_trip(self, tmp_path, suffix):
        cfg = ReproConfig.from_dict({"serving": dict(self.KNOBS)})
        path = tmp_path / f"serve.{suffix}"
        cfg.to_file(path)
        loaded = ReproConfig.from_file(path)
        for name, value in self.KNOBS.items():
            assert getattr(loaded.serving, name) == value

    def test_dict_and_env_round_trip(self):
        cfg = ReproConfig.from_dict({"serving": dict(self.KNOBS)})
        assert ReproConfig.from_dict(cfg.to_dict()) == cfg
        assert ReproConfig.from_env(cfg.to_env()) == cfg
        parsed = ReproConfig.from_env({
            "REPRO_SERVING_SHARED_THT": "true",
            "REPRO_SERVING_MAX_PENDING": "128",
        })
        assert parsed.serving.shared_tht is True
        assert parsed.serving.max_pending == 128

    def test_defaults(self):
        cfg = ServingConfig()
        assert cfg.host == "127.0.0.1"
        assert cfg.port == 0
        assert cfg.max_pending == 256
        assert cfg.shared_tht is False

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ConfigurationError, match="port"):
            ServingConfig(port=70000)
        with pytest.raises(ConfigurationError, match="max_pending"):
            ServingConfig(max_pending=0)
        with pytest.raises(ConfigurationError, match="max_tenant_queue"):
            ServingConfig(max_tenant_queue=0)
        with pytest.raises(ConfigurationError, match="quantum"):
            ServingConfig(quantum=0)
        with pytest.raises(ConfigurationError, match="default_weight"):
            ServingConfig(default_weight=0.0)
        with pytest.raises(ConfigurationError, match="host"):
            ServingConfig(host="  ")


class TestEnv:
    def test_reads_prefixed_variables_over_base(self):
        env = {
            "REPRO_RUNTIME_NUM_THREADS": "6",
            "REPRO_RUNTIME_EXECUTOR": "threaded",
            "REPRO_ATM_MODE": "static",
            "REPRO_ATM_USE_IKT": "false",
            "REPRO_SIMULATION_COPY_BANDWIDTH": "99.5",
            "UNRELATED": "ignored",
        }
        cfg = ReproConfig.from_env(env)
        assert cfg.runtime.num_threads == 6
        assert cfg.runtime.executor == "threaded"
        assert cfg.atm.mode == "static"
        assert cfg.atm.use_ikt is False
        assert cfg.simulation.copy_bandwidth == 99.5

    def test_optional_fields_parse_none(self):
        cfg = ReproConfig.from_env({"REPRO_RUNTIME_MP_WORKERS": "none"})
        assert cfg.runtime.mp_workers is None
        cfg = ReproConfig.from_env({"REPRO_RUNTIME_MP_WORKERS": "4"})
        assert cfg.runtime.mp_workers == 4

    def test_typo_raises_instead_of_silently_ignoring(self):
        with pytest.raises(ConfigurationError, match="NUM_THREAD"):
            ReproConfig.from_env({"REPRO_RUNTIME_NUM_THREAD": "6"})
        with pytest.raises(ConfigurationError, match="RUNTIM"):
            ReproConfig.from_env({"REPRO_RUNTIM_NUM_THREADS": "6"})

    def test_unparsable_value_names_field(self):
        with pytest.raises(ConfigurationError, match=r"runtime\.num_threads"):
            ReproConfig.from_env({"REPRO_RUNTIME_NUM_THREADS": "many"})
        with pytest.raises(ConfigurationError, match=r"atm\.use_ikt"):
            ReproConfig.from_env({"REPRO_ATM_USE_IKT": "maybe"})

    def test_base_config_preserved(self):
        base = ReproConfig.from_dict({"atm": {"mode": "dynamic", "tau_max": 0.2}})
        cfg = ReproConfig.from_env({"REPRO_RUNTIME_NUM_THREADS": "2"}, base=base)
        assert cfg.atm.mode == "dynamic"
        assert cfg.atm.tau_max == 0.2
        assert cfg.runtime.num_threads == 2


class TestOverridesAndCoerce:
    def test_with_overrides(self):
        cfg = ReproConfig().with_overrides(
            runtime={"executor": "simulated"}, atm={"mode": "static"}
        )
        assert cfg.runtime.executor == "simulated"
        assert cfg.atm.mode == "static"
        # original untouched
        assert ReproConfig().runtime.executor == "serial"

    def test_with_overrides_unknown_section(self):
        with pytest.raises(ConfigurationError, match="engine"):
            ReproConfig().with_overrides(engine={"p": 0.5})

    def test_coerce_accepts_config_dict_path_none(self, tmp_path):
        cfg = ReproConfig()
        assert ReproConfig.coerce(cfg) is cfg
        assert ReproConfig.coerce(None) == ReproConfig()
        assert ReproConfig.coerce({"runtime": {"num_threads": 2}}).runtime.num_threads == 2
        path = tmp_path / "c.json"
        cfg.to_file(path)
        assert ReproConfig.coerce(path) == cfg
        assert ReproConfig.coerce(str(path)) == cfg
        with pytest.raises(ConfigurationError):
            ReproConfig.coerce(42)

    def test_sub_configs_still_validate_on_replace(self):
        cfg = ReproConfig()
        with pytest.raises(ConfigurationError):
            dataclasses.replace(cfg.runtime, num_threads=0)
