"""Tests for the Session facade: assembly, task declaration, registries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.atm.engine import ATMEngine
from repro.atm.policy import DynamicATMPolicy, FixedPPolicy, StaticATMPolicy
from repro.common.config import ATMConfig, RuntimeConfig
from repro.common.exceptions import (
    ConfigurationError,
    DrainAbortedError,
    RuntimeStateError,
    TaskDefinitionError,
)
from repro.runtime.executor import SerialExecutor, ThreadedExecutor
from repro.runtime.mp_executor import ProcessExecutor
from repro.runtime.simulator import SimulatedExecutor
from repro.runtime.task import TaskType
from repro.session import (
    In,
    InOut,
    Out,
    ReproConfig,
    Session,
    available_executors,
    register_executor,
    register_policy,
    register_scheduler,
    unregister_executor,
    unregister_policy,
    unregister_scheduler,
)


class TestAssembly:
    def test_default_session_is_serial_without_atm(self):
        s = Session()
        assert isinstance(s.executor, SerialExecutor)
        assert s.engine is None

    def test_executor_name_resolved_via_registry(self):
        assert isinstance(Session(executor="threaded").executor, ThreadedExecutor)
        assert isinstance(Session(executor="simulated").executor, SimulatedExecutor)
        process = Session(executor="process", cores=2)
        try:
            assert isinstance(process.executor, ProcessExecutor)
        finally:
            process.close()

    def test_unknown_executor_name_raises(self):
        with pytest.raises(ConfigurationError, match="warp"):
            Session(executor="warp")

    def test_policy_name_builds_engine(self):
        static = Session(policy="static")
        assert isinstance(static.engine, ATMEngine)
        assert isinstance(static.engine.policy, StaticATMPolicy)
        dynamic = Session(policy="dynamic")
        assert isinstance(dynamic.engine.policy, DynamicATMPolicy)
        fixed = Session(policy="fixed_p", p=0.25)
        assert isinstance(fixed.engine.policy, FixedPPolicy)
        assert fixed.engine.policy.config.p == 0.25

    def test_config_tree_drives_assembly(self):
        cfg = ReproConfig.from_dict({
            "runtime": {"executor": "simulated", "num_threads": 4},
            "atm": {"mode": "static", "tht_bucket_bits": 4},
        })
        s = Session(cfg)
        assert isinstance(s.executor, SimulatedExecutor)
        assert s.engine.tht.config.tht_bucket_bits == 4
        assert s.config.runtime.num_threads == 4

    def test_simulation_config_reaches_simulator(self):
        cfg = ReproConfig.from_dict({
            "runtime": {"executor": "simulated"},
            "simulation": {"copy_bandwidth": 1234.0},
        })
        s = Session(cfg)
        assert s.executor.sim.copy_bandwidth == 1234.0

    def test_explicit_executor_instance_and_engine_install(self):
        config = ATMConfig()
        engine = ATMEngine(config=config, policy=StaticATMPolicy(config))
        executor = SerialExecutor(config=RuntimeConfig(num_threads=1))
        s = Session(executor=executor, engine=engine)
        assert s.executor is executor
        assert executor.engine is engine

    def test_executor_instance_keeps_preinstalled_engine(self):
        config = ATMConfig()
        engine = ATMEngine(config=config, policy=StaticATMPolicy(config))
        executor = SerialExecutor(config=RuntimeConfig(num_threads=1), engine=engine)
        s = Session(executor=executor)
        assert s.engine is engine

    def test_policy_instance_accepted(self):
        policy = FixedPPolicy(0.5, ATMConfig())
        s = Session(policy=policy)
        assert s.engine.policy is policy

    def test_fixed_p_kwarg_requires_explicit_p(self):
        with pytest.raises(ConfigurationError, match="explicit p"):
            Session(policy="fixed_p")
        # the declarative path states atm.p explicitly instead
        s = Session.from_config({"atm": {"mode": "fixed_p", "p": 0.125}})
        assert s.engine.policy.config.p == 0.125

    def test_dangling_p_without_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="no effect"):
            Session(p=0.25)
        with pytest.raises(ConfigurationError, match="no effect"):
            Session(executor=SerialExecutor(config=RuntimeConfig(num_threads=1)),
                    p=0.25)

    def test_builtin_name_cannot_be_shadowed_without_replace(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_policy("static", lambda config, p: StaticATMPolicy(config))

    def test_executor_instance_rejects_runtime_overrides(self):
        executor = ThreadedExecutor(config=RuntimeConfig(num_threads=2))
        with pytest.raises(ConfigurationError, match="num_threads"):
            Session(executor=executor, cores=8)
        with pytest.raises(ConfigurationError, match="scheduler"):
            Session(executor=ThreadedExecutor(config=RuntimeConfig()), scheduler="lifo")

    def test_engine_sized_from_executor_instance_threads(self):
        executor = ThreadedExecutor(config=RuntimeConfig(num_threads=3))
        s = Session(executor=executor, engine=None, policy=None,
                    config={"atm": {"mode": "static"}})
        assert s.engine.ikt.max_entries == 3

    def test_from_config_classmethod(self):
        s = Session.from_config({"runtime": {"num_threads": 2}}, policy="static")
        assert s.config.runtime.num_threads == 2
        assert isinstance(s.engine.policy, StaticATMPolicy)

    def test_describe_mentions_backend_and_policy(self):
        text = Session(executor="simulated", policy="static").describe()
        assert "SimulatedExecutor" in text and "static" in text

    def test_engine_carrying_executor_rejects_conflicting_policy(self):
        config = ATMConfig()
        engine = ATMEngine(config=config, policy=StaticATMPolicy(config))
        executor = SerialExecutor(config=RuntimeConfig(num_threads=1), engine=engine)
        # same engine is fine ...
        assert Session(executor=executor, engine=engine).engine is engine
        # ... but a different engine or an extra policy would silently split
        # execution from statistics — rejected.
        other = ATMEngine(config=config, policy=StaticATMPolicy(config))
        with pytest.raises(ConfigurationError, match="already carries"):
            Session(executor=executor, engine=other)
        with pytest.raises(ConfigurationError, match="already carries"):
            Session(executor=executor, policy="static")
        with pytest.raises(ConfigurationError, match="already carries"):
            Session(executor=executor, p=0.25)

    def test_explicit_engine_rejects_policy_and_p_overrides(self):
        config = ATMConfig()
        engine = ATMEngine(config=config, policy=StaticATMPolicy(config))
        with pytest.raises(ConfigurationError, match="pre-built engine"):
            Session(engine=engine, policy="dynamic")
        with pytest.raises(ConfigurationError, match="pre-built engine"):
            Session(engine=engine, p=0.25)


class TestTaskDecorator:
    def test_annotation_inference(self):
        with Session() as s:
            @s.task
            def scale(src: In, dst: Out, factor):
                dst[:] = factor * src

            a, b = np.arange(3.0), np.zeros(3)
            submitted = scale(a, b, 3.0)
            assert submitted.task_type.name == "scale"
            s.wait_all()
        assert b.tolist() == [0.0, 3.0, 6.0]

    def test_string_annotations_from_future_import(self):
        # This module has `from __future__ import annotations`, so the
        # markers arrive as strings — inference must still work.
        with Session() as s:
            @s.task
            def bump(data: InOut):
                data += 1

            arr = np.zeros(2)
            bump(arr)
        assert arr.tolist() == [1.0, 1.0]

    def test_explicit_parameter_name_clauses(self):
        with Session() as s:
            @s.task(ins=("src",), outs=("dst",))
            def copy(src, dst):
                dst[:] = src

            a, b = np.ones(4), np.zeros(4)
            copy(a, b)
        assert b.tolist() == a.tolist()

    def test_clauses_and_annotations_merge(self):
        with Session() as s:
            @s.task(ins=("lhs",))
            def add(lhs, rhs: In, out: Out):
                out[:] = lhs + rhs

            out = np.zeros(2)
            add(np.ones(2), np.ones(2), out)
        assert out.tolist() == [2.0, 2.0]

    def test_memoizable_flag_and_type_options(self):
        s = Session()

        @s.task(memoizable=True, name="kernel", tau_max=0.5, l_training=3)
        def kernel(x: In, y: Out):
            y[:] = x

        tt = kernel.task_type
        assert isinstance(tt, TaskType)
        assert tt.memoizable and tt.name == "kernel"
        assert tt.tau_max == 0.5 and tt.l_training == 3

    def test_memoization_via_session_task(self):
        cfg = {"runtime": {"executor": "serial", "num_threads": 1},
               "atm": {"mode": "static"}}
        with Session.from_config(cfg) as s:
            @s.task(memoizable=True)
            def square(src: In, dst: Out):
                dst[:] = src ** 2

            src = np.arange(8.0)
            outs = [np.zeros(8) for _ in range(4)]
            for dst in outs:
                square(src, dst)
        result = s.result
        assert result.tasks_completed == 4
        assert result.tasks_memoized == 3  # identical repeats hit the THT
        assert all(o.tolist() == (src ** 2).tolist() for o in outs)

    def test_unknown_parameter_name_rejected(self):
        s = Session()
        with pytest.raises(TaskDefinitionError, match="ghost"):
            @s.task(ins=("ghost",))
            def fn(x):
                return x

    def test_conflicting_declarations_rejected(self):
        s = Session()
        with pytest.raises(TaskDefinitionError, match="more than one"):
            @s.task(ins=("x",), outs=("x",))
            def fn(x):
                return x

        with pytest.raises(TaskDefinitionError, match="conflicting"):
            @s.task(ins=("y",))
            def gn(y: Out):
                return y

    def test_no_accesses_rejected(self):
        s = Session()
        with pytest.raises(TaskDefinitionError, match="no data accesses"):
            @s.task
            def fn(x, y):
                return x + y

    def test_wrapped_body_callable_directly(self):
        s = Session()

        @s.task
        def double(src: In, dst: Out):
            dst[:] = 2 * src

        a, b = np.ones(2), np.zeros(2)
        double.__wrapped__(a, b)  # direct call: no submission
        assert b.tolist() == [2.0, 2.0]
        assert s.task_count == 0


def _double_body(src, dst):
    """Module-level body for the process-backend pickling test."""
    dst[:] = 2 * src


#: qualname '<lambda>' — resolvability must be proven at dispatch time, not
#: by pattern-matching on '<locals>' (a worker dying at unpickle would hang
#: the drain instead of raising).
_module_lambda = lambda src, dst: dst.__setitem__(slice(None), src)


class TestProcessBackendTasks:
    def test_decorated_task_body_survives_pickling(self):
        # @s.task rebinds the module-level name to the submitting wrapper;
        # the _TaskBody proxy must keep the body picklable for the process
        # backend (regression: "not the same object as ...").
        with Session(executor="process", cores=2) as s:
            double = s.task(_double_body, ins=("src",), outs=("dst",))
            a = np.arange(64.0)
            outs = [np.zeros(64) for _ in range(4)]
            for dst in outs:
                double(a, dst)
        assert s.result.tasks_completed == 4
        assert all(o.tolist() == (2 * a).tolist() for o in outs)

    def test_local_task_body_fails_with_explanatory_error(self):
        with pytest.raises(RuntimeStateError, match="picklable|module-level"):
            with Session(executor="process", cores=2) as s:
                @s.task
                def local_fn(src: In, dst: Out):
                    dst[:] = src

                local_fn(np.arange(4.0), np.zeros(4))
                s.wait_all()

    def test_module_level_lambda_fails_at_dispatch_not_in_worker(self):
        with pytest.raises(RuntimeStateError, match="picklable|module-level"):
            with Session(executor="process", cores=2) as s:
                wrapped = s.task(_module_lambda, ins=("src",), outs=("dst",))
                wrapped(np.arange(4.0), np.zeros(4))
                s.wait_all()


class TestLifecycle:
    def test_result_before_barrier_raises(self):
        s = Session()
        with pytest.raises(RuntimeStateError, match="wait_all"):
            s.result

    def test_wait_all_then_result(self):
        s = Session()
        s.submit(TaskType("t"), lambda d: None, accesses=[Out(np.zeros(1))],
                 args=(np.zeros(1),))
        r = s.wait_all()
        assert s.result is r or s.result.tasks_completed == r.tasks_completed

    def test_submit_after_finish_raises(self):
        s = Session()
        s.finish()
        with pytest.raises(RuntimeStateError, match="finished"):
            s.submit(TaskType("t2"), lambda: None, accesses=[Out(np.zeros(1))])
        with pytest.raises(RuntimeStateError, match="finished"):
            s.wait_all()
        with pytest.raises(RuntimeStateError, match="finished"):
            s.finish()

    def test_context_manager_finishes(self):
        data = np.zeros(1)
        with Session() as s:
            @s.task
            def set_one(d: Out):
                d[0] = 1.0
            set_one(data)
        assert data[0] == 1.0
        assert s.result.tasks_completed == 1

    def test_context_manager_closes_on_error_without_drain(self):
        ran = []
        with pytest.raises(RuntimeError, match="boom"):
            with Session() as s:
                @s.task
                def record(d: Out):
                    ran.append(True)
                record(np.zeros(1))
                raise RuntimeError("boom")
        assert ran == []          # error path never drained the graph
        with pytest.raises(RuntimeStateError):
            s.wait_all()          # and the session is closed

    def test_close_idempotent(self):
        s = Session()
        s.close()
        s.close()

    def test_result_readable_after_failing_finish(self):
        # DESIGN.md §6: finish() closes the executor even when the drain
        # raises, and Session.result stays readable afterwards.
        s = Session()

        def explode():
            raise ValueError("task failure")

        s.submit(TaskType("explode"), explode, accesses=[Out(np.zeros(1))])
        with pytest.raises(DrainAbortedError, match="task failure") as excinfo:
            s.finish()
        # The original body exception rides along as the cause.
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert s.result.tasks_completed == 0  # partial counters, no raise
        assert [f.label for f in s.result.failures] == ["explode#0"]

    def test_caught_abort_poisons_session_but_exits_cleanly(self):
        # A caller that catches the DrainAbortedError inside the ``with``
        # block must not trigger a second drain on the poisoned graph at
        # __exit__ (serial would starve, threaded would hang until the
        # drain deadline): the session closes quietly instead, and an
        # explicit re-drain raises a named error pointing at the abort.
        with Session() as s:

            def explode():
                raise ValueError("task failure")

            s.submit(TaskType("explode"), explode, accesses=[Out(np.zeros(1))])
            with pytest.raises(DrainAbortedError):
                s.wait_all()
            with pytest.raises(RuntimeStateError, match="previous drain aborted"):
                s.wait_all()
        assert s._closed  # __exit__ closed without re-draining
        assert [f.label for f in s.result.failures] == ["explode#0"]


class TestRegistries:
    def test_register_executor_extends_config_validation(self):
        calls = []

        def factory(config, engine, sim_config):
            calls.append(config.executor)
            return SerialExecutor(config=config, engine=engine)

        register_executor("loopback", factory)
        try:
            assert "loopback" in available_executors()
            # valid both as a Session argument and as a plain config value
            cfg = ReproConfig.from_dict({"runtime": {"executor": "loopback"}})
            with Session(cfg) as s:
                @s.task
                def touch(d: Out):
                    d[0] = 7.0
                data = np.zeros(1)
                touch(data)
            assert data[0] == 7.0
            assert calls == ["loopback"]
        finally:
            unregister_executor("loopback")
        with pytest.raises(ConfigurationError):
            RuntimeConfig(executor="loopback")

    def test_register_scheduler(self):
        from repro.runtime.ready_queue import FIFOReadyQueue
        from repro.runtime.scheduler import Scheduler

        register_scheduler("fifo2", lambda config: Scheduler(FIFOReadyQueue()))
        try:
            with Session.from_config({"runtime": {"scheduler": "fifo2"}}) as s:
                @s.task
                def touch(d: Out):
                    d[0] = 1.0
                data = np.zeros(1)
                touch(data)
            assert data[0] == 1.0
        finally:
            unregister_scheduler("fifo2")

    def test_register_policy_becomes_valid_mode(self):
        register_policy("static2", lambda config, p: StaticATMPolicy(config))
        try:
            s = Session.from_config({"atm": {"mode": "static2"}})
            assert isinstance(s.engine.policy, StaticATMPolicy)
        finally:
            unregister_policy("static2")
        with pytest.raises(ConfigurationError):
            ATMConfig(mode="static2")

    def test_duplicate_registration_rejected(self):
        register_policy("dup", lambda config, p: StaticATMPolicy(config))
        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                register_policy("dup", lambda config, p: StaticATMPolicy(config))
        finally:
            unregister_policy("dup")

    def test_builtins_cannot_be_unregistered(self):
        with pytest.raises(ConfigurationError, match="builtin"):
            unregister_executor("serial")

    def test_plugin_policy_mode_survives_process_engine_spec(self):
        # The worker-side engine recipe must carry the *registered* mode
        # name, not the builtin class attribute the plugin inherited —
        # otherwise workers silently rebuild the builtin policy.
        from repro.runtime.mp_executor import ProcessExecutor

        class HalfStatic(StaticATMPolicy):
            pass

        register_policy("half_static", lambda config, p: HalfStatic(config))
        try:
            s = Session.from_config({"atm": {"mode": "half_static"}})
            spec = ProcessExecutor._make_engine_spec(s.engine)
            assert spec.mode == "half_static"
        finally:
            unregister_policy("half_static")
        # hand-assembled engines (config keeps mode="none") still fall back
        # to the policy's own mode
        config = ATMConfig()
        engine = ATMEngine(config=config, policy=StaticATMPolicy(config))
        assert ProcessExecutor._make_engine_spec(engine).mode == "static"
