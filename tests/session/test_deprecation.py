"""The legacy API surface still works and warns exactly once per use."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.common.config import RuntimeConfig
from repro.runtime.api import TaskRuntime, task
from repro.runtime.data import In, Out
from repro.runtime.executor import SerialExecutor, make_executor
from repro.runtime.task import TaskType
from repro.session.session import Session


def collect_deprecations(fn):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = fn()
    return value, [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestTaskRuntimeShim:
    def test_constructor_warns_exactly_once(self):
        runtime, deprecations = collect_deprecations(TaskRuntime)
        assert len(deprecations) == 1
        assert "repro.session.Session" in str(deprecations[0].message)
        assert isinstance(runtime.executor, SerialExecutor)

    def test_old_submit_wait_pattern_still_works(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runtime = TaskRuntime()
        src, dst = np.arange(4.0), np.zeros(4)
        tt = TaskType("copy_shim")
        runtime.submit(tt, lambda s, d: d.__setitem__(slice(None), s),
                       accesses=[In(src), Out(dst)], args=(src, dst))
        result = runtime.finish()
        assert dst.tolist() == src.tolist()
        assert result.tasks_completed == 1
        assert runtime.task_count == 1
        assert runtime.result.tasks_completed == 1

    def test_shim_delegates_to_a_session(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runtime = TaskRuntime(config=RuntimeConfig(num_threads=2))
        assert isinstance(runtime.session, Session)
        assert runtime.config.num_threads == 2
        assert runtime.graph is runtime.session.graph

    def test_default_executor_is_serial_even_if_config_names_another(self):
        # The original constructor never consulted config.executor when
        # executor=None; the shim must not start spawning worker pools.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runtime = TaskRuntime(config=RuntimeConfig(num_threads=2, executor="process"))
        assert isinstance(runtime.executor, SerialExecutor)

    def test_engine_argument_ignored_when_executor_carries_one(self):
        # Historical constructor semantics (the Session constructor itself
        # rejects this ambiguity, the shim must not).
        from repro.atm.engine import ATMEngine
        from repro.atm.policy import StaticATMPolicy
        from repro.common.config import ATMConfig

        config = ATMConfig()
        carried = ATMEngine(config=config, policy=StaticATMPolicy(config))
        other = ATMEngine(config=config, policy=StaticATMPolicy(config))
        executor = SerialExecutor(config=RuntimeConfig(num_threads=1), engine=carried)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            runtime = TaskRuntime(executor=executor, engine=other)
        assert runtime.executor.engine is carried

    def test_context_manager_still_finishes(self):
        data = np.zeros(1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with TaskRuntime() as runtime:
                runtime.submit(TaskType("inc_shim"),
                               lambda d: d.__setitem__(0, 1.0),
                               accesses=[Out(data)], args=(data,))
        assert data[0] == 1.0


class TestTaskDecoratorShim:
    def test_decoration_warns_exactly_once(self):
        tt = TaskType("double_shim", memoizable=True)

        def declare():
            @task(tt, lambda src, dst: [In(src), Out(dst)])
            def double(src, dst):
                dst[:] = 2 * src
            return double

        double, deprecations = collect_deprecations(declare)
        assert len(deprecations) == 1
        assert "Session.task" in str(deprecations[0].message)
        assert double.task_type is tt

    def test_decorated_function_still_runs_and_submits(self):
        tt = TaskType("triple_shim", memoizable=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)

            @task(tt, lambda src, dst: [In(src), Out(dst)])
            def triple(src, dst):
                dst[:] = 3 * src

            runtime = TaskRuntime()
        a, b = np.ones(3), np.zeros(3)
        triple(a, b)                      # direct call, no runtime
        assert b.tolist() == [3.0, 3.0, 3.0]
        b[:] = 0
        triple(a, b, runtime=runtime)     # submission path
        assert b.tolist() == [0.0, 0.0, 0.0]
        runtime.finish()
        assert b.tolist() == [3.0, 3.0, 3.0]


class TestMakeExecutorShim:
    def test_warns_exactly_once_and_builds(self):
        build = lambda: make_executor(RuntimeConfig(num_threads=1, executor="serial"))
        executor, deprecations = collect_deprecations(build)
        assert len(deprecations) == 1
        assert "Session" in str(deprecations[0].message)
        assert isinstance(executor, SerialExecutor)
