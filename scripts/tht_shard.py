#!/usr/bin/env python
"""Standalone THT cache-shard daemon (DESIGN.md §9).

Holds one :class:`repro.atm.tht.TaskHistoryTable` and serves it to any
number of sessions and gateways over the :mod:`repro.runtime.net_wire`
frame protocol: ``hello``/``hello_ack`` (protocol handshake), ``fetch``
(download the whole table as one delta), ``publish`` (merge a delta in),
``stats``.  Clients address it as ``atm.tht_store="tcp://host:port"`` —
the shard is what turns per-process memoization into a warm tier shared
across processes, machines and gateway restarts.

Usage::

    python scripts/tht_shard.py --host 127.0.0.1 --port 9201
    python scripts/tht_shard.py --port 0 --announce     # ephemeral, printed
    python scripts/tht_shard.py --backing /var/tmp/shard.tht

then point any session or gateway at it from config alone::

    REPRO_ATM_THT_STORE=tcp://127.0.0.1:9201 python my_program.py

``--backing FILE`` makes the shard itself durable: the table is warm-started
from that ``file://``-format snapshot at boot (a corrupt file cold-starts
the shard, mirroring the Session's semantics) and flushed back on graceful
shutdown and every ``--flush-every`` publishes.

SIGTERM/SIGINT trigger a graceful shutdown: the listener stops accepting,
in-flight requests get a grace period, the backing file (if any) receives a
final compacted snapshot, then the sockets close.
"""

from __future__ import annotations

import argparse
import signal
import socketserver
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.atm.store import (  # noqa: E402
    FileTHTStore,
    ShardState,
    serve_shard_connection,
)
from repro.common.config import ATMConfig  # noqa: E402

#: Seconds a graceful shutdown waits for in-flight connections to drain.
SHUTDOWN_GRACE_S = 5.0


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        self.server.track_connection(+1)
        try:
            serve_shard_connection(self.request, self.server.state)
        finally:
            self.server.track_connection(-1)


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, handler, state: ShardState, flush_every: int = 0) -> None:
        super().__init__(address, handler)
        self.state = state
        self._flush_every = flush_every
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    def track_connection(self, delta: int) -> None:
        with self._inflight_lock:
            self._inflight += delta
        if delta < 0 and self._flush_every > 0 and self.state.backing is not None:
            # Periodic durability: flush after every Nth publish, checked as
            # connections retire so the accept loop never blocks on fsync.
            if self.state.publishes and self.state.publishes % self._flush_every == 0:
                self.state.flush()

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def shutdown_gracefully(self, grace_s: float = SHUTDOWN_GRACE_S) -> None:
        """Stop accepting, drain live requests, flush backing, close."""
        self.shutdown()
        deadline = time.monotonic() + grace_s
        while self.inflight > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        self.state.flush()
        self.server_close()


def make_state(
    bucket_bits: int = ATMConfig.tht_bucket_bits,
    bucket_capacity: int = ATMConfig.tht_bucket_capacity,
    backing: "str | Path | None" = None,
) -> ShardState:
    """Build the shard's table state from its geometry + optional backing."""
    config = ATMConfig(
        tht_bucket_bits=bucket_bits, tht_bucket_capacity=bucket_capacity
    )
    store = FileTHTStore(backing, atm_config=config) if backing else None
    return ShardState(atm_config=config, backing=store)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=9201,
                        help="bind port (0 = ephemeral, default 9201)")
    parser.add_argument("--announce", action="store_true",
                        help="print 'listening <host>:<port>' once bound "
                             "(for harnesses starting daemons on port 0)")
    parser.add_argument("--bucket-bits", type=int,
                        default=ATMConfig.tht_bucket_bits,
                        help="THT geometry: 2^bits buckets")
    parser.add_argument("--bucket-capacity", type=int,
                        default=ATMConfig.tht_bucket_capacity,
                        help="THT geometry: entries per bucket (FIFO evict)")
    parser.add_argument("--backing", default=None,
                        help="snapshot file to warm-start from and flush to")
    parser.add_argument("--flush-every", type=int, default=0,
                        help="flush the backing file every N publishes "
                             "(0 = only on shutdown)")
    args = parser.parse_args(argv)

    state = make_state(args.bucket_bits, args.bucket_capacity, args.backing)
    server = _Server((args.host, args.port), _Handler, state,
                     flush_every=args.flush_every)
    host, port = server.server_address[:2]
    if args.announce:
        print(f"listening {host}:{port}", flush=True)

    closed = threading.Event()

    def request_shutdown(signum, frame):  # pragma: no cover - signal driven
        # serve_forever's own thread cannot call shutdown() (it would
        # deadlock on the serve loop); hand the teardown to a helper thread.
        def teardown() -> None:
            server.shutdown_gracefully()
            closed.set()

        threading.Thread(target=teardown, name="tht-shard-shutdown").start()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)

    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        if not closed.is_set():
            server.shutdown_gracefully()
    return 0


def serve_in_thread(
    host: str = "127.0.0.1",
    port: int = 0,
    bucket_bits: int = ATMConfig.tht_bucket_bits,
    bucket_capacity: int = ATMConfig.tht_bucket_capacity,
    backing: "str | Path | None" = None,
):
    """Start a shard in-process (tests/benchmarks); returns (server, addr).

    Call ``server.shutdown_gracefully()`` (or ``server.shutdown();
    server.server_close()``) to stop it.
    """
    state = make_state(bucket_bits, bucket_capacity, backing)
    server = _Server((host, port), _Handler, state)
    thread = threading.Thread(target=server.serve_forever, args=(0.2,), daemon=True)
    thread.start()
    bound_host, bound_port = server.server_address[:2]
    return server, f"{bound_host}:{bound_port}"


if __name__ == "__main__":
    raise SystemExit(main())
