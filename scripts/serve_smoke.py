#!/usr/bin/env python
"""Serving-gateway smoke: concurrent tenants, bit-identity, ATM tiers.

The one-command acceptance check for the serving front door (DESIGN.md §8),
run by ``make serve-smoke`` and the CI serving step.  Two phases against
in-process gateways on real loopback TCP:

1. **Isolation** — two concurrent tenants each run all six evaluated
   applications through one gateway on a shared threaded pool, shared THT
   tier off.  Every output must be bit-identical to a serial local
   ``Session`` run of the same app, no task may fail, and no tenant may see
   a shared-tier hit (namespaces are isolated).
2. **Shared tier** — gateway restarted with ``serving.shared_tht`` on and a
   static ATM mode; a second tenant replaying the first tenant's app must
   reuse published results (``shared_hits > 0``) and still produce
   bit-identical output.

Exit status is non-zero on any divergence.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.apps import make_benchmark  # noqa: E402
from repro.serving import Gateway, GatewayClient  # noqa: E402
from repro.session import ReproConfig, Session  # noqa: E402
from repro.testing.traffic import SERVED_APPS  # noqa: E402

TENANTS = 2


def serial_reference(scale: str = "tiny") -> dict[str, np.ndarray]:
    out = {}
    for name in SERVED_APPS:
        app = make_benchmark(name, scale=scale)
        with Session(ReproConfig()) as session:
            app.build(session)
        out[name] = np.asarray(app.output(), dtype=np.float64).copy()
    return out


def phase_isolation(reference: dict[str, np.ndarray]) -> list[str]:
    """Concurrent tenants x six apps, shared tier off: bit-identity."""
    cfg = ReproConfig().with_overrides(
        runtime={"executor": "threaded", "num_threads": 2}
    )
    problems: list[str] = []
    lock = threading.Lock()

    def tenant_body(gateway: Gateway, tenant: str) -> None:
        try:
            with GatewayClient("127.0.0.1", gateway.port,
                               tenant=tenant) as client:
                for name in SERVED_APPS:
                    app = make_benchmark(name, scale="tiny")
                    app.build(client)
                    summary = client.wait_all()
                    out = np.asarray(app.output(), dtype=np.float64)
                    with lock:
                        if summary["tasks_failed"] or summary["tasks_cancelled"]:
                            problems.append(
                                f"{tenant}/{name}: failures "
                                f"{summary['failures']}"
                            )
                        elif not np.array_equal(out, reference[name]):
                            problems.append(
                                f"{tenant}/{name}: output diverged from the "
                                f"serial Session run"
                            )
                result = client.finish()
                if result.extra["shared_hits"]:
                    with lock:
                        problems.append(
                            f"{tenant}: {result.extra['shared_hits']} shared "
                            f"hits with the shared tier off"
                        )
        except Exception as exc:
            with lock:
                problems.append(f"{tenant}: {exc!r}")

    with Gateway(cfg) as gateway:
        threads = [
            threading.Thread(target=tenant_body,
                             args=(gateway, f"smoke-{i}"))
            for i in range(TENANTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
            if thread.is_alive():
                problems.append(f"{thread.name}: tenant did not finish")
    return problems


def phase_shared_tier(reference: dict[str, np.ndarray]) -> list[str]:
    """Second tenant must reuse the first's published results."""
    cfg = ReproConfig().with_overrides(
        runtime={"executor": "serial"},
        atm={"mode": "static"},
        serving={"shared_tht": True},
    )
    problems: list[str] = []
    app_name = "blackscholes"

    def run(gateway: Gateway, tenant: str):
        app = make_benchmark(app_name, scale="tiny")
        with GatewayClient("127.0.0.1", gateway.port, tenant=tenant,
                           atm_mode="static", shared_tht=True) as client:
            app.build(client)
            result = client.finish()
        return result, np.asarray(app.output(), dtype=np.float64).copy()

    with Gateway(cfg) as gateway:
        first, out_first = run(gateway, "warm-a")
        second, out_second = run(gateway, "warm-b")
    for tenant, result in (("warm-a", first), ("warm-b", second)):
        if result.tasks_failed or result.tasks_cancelled:
            problems.append(f"{tenant}: failures {result.failures}")
    if second.extra["shared_hits"] <= 0:
        problems.append(
            f"warm-b: expected shared-tier hits, got "
            f"{second.extra['shared_hits']}"
        )
    if second.tasks_executed >= first.tasks_executed:
        problems.append(
            f"warm-b executed {second.tasks_executed} tasks, not fewer than "
            f"warm-a's {first.tasks_executed} despite the shared tier"
        )
    for tenant, out in (("warm-a", out_first), ("warm-b", out_second)):
        if not np.array_equal(out, reference[app_name]):
            problems.append(
                f"{tenant}: output diverged from the serial Session run"
            )
    return problems


def main() -> int:
    print(f"serve-smoke: serial reference over {len(SERVED_APPS)} apps...",
          flush=True)
    reference = serial_reference()

    print(f"serve-smoke: phase 1 — {TENANTS} concurrent tenants x "
          f"{len(SERVED_APPS)} apps, shared tier off...", flush=True)
    problems = phase_isolation(reference)
    print("serve-smoke: phase 2 — shared THT tier reuse...", flush=True)
    problems += phase_shared_tier(reference)

    if problems:
        for problem in problems:
            print(f"serve-smoke: FAIL {problem}", file=sys.stderr)
        return 1
    print(f"serve-smoke: OK — {TENANTS * len(SERVED_APPS)} tenant/app runs "
          f"bit-identical to serial, namespaces isolated, shared tier reuses")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
