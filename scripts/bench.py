#!/usr/bin/env python
"""Perf regression harness CLI.

Runs the microbenchmark suite (keygen, THT probe, dependence analysis,
simulator drain) plus a tiny-scale end-to-end figure run, and writes the
machine-readable ``BENCH_<n>.json`` at the repo root so every PR has a perf
trajectory to regress against.  Every end-to-end and backend-comparison run
is constructed through the Session API (``repro.session``) — the harness
performs no executor/engine wiring of its own.

Usage::

    python scripts/bench.py                 # full suite -> BENCH_<n>.json
    python scripts/bench.py --quick         # reduced rounds (CI smoke)
    python scripts/bench.py --check         # also run tier-1 tests + the
                                            # keygen-equivalence suite and
                                            # fail on any regression
    python scripts/bench.py --profile dependences
                                            # cProfile one micro suite and
                                            # dump the top-20 cumulative
                                            # entries (hot-path triage)
    make bench / make bench-check           # the same, via the Makefile

Exit status is non-zero when a gated perf threshold or (with ``--check``)
any test fails.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def run_tests(check_args: list[str]) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [sys.executable, "-m", "pytest", "-x", "-q", *check_args]
    print(f"$ {' '.join(command)}", flush=True)
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


#: Suites selectable with ``--profile``: name -> (module, callable, kwargs).
PROFILE_SUITES = {
    "keygen": ("repro.perf.micro", "bench_keygen", {}),
    "tht": ("repro.perf.micro", "bench_tht_probe", {}),
    "dependences": ("repro.perf.micro", "bench_dependences", {}),
    "submission": ("repro.perf.micro", "bench_submission", {}),
    "simulator": ("repro.perf.micro", "bench_simulator_drain", {}),
    "endtoend": ("repro.perf.endtoend", "bench_end_to_end", {}),
    "net_residency": (
        "repro.perf.net_residency", "bench_net_residency", {"rounds": 1}
    ),
    "serving": ("repro.perf.serving", "bench_serving", {"quick": True}),
    "tht_warm": ("repro.perf.tht_warm", "bench_tht_warm", {"quick": True}),
}


def run_profile(suite: str) -> int:
    """cProfile one suite and print the top-20 cumulative entries."""
    import cProfile
    import importlib
    import pstats

    module_name, function_name, kwargs = PROFILE_SUITES[suite]
    function = getattr(importlib.import_module(module_name), function_name)
    profile = cProfile.Profile()
    profile.enable()
    result = function(**kwargs)
    profile.disable()
    del result
    stats = pstats.Stats(profile)
    stats.sort_stats("cumulative").print_stats(20)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_<id>.json at the repo root)",
    )
    parser.add_argument(
        "--bench-id", type=int, default=9,
        help="report generation number (default 9)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="previous BENCH_<n>.json to gate against (default: "
             "BENCH_<id-1>.json at the repo root, when it exists)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced rounds / sizes for a fast smoke run",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run tier-1 tests and the keygen-equivalence suite first; "
             "fail if they fail or a perf threshold regresses",
    )
    parser.add_argument(
        "--profile", choices=sorted(PROFILE_SUITES), default=None,
        metavar="SUITE",
        help="instead of writing a report, run one suite under cProfile and "
             f"print the top-20 cumulative entries ({', '.join(sorted(PROFILE_SUITES))})",
    )
    args = parser.parse_args(argv)

    if args.profile:
        return run_profile(args.profile)

    if args.check:
        status = run_tests(["tests"])
        if status != 0:
            print("bench --check: tier-1 tests FAILED", file=sys.stderr)
            return status
        status = run_tests(["tests/atm/test_keygen_equivalence.py", "-q"])
        if status != 0:
            print("bench --check: keygen equivalence suite FAILED", file=sys.stderr)
            return status

    from repro.perf.report import (
        build_report,
        check_report,
        compare_to_baseline,
        write_report,
    )

    report = build_report(bench_id=args.bench_id, quick=args.quick)
    out = Path(args.out) if args.out else REPO_ROOT / f"BENCH_{args.bench_id}.json"
    write_report(report, out)

    keygen = report["micro"]["keygen"]
    print(f"wrote {out}")
    print(f"  keygen headline speedup : {keygen['headline_speedup']}x "
          f"(threshold {report['checks']['thresholds']['keygen_speedup_multi_input']}x)")
    print(f"  shuffle memory reduction: {keygen['shuffle_memory']['reduction']}x "
          f"(threshold {report['checks']['thresholds']['shuffle_memory_reduction']}x)")
    for case in keygen["cases"]:
        print(f"    {case['name']:32} new {case['new_us']:9.2f}us  "
              f"ref {case['ref_us']:9.2f}us  {case['speedup']:6.2f}x")
    dependences = report["micro"]["dependences"]
    print(f"  dependence submission   : {dependences['submit_us_per_task']}us/task "
          f"({dependences['tasks_per_sec']:.0f} tasks/s, threshold "
          f"{report['checks']['thresholds']['submission_tasks_per_sec']:.0f}/s)")
    for case in report["micro"]["submission"]["cases"]:
        print(f"    submit {case['shape']:22} batch {case['batch']:3}  "
              f"{case['submit_us_per_task']:8.3f}us  "
              f"{case['tasks_per_sec']:10.1f} tasks/s")
    recovery = report["micro"]["fault_recovery"]
    print(f"  fault recovery (kill 1/{recovery['workers']} workers): "
          f"healthy {recovery['healthy_wall_s']:.3f}s  "
          f"faulty {recovery['faulty_wall_s']:.3f}s  "
          f"overhead {recovery['recovery_overhead_s']:.3f}s  "
          f"respawns {recovery['respawns']}")
    for run in report["endtoend"]:
        print(f"  e2e {run['benchmark']:13} {run['mode']:8} "
              f"wall {run['wall_s']:7.3f}s  reuse {run['reuse_percent']:6.2f}%  "
              f"checksum {run['output_checksum']}")
    backend = report.get("process_backend", {})
    for row in backend.get("rows", []):
        limited = (
            f" (hardware-limited: {backend.get('cpu_count')} CPU(s) "
            f"< {backend.get('workers')} workers)"
            if backend.get("hardware_limited") else ""
        )
        print(f"  backend {row['benchmark']:13} serial {row['serial_s']:6.3f}s  "
              f"threaded{row['workers']} {row['threaded_s']:6.3f}s  "
              f"process{row['workers']} {row['process_s']:6.3f}s  "
              f"network{row['workers']} {row['network_s']:6.3f}s  "
              f"p/t speedup {row['speedup_process_vs_threaded']:.2f}x  "
              f"net disp {row['net_dispatch_overhead_ms_per_task']:.3f}ms/task"
              f"{limited}")

    residency = report.get("net_residency", {})
    for row in residency.get("rows", []):
        flag = "on " if row["residency"] else "off"
        print(f"  net-residency {row['transport']:8} {flag} "
              f"wall {row['wall_s']:7.3f}s  "
              f"disp {row['net_dispatch_overhead_ms_per_task']:7.3f}ms/task  "
              f"payload {row['payload_bytes'] / 1e6:8.2f}MB  "
              f"hits {row['residency_hits']:4}  "
              f"{'OK' if row['checksum_matches_serial'] else 'CHECKSUM MISMATCH'}")
    if residency:
        tcp_note = "" if residency.get("tcp") else (
            " (tcp rows skipped: hardware-limited host)"
        )
        print(f"  net-residency improvement: "
              f"{residency['improvement_dispatch_overhead']}x dispatch overhead "
              f"(threshold "
              f"{report['checks']['thresholds']['net_residency_improvement']}x), "
              f"{residency['payload_reduction']}x payload{tcp_note}")

    serving = report.get("serving", {})
    if serving:
        throughput = serving["throughput"]
        fairness = serving["fairness"]
        overhead = serving["overhead"]
        print(f"  serving gateway ({serving['executor']}x{serving['workers']}, "
              f"pending {serving['max_pending']}, quantum {serving['quantum']}): "
              f"{throughput['gateway_tasks_per_sec']:.1f} tasks/s  "
              f"p50 {throughput['latency_p50_s'] * 1e3:.2f}ms  "
              f"p99 {throughput['latency_p99_s'] * 1e3:.2f}ms")
        print(f"  serving fairness @ {fairness['backlog_ratio']}:1 backlog: "
              f"ratio {fairness['fairness_ratio']} "
              f"(light {fairness['light_completed']} vs heavy "
              f"{fairness['heavy_completed_at_light_finish']}, threshold "
              f"{report['checks']['thresholds']['serving_fairness_ratio']})")
        print(f"  serving overhead vs local Session: "
              f"{overhead['gateway_overhead_ratio']}x "
              f"(gateway {overhead['gateway_wall_s']:.3f}s, "
              f"session {overhead['session_wall_s']:.3f}s; recorded, not gated)")

    tht_warm = report.get("tht_warm", {})
    for row in tht_warm.get("rows", []):
        print(f"  tht-store {row['benchmark']:13} {row['store']:4} "
              f"{row['phase']:4} wall {row['wall_s']:7.3f}s  "
              f"hits {row['tht_hits']:5}/{row['tht_hits'] + row['tht_misses']:5} "
              f"({row['tht_hit_rate_percent']:6.2f}%)  "
              f"reuse {row['reuse_percent']:6.2f}%  "
              f"{'OK' if row['checksum_matches_serial'] else 'CHECKSUM MISMATCH'}")
    if tht_warm:
        print(f"  tht-store warm hit rate: {tht_warm['warm_hit_rate_percent']}% "
              f"(threshold "
              f"{report['checks']['thresholds']['tht_warm_hit_rate_percent']}%; "
              f"cold max {tht_warm['cold_hit_rate_percent']}%), "
              f"checksums "
              f"{'bit-identical' if tht_warm['checksums_identical'] else 'DIVERGED'}")

    failures = check_report(report)
    baseline_path = (
        Path(args.baseline) if args.baseline
        else REPO_ROOT / f"BENCH_{args.bench_id - 1}.json"
    )
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        baseline_failures = compare_to_baseline(report, baseline)
        failures += baseline_failures
        print(f"  baseline gate vs {baseline_path.name}: "
              f"{'FAILED' if baseline_failures else 'checksums + throughput held'}")
    if failures:
        for failure in failures:
            print(f"bench: FAIL {failure}", file=sys.stderr)
        return 1
    print("bench: all perf thresholds met")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
