#!/usr/bin/env python
"""Standalone worker daemon for the network execution backend.

Serves the wire protocol of :mod:`repro.runtime.net_wire` over TCP: every
accepted connection gets its own service thread running the *same*
:func:`repro.runtime.net_transport.serve_connection` loop the loopback
transport runs in-process, with per-connection ATM engine replicas built
from the executor's hello message.

Usage::

    python scripts/net_worker.py --host 127.0.0.1 --port 9101
    python scripts/net_worker.py --port 0 --announce   # ephemeral port, printed

then point a session at it from config alone (DESIGN.md §6)::

    REPRO_RUNTIME_EXECUTOR=network \
    REPRO_RUNTIME_NET_ENDPOINTS=127.0.0.1:9101 python my_program.py

Task functions are pickled *by reference*: the modules defining them must be
importable on this daemon's PYTHONPATH, exactly like the process backend's
spawn start method.

SIGTERM/SIGINT trigger a graceful shutdown: the listener stops accepting,
connections in the middle of serving a chunk get a grace period to finish
(their ATM deltas are pulled by the parent's final ``sync`` before it closes
the connection), then the sockets are closed.
"""

from __future__ import annotations

import argparse
import signal
import socketserver
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.runtime.net_transport import serve_connection  # noqa: E402

#: Seconds a graceful shutdown waits for in-flight connections to drain.
SHUTDOWN_GRACE_S = 5.0


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        worker_id = getattr(self.server, "next_worker_id", 0)
        self.server.next_worker_id = worker_id + 1
        self.server.track_connection(+1)
        try:
            serve_connection(self.request, worker_id=worker_id)
        finally:
            self.server.track_connection(-1)


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    next_worker_id = 0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    def track_connection(self, delta: int) -> None:
        with self._inflight_lock:
            self._inflight += delta

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def shutdown_gracefully(self, grace_s: float = SHUTDOWN_GRACE_S) -> None:
        """Stop accepting, wait for live connections to drain, then close.

        Connection loops exit on their own when the parent executor sends
        ``shutdown`` (or drops the socket); this only bounds how long we
        wait for that to happen before closing the listener anyway.
        """
        self.shutdown()
        deadline = time.monotonic() + grace_s
        while self.inflight > 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        self.server_close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=9101,
                        help="bind port (0 = ephemeral, default 9101)")
    parser.add_argument("--announce", action="store_true",
                        help="print 'listening <host>:<port>' once bound "
                             "(for harnesses starting daemons on port 0)")
    args = parser.parse_args(argv)

    server = _Server((args.host, args.port), _Handler)
    host, port = server.server_address[:2]
    if args.announce:
        print(f"listening {host}:{port}", flush=True)

    closed = threading.Event()

    def request_shutdown(signum, frame):  # pragma: no cover - signal driven
        # serve_forever's own thread cannot call shutdown() (it would
        # deadlock on the serve loop); hand the teardown to a helper thread.
        def teardown() -> None:
            server.shutdown_gracefully()
            closed.set()

        threading.Thread(target=teardown, name="net-worker-shutdown").start()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)

    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        if not closed.is_set():
            server.shutdown_gracefully()
    return 0


def serve_in_thread(host: str = "127.0.0.1", port: int = 0):
    """Start a daemon in-process (tests/benchmarks); returns (server, addr).

    Call ``server.shutdown_gracefully()`` (or ``server.shutdown();
    server.server_close()``) to stop it.
    """
    server = _Server((host, port), _Handler)
    thread = threading.Thread(target=server.serve_forever, args=(0.2,), daemon=True)
    thread.start()
    bound_host, bound_port = server.server_address[:2]
    return server, f"{bound_host}:{bound_port}"


if __name__ == "__main__":
    raise SystemExit(main())
