#!/usr/bin/env python
"""Serving-gateway daemon: the multi-tenant front door (DESIGN.md §8).

Binds a :class:`repro.serving.Gateway` and serves until SIGTERM/SIGINT,
then shuts down gracefully: new submissions are refused, admitted work gets
``serving.shutdown_grace_s`` seconds to finish, shared-tier ATM deltas are
flushed, and the pool is closed.

Usage::

    python scripts/gateway.py --config gateway.toml
    python scripts/gateway.py --executor threaded --cores 4 --port 0 --announce

Configuration precedence: ``--config`` file, then ``REPRO_*`` environment
variables, then the explicit flags below.  Task functions are pickled by
reference, so the modules defining them must be importable on this daemon's
PYTHONPATH (same rule as ``scripts/net_worker.py``).
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.serving import Gateway  # noqa: E402
from repro.session.config import ReproConfig  # noqa: E402


def build_config(args: argparse.Namespace) -> ReproConfig:
    cfg = ReproConfig.from_file(args.config) if args.config else ReproConfig()
    cfg = ReproConfig.from_env(base=cfg)
    runtime: dict = {}
    serving: dict = {}
    atm: dict = {}
    if args.executor:
        runtime["executor"] = args.executor
    if args.cores is not None:
        runtime["num_threads"] = args.cores
    if args.host:
        serving["host"] = args.host
    if args.port is not None:
        serving["port"] = args.port
    if args.shared_tht:
        serving["shared_tht"] = True
    if args.atm:
        atm["mode"] = args.atm
    return cfg.with_overrides(runtime=runtime, serving=serving, atm=atm)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--config", help="TOML/JSON ReproConfig file")
    parser.add_argument("--host", default=None, help="bind address")
    parser.add_argument("--port", type=int, default=None,
                        help="bind port (0 = ephemeral)")
    parser.add_argument("--executor", default=None,
                        help="pool backend (serial/threaded/process/network)")
    parser.add_argument("--cores", type=int, default=None,
                        help="pool worker count")
    parser.add_argument("--atm", default=None,
                        help="default tenant ATM mode (none/static/dynamic/fixed_p)")
    parser.add_argument("--shared-tht", action="store_true",
                        help="enable the opt-in shared THT tier")
    parser.add_argument("--announce", action="store_true",
                        help="print 'listening <host>:<port>' once bound")
    args = parser.parse_args(argv)

    gateway = Gateway(build_config(args))
    port = gateway.start()
    if args.announce:
        print(f"listening {gateway.serving.host}:{port}", flush=True)

    stopped = threading.Event()

    def request_shutdown(signum, frame):  # pragma: no cover - signal driven
        # stop() joins the service threads; run it off the signal frame so
        # a second signal can still force-exit the interpreter.
        def teardown() -> None:
            gateway.stop()
            stopped.set()

        threading.Thread(target=teardown, name="gateway-shutdown").start()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)

    stopped.wait()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
