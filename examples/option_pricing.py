#!/usr/bin/env python3
"""Option pricing with ATM: the paper's Blackscholes scenario.

Runs the Blackscholes benchmark application (a portfolio of European options
priced block by block) under three configurations on the simulated 8-core
machine:

* no ATM (baseline),
* Static ATM (exact memoization, paper Section III-A),
* Dynamic ATM (approximate memoization with automatic selection of the
  input-sampling fraction ``p``, paper Section III-D),

and reports speedup, reuse and final correctness — a miniature of the
paper's Figure 3 / Figure 4 columns for Blackscholes.  Each
:class:`ExperimentSpec` lowers to a :class:`repro.session.ReproConfig`
(``spec.to_config()``) and runs inside a :class:`repro.session.Session`.

Run with ``python examples/option_pricing.py [tiny|small]``.
"""

from __future__ import annotations

import sys

from repro.evaluation.runner import ExperimentSpec, run_benchmark, run_reference


def main(scale: str = "tiny") -> None:
    print(f"Blackscholes option pricing (scale={scale}, 8 simulated cores)")
    reference_output, baseline_elapsed = run_reference("blackscholes", scale=scale, cores=8)
    # The flat spec and the Session config tree are two views of one run:
    spec = ExperimentSpec(benchmark="blackscholes", scale=scale, mode="static", cores=8)
    cfg = spec.to_config()
    print(f"  session config         : executor={cfg.runtime.executor}, "
          f"cores={cfg.runtime.num_threads}, atm.mode={cfg.atm.mode}")
    print(f"  baseline simulated time: {baseline_elapsed:.0f} us")
    print()
    print(f"  {'configuration':<14} {'speedup':>8} {'reuse %':>8} {'correctness %':>14} {'chosen p %':>11}")
    for mode in ("static", "dynamic"):
        result = run_benchmark(
            ExperimentSpec(benchmark="blackscholes", scale=scale, mode=mode, cores=8)
        )
        chosen = f"{100 * result.chosen_p:.4g}" if result.chosen_p else "-"
        print(
            f"  {mode:<14} {result.speedup:>8.2f} {result.memoized_type_reuse_percent:>8.1f} "
            f"{result.correctness:>14.2f} {chosen:>11}"
        )
    print()
    print("Static ATM never loses accuracy; Dynamic ATM additionally drops the")
    print("hash-key computation cost by sampling a tiny, MSB-first subset of the")
    print("option parameters, which is why the paper reports 5.5x vs 8.8x.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
