#!/usr/bin/env python3
"""Dynamic ATM in action: automatic approximation of k-means.

Kmeans is the paper's showcase for *approximate* task memoization: the
cluster centers keep changing in their least-significant bits even after the
assignment has converged, so exact memoization never fires — but sampling
only the most significant bytes of the task inputs makes the redundant
distance computations visible.

The example runs Kmeans under Static ATM and Dynamic ATM, prints the
training decisions (how often the sampling fraction ``p`` was doubled, which
``p`` was frozen for the steady state), and compares reuse, speedup and
accuracy — a miniature of the paper's Figures 3-5 for Kmeans.  Both runs are
assembled by :class:`repro.session.Session` from the spec's declarative
:class:`~repro.session.ReproConfig` (``ExperimentSpec.to_config()``).

Run with ``python examples/adaptive_approximation.py [tiny|small]``.
"""

from __future__ import annotations

from repro.evaluation.runner import ExperimentSpec, run_benchmark, run_reference


def describe(result, label: str) -> None:
    chosen = f"{100 * result.chosen_p:.4g} %" if result.chosen_p else "n/a"
    print(f"  {label}")
    print(f"    speedup          : {result.speedup:.2f}x")
    print(f"    reuse            : {result.memoized_type_reuse_percent:.1f} % of distance tasks")
    print(f"    correctness      : {result.correctness:.2f} %")
    print(f"    steady-state p   : {chosen}")
    stats = result.atm_stats
    print(
        f"    lookups          : {stats['tht_hits']} THT hits, {stats['ikt_hits']} IKT hits, "
        f"{stats['misses']} misses, {stats['training_hits']} training executions"
    )
    print()


def main(scale: str = "small") -> None:
    print(f"Kmeans clustering with approximate task memoization (scale={scale}, 8 simulated cores)")
    run_reference("kmeans", scale=scale, cores=8)

    static = run_benchmark(ExperimentSpec(benchmark="kmeans", scale=scale, mode="static", cores=8))
    dynamic = run_benchmark(ExperimentSpec(benchmark="kmeans", scale=scale, mode="dynamic", cores=8))

    describe(static, "Static ATM (exact memoization, p = 100 %)")
    describe(dynamic, "Dynamic ATM (adaptive approximation, tau_max = 20 %)")

    print("Exact memoization finds nothing to reuse because the centers never")
    print("repeat bit-for-bit; the adaptive algorithm settles on a tiny MSB-first")
    print("sampling fraction and recovers the redundancy while keeping the final")
    print("centers within the accuracy budget — the paper's 0.9x vs 3.6x result.")


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
