#!/usr/bin/env python3
"""Heat diffusion with task memoization (Gauss-Seidel stencil).

The Gauss-Seidel benchmark divides a room into blocks; the walls emit heat
and every sweep updates each block from its neighbours' halo rows/columns
(obtained through copy tasks, exactly like the paper's kernel).  Blocks far
from the walls receive bit-identical inputs sweep after sweep — redundancy
that ATM turns into skipped executions.

The example runs the solver with Static ATM on the simulator, prints the
reuse found per task type, and renders a coarse ASCII execution trace in the
style of the paper's Figure 7.  The :class:`ExperimentSpec` is a thin view
over the Session API's :class:`~repro.session.ReproConfig`; every run below
is assembled and executed by :class:`repro.session.Session`.

Run with ``python examples/heat_diffusion.py``.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.runner import ExperimentSpec, run_benchmark, run_reference
from repro.runtime.trace import render_ascii_trace


def main() -> None:
    scale = "tiny"
    print("2-D Gauss-Seidel heat diffusion with Static ATM (8 simulated cores)")
    _, baseline_elapsed = run_reference("gauss-seidel", scale=scale, cores=8)
    result = run_benchmark(
        ExperimentSpec(
            benchmark="gauss-seidel", scale=scale, mode="static", cores=8,
            enable_tracing=True,
        )
    )
    print(f"  baseline simulated time : {baseline_elapsed:.0f} us")
    print(f"  with ATM                : {result.elapsed:.0f} us  ({result.speedup:.2f}x)")
    print(f"  final correctness       : {result.correctness:.2f} %")
    print()
    print("  per-task-type outcome:")
    for name, counters in result.atm_stats["per_type"].items():
        print(
            f"    {name:<22} seen={counters['seen']:5d}  THT hits={counters['tht_hits']:5d}  "
            f"IKT hits={counters['ikt_hits']:4d}  misses={counters['misses']:5d}"
        )
    print()
    matrix = result.output.reshape(-1)
    print(f"  temperature range in the room: {matrix.min():.2f} .. {matrix.max():.2f}")
    print()
    print("Execution trace (T=task, H=hash, M=memoization copy, .=idle):")
    print(render_ascii_trace(result.trace, width=96))


if __name__ == "__main__":
    main()
