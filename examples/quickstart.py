#!/usr/bin/env python3
"""Quickstart: memoize your own tasks with ATM.

This example builds a tiny task-parallel program with the public API:

1. declare a task type and mark it memoizable;
2. submit tasks with ``In``/``Out`` data annotations (the Python analogue of
   OmpSs pragma clauses);
3. run it once without ATM and once with Static ATM on the discrete-event
   multicore simulator;
4. print the reuse the Task History Table found and the resulting speedup.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import ATMConfig, ATMEngine, RuntimeConfig, StaticATMPolicy, TaskRuntime
from repro.common.config import SimulationConfig
from repro.runtime import In, Out, SimulatedExecutor
from repro.runtime.task import TaskType

# One annotated function = one task type.  `memoizable=True` is the opt-in
# the paper requires from the programmer (Section III-E).
matvec_type = TaskType(
    "matvec",
    memoizable=True,
    cost_model=lambda task: 0.01 * task.input_bytes,  # simulated us
)


def matvec(matrix: np.ndarray, vector: np.ndarray, result: np.ndarray) -> None:
    """The task body: an ordinary function over NumPy arrays."""
    result[:] = matrix @ vector


def build_program(runtime: TaskRuntime, matrices, vectors, results) -> None:
    """Submit one task per (matrix, vector) pair.

    The workload is intentionally redundant: many pairs are identical, which
    is exactly the situation ATM exploits.
    """
    for matrix, vector, result in zip(matrices, vectors, results):
        runtime.submit(
            matvec_type,
            matvec,
            accesses=[In(matrix), In(vector), Out(result)],
            args=(matrix, vector, result),
        )
    runtime.finish()


def make_workload(n_tasks: int = 64, n_unique: int = 8, size: int = 128):
    rng = np.random.default_rng(0)
    unique_matrices = [rng.standard_normal((size, size)) for _ in range(n_unique)]
    unique_vectors = [rng.standard_normal(size) for _ in range(n_unique)]
    matrices = [unique_matrices[i % n_unique] for i in range(n_tasks)]
    vectors = [unique_vectors[i % n_unique] for i in range(n_tasks)]
    results = [np.zeros(size) for _ in range(n_tasks)]
    return matrices, vectors, results


def run(with_atm: bool) -> tuple[float, list[np.ndarray], ATMEngine | None]:
    matrices, vectors, results = make_workload()
    engine = None
    if with_atm:
        config = ATMConfig()
        engine = ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=8)
    executor = SimulatedExecutor(
        config=RuntimeConfig(num_threads=8), engine=engine, sim_config=SimulationConfig()
    )
    runtime = TaskRuntime(executor=executor)
    build_program(runtime, matrices, vectors, results)
    return runtime.result.elapsed, results, engine


def main() -> None:
    baseline_time, baseline_results, _ = run(with_atm=False)
    atm_time, atm_results, engine = run(with_atm=True)

    assert all(np.allclose(a, b) for a, b in zip(baseline_results, atm_results)), \
        "Static ATM must never change results"

    stats = engine.stats.snapshot()
    print("Quickstart: task memoization with ATM")
    print(f"  simulated time without ATM : {baseline_time:10.1f} us")
    print(f"  simulated time with ATM    : {atm_time:10.1f} us")
    print(f"  speedup                    : {baseline_time / atm_time:10.2f}x")
    print(f"  tasks seen                 : {stats['tasks_seen']:10d}")
    print(f"  THT hits                   : {stats['tht_hits']:10d}")
    print(f"  IKT (in-flight) hits       : {stats['ikt_hits']:10d}")
    print(f"  reuse                      : {engine.stats.reuse_percentage():10.1f} %")
    print("  results identical to the non-memoized run: yes")


if __name__ == "__main__":
    main()
