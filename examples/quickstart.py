#!/usr/bin/env python3
"""Quickstart: memoize your own tasks with ATM through the Session API.

This example builds a tiny task-parallel program with the public API:

1. open a :class:`repro.session.Session` from a declarative
   :class:`repro.session.ReproConfig` (backend and ATM policy are selected
   by registry name — no engine/executor wiring);
2. declare a task type with ``@s.task`` and ``In``/``Out`` parameter
   annotations (the Python analogue of OmpSs pragma clauses);
3. run it once without ATM and once with Static ATM on the discrete-event
   multicore simulator;
4. print the reuse the Task History Table found and the resulting speedup.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro.session import In, Out, ReproConfig, Session

#: One declarative config tree describes the whole run; ``atm.mode`` is
#: swapped between "none" and "static" below.  The same tree could come from
#: a TOML/JSON file (ReproConfig.from_file); environment overrides are
#: layered on top below, so e.g.
#: ``REPRO_RUNTIME_EXECUTOR=network python examples/quickstart.py`` runs the
#: identical program on network loopback workers — backend selection is pure
#: configuration (DESIGN.md §6).
BASE_CONFIG = {
    "runtime": {"executor": "simulated", "num_threads": 8},
    "atm": {"mode": "none"},
}


# The task body lives at module level so it pickles by reference: the
# process/network backends ship functions by (module, qualname), not by
# value.  ``@s.task`` binds it to a concrete session inside run().
def matvec(matrix: In, vector: In, result: Out) -> None:
    result[:] = matrix @ vector


def make_workload(n_tasks: int = 64, n_unique: int = 8, size: int = 128):
    """An intentionally redundant workload: many identical (matrix, vector)
    pairs — exactly the situation ATM exploits."""
    rng = np.random.default_rng(0)
    unique_matrices = [rng.standard_normal((size, size)) for _ in range(n_unique)]
    unique_vectors = [rng.standard_normal(size) for _ in range(n_unique)]
    matrices = [unique_matrices[i % n_unique] for i in range(n_tasks)]
    vectors = [unique_vectors[i % n_unique] for i in range(n_tasks)]
    results = [np.zeros(size) for _ in range(n_tasks)]
    return matrices, vectors, results


def run(mode: str):
    """Run the program under one ATM mode; return (time, results, session)."""
    matrices, vectors, results = make_workload()
    # Environment variables override the base tree (REPRO_RUNTIME_EXECUTOR,
    # REPRO_RUNTIME_NET_ENDPOINTS, ...): any registered backend is reachable
    # without touching this file.  The mode comparison below stays in code.
    config = ReproConfig.from_env(
        base=ReproConfig.from_dict(BASE_CONFIG)
    ).with_overrides(atm={"mode": mode})
    with Session(config) as s:
        # One annotated function = one task type.  `memoizable=True` is the
        # opt-in the paper requires from the programmer (Section III-E); the
        # In/Out annotations replace a separate accesses lambda.
        submit_matvec = s.task(
            memoizable=True, cost_model=lambda task: 0.01 * task.input_bytes
        )(matvec)

        # Batched submission: every call inside the block is buffered and
        # handed to the dependence graph in one batch (one lock acquisition,
        # one ready-queue handoff) — the fast path for iterative apps that
        # submit a whole sweep at a time (PERFORMANCE.md "Submission fast
        # path").  Dependences and results are identical to per-call submits.
        with s.batch():
            for matrix, vector, result in zip(matrices, vectors, results):
                submit_matvec(matrix, vector, result)
    return s.result.elapsed, results, s


def main() -> None:
    baseline_time, baseline_results, baseline_session = run(mode="none")
    atm_time, atm_results, session = run(mode="static")

    assert all(np.allclose(a, b) for a, b in zip(baseline_results, atm_results)), \
        "Static ATM must never change results"

    stats = session.stats
    unit = baseline_session.result.time_unit  # "us" simulated, "s" wall-clock
    print("Quickstart: task memoization with ATM")
    print(f"  backend                    : {session.config.runtime.executor}")
    print(f"  time without ATM           : {baseline_time:10.4g} {unit}")
    print(f"  time with ATM              : {atm_time:10.4g} {unit}")
    print(f"  speedup                    : {baseline_time / atm_time:10.2f}x")
    print(f"  tasks seen                 : {stats['tasks_seen']:10d}")
    print(f"  THT hits                   : {stats['tht_hits']:10d}")
    print(f"  IKT (in-flight) hits       : {stats['ikt_hits']:10d}")
    print(f"  reuse                      : {session.engine.stats.reuse_percentage():10.1f} %")
    print("  results identical to the non-memoized run: yes")


if __name__ == "__main__":
    main()
