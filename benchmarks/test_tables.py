"""Benchmarks regenerating Tables I, II and III of the paper."""

from __future__ import annotations

from repro.apps.registry import PAPER_PARAMETERS
from repro.evaluation import tables

from conftest import BENCH_SCALE, run_once


def test_table1_benchmark_description(benchmark):
    """Table I: benchmark description (task-input bytes, #tasks, task types)."""
    rows = run_once(benchmark, tables.compute_table1, scale=BENCH_SCALE)
    assert len(rows) == 6
    benchmark.extra_info["report"] = tables.report_table1(rows)
    for row in rows:
        assert row.task_input_bytes > 0
        assert row.number_of_tasks > 0


def test_table2_dynamic_atm_parameters(benchmark):
    """Table II: L_training and tau_max must match the paper exactly."""
    rows = run_once(benchmark, tables.compute_table2)
    benchmark.extra_info["report"] = tables.report_table2(rows)
    for row in rows:
        assert row.l_training == row.paper_l_training
        assert abs(row.tau_max_percent - row.paper_tau_max_percent) < 1e-9


def test_table3_memory_overhead(benchmark):
    """Table III: ATM memory overhead stays in the same order of magnitude as
    the paper's 3.7 %-21.2 % range (the exact value depends on workload
    scale)."""
    rows = run_once(benchmark, tables.compute_table3, scale=BENCH_SCALE)
    benchmark.extra_info["report"] = tables.report_table3(rows)
    for row in rows:
        assert 0.0 < row.memory_overhead_percent < 400.0
    average = sum(r.memory_overhead_percent for r in rows) / len(rows)
    paper_average = sum(p.memory_overhead_percent for p in PAPER_PARAMETERS.values()) / 6
    benchmark.extra_info["average_overhead_percent"] = average
    benchmark.extra_info["paper_average_overhead_percent"] = paper_average
