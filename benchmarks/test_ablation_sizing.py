"""Benchmark regenerating the ATM sizing discussion of Section IV-B."""

from __future__ import annotations

from repro.evaluation import ablation_sizing

from conftest import BENCH_CORES, BENCH_SCALE, run_once


def test_tht_bucket_bits_ablation(benchmark):
    """More buckets never hurt; N = 8 is enough (paper Section IV-B)."""
    points = run_once(
        benchmark,
        ablation_sizing.compute_bucket_bits_sweep,
        benchmark="blackscholes",
        scale=BENCH_SCALE,
        cores=BENCH_CORES,
        bits_values=(0, 4, 8),
    )
    benchmark.extra_info["report"] = ablation_sizing.report(points, "blackscholes")
    by_bits = {p.value: p for p in points}
    assert by_bits[8].reuse_percent >= by_bits[0].reuse_percent - 1e-9
    assert by_bits[8].speedup > 0


def test_tht_capacity_ablation(benchmark):
    """Kmeans needs a deep THT (M = 128) to hold one entry per point block."""
    points = run_once(
        benchmark,
        ablation_sizing.compute_capacity_sweep,
        benchmark="kmeans",
        scale=BENCH_SCALE,
        cores=BENCH_CORES,
        capacities=(4, 16, 128),
    )
    benchmark.extra_info["report"] = ablation_sizing.report(points, "kmeans")
    by_capacity = {p.value: p for p in points}
    assert by_capacity[128].reuse_percent >= by_capacity[4].reuse_percent - 1e-9
