"""Perf harness smoke: microbenchmarks run, report assembles, gates hold.

Wall-clock speedup assertions here are deliberately looser than the
``scripts/bench.py`` thresholds (3x) so CI jitter cannot fail the suite; the
deterministic metrics (shuffle memory reduction, report structure, output
checksums present) are asserted tightly.  Full-strength numbers live in
``BENCH_<n>.json`` produced by ``make bench``.
"""

from __future__ import annotations

from repro.perf.micro import (
    bench_dependences,
    bench_keygen,
    bench_simulator_drain,
    bench_submission,
    bench_tht_probe,
)
from repro.perf.report import THRESHOLDS, build_report, check_report


class TestMicrobenchmarks:
    def test_keygen_speedup_and_memory(self):
        # Full input scale, few rounds: small inputs are Python-overhead
        # bound and would make the speedup floor unrepresentative.
        result = bench_keygen(scale=1.0, rounds=8)
        assert {c["name"] for c in result["cases"]} >= {
            "multi_input_cold_p0.001",
            "multi_input_iterative_unchanged",
            "multi_input_one_mutating",
        }
        # Deterministic: truncated uint32 prefixes vs full int64 permutations.
        assert result["shuffle_memory"]["reduction"] >= THRESHOLDS["shuffle_memory_reduction"]
        # Lenient wall-clock floor (the bench gate enforces 3x).
        assert result["headline_speedup"] >= 1.5

    def test_tht_probe(self):
        result = bench_tht_probe(entries=256, rounds=500)
        assert result["hit_us"] > 0 and result["miss_us"] > 0

    def test_dependences(self):
        result = bench_dependences(tasks=100)
        assert result["tasks_per_sec"] > 0

    def test_submission(self):
        result = bench_submission(tasks=100, batch=16)
        shapes = {(c["shape"], c["batch"]) for c in result["cases"]}
        assert {("wide", 1), ("wide", 16), ("chain", 1), ("chain", 16),
                ("stencil", 1), ("stencil", 16),
                ("session_per_call", 1), ("session_batch", 16),
                ("session_submit_batch", 16)} <= shapes
        assert all(c["tasks_per_sec"] > 0 for c in result["cases"])
        assert set(result["batch_speedup"]) == {"wide", "chain", "stencil"}

    def test_simulator_drain(self):
        result = bench_simulator_drain(tasks=60)
        assert result["events_per_sec"] > 0


class TestReport:
    def test_quick_report_builds_and_passes(self):
        report = build_report(bench_id=0, quick=True)
        assert report["schema_version"] == 8
        assert report["micro"]["submission"]["cases"]
        assert report["micro"]["keygen"]["cases"]
        # Schema 5: the fault-recovery micro (kill + respawn mid-drain).
        recovery = report["micro"]["fault_recovery"]
        assert recovery["respawns"] >= 1
        assert recovery["healthy_wall_s"] > 0
        assert recovery["faulty_wall_s"] > 0
        # Schema 6: the stale-bytes residency suite, gated on dispatch overhead.
        residency = report["net_residency"]
        assert residency["rows"], "net-residency rows missing"
        for row in residency["rows"]:
            assert row["checksum_matches_serial"], row
        assert residency["improvement_dispatch_overhead"] > 0
        # Schema 7: the multi-tenant serving suite, gated on admission fairness.
        serving = report["serving"]
        assert serving["throughput"]["gateway_tasks_per_sec"] > 0
        assert serving["fairness"]["fairness_ratio"] > 0
        assert serving["overhead"]["gateway_overhead_ratio"] > 0
        # Schema 8: the persistent-store suite, gated on warm hit rate.
        tht_warm = report["tht_warm"]
        assert tht_warm["rows"], "tht-warm rows missing"
        for row in tht_warm["rows"]:
            assert row["checksum_matches_serial"], row
        assert tht_warm["warm_hit_rate_percent"] >= 50.0
        assert tht_warm["checksums_identical"]
        assert len(report["endtoend"]) == 6
        backend = report["process_backend"]
        assert backend["rows"], "process-backend comparison rows missing"
        for row in backend["rows"]:
            assert row["checksums_match"], row
            assert row["speedup_process_vs_threaded"] > 0
            # Schema 4: the network (loopback) backend rides the same rows.
            assert row["network_s"] > 0
        for run in report["endtoend"]:
            assert len(run["output_checksum"]) == 16
        # ATM-off runs must never pay key-cache costs.
        for run in report["endtoend"]:
            if run["mode"] == "none":
                assert run["key_cache_hits"] == 0
        assert check_report(report) == [], check_report(report)
