"""Micro-benchmarks of the ATM building blocks.

These are not figures from the paper; they measure the cost of the hashing,
key-generation and table operations that the paper's overhead analysis
discusses (Sections III-B and IV-B), and they use pytest-benchmark's normal
multi-round timing because each operation is cheap.
"""

from __future__ import annotations

import numpy as np

from repro.atm.engine import ATMEngine
from repro.atm.keygen import HashKeyGenerator
from repro.atm.policy import StaticATMPolicy
from repro.atm.tht import TaskHistoryTable
from repro.common.config import ATMConfig
from repro.common.hashing import hash_bytes, jenkins_lookup3
from repro.runtime.data import In, Out
from repro.runtime.task import Task, TaskType

MEMO_TYPE = TaskType("micro", memoizable=True)


def _task(src, dst):
    return Task(task_type=MEMO_TYPE, function=lambda: dst.__setitem__(slice(None), src),
                accesses=[In(src), Out(dst)], task_id=0)


def test_hash_bytes_4mb_throughput(benchmark):
    """Vectorised hashing of a paper-sized (4 MB) task input."""
    data = np.random.default_rng(0).integers(0, 255, 4 << 20, dtype=np.uint8)
    benchmark(hash_bytes, data)


def test_jenkins_lookup3_small_input(benchmark):
    """Exact lookup3 on a 376-byte swaption-sized record."""
    data = bytes(range(256)) + bytes(120)
    benchmark(jenkins_lookup3, data)


def test_keygen_full_precision(benchmark):
    """Hash-key generation at p = 100 % over a 256 KiB input."""
    generator = HashKeyGenerator(ATMConfig())
    src = np.random.default_rng(1).standard_normal(32768)
    task = _task(src, np.zeros_like(src))
    benchmark(generator.compute, task, 1.0)


def test_keygen_sampled(benchmark):
    """Hash-key generation at p = 0.1 % (the Dynamic-ATM regime)."""
    generator = HashKeyGenerator(ATMConfig())
    src = np.random.default_rng(1).standard_normal(32768)
    task = _task(src, np.zeros_like(src))
    generator.compute(task, 0.001)  # warm the cached shuffle
    benchmark(generator.compute, task, 0.001)


def test_tht_lookup_hit(benchmark):
    """One THT probe that hits (lock + key compare)."""
    config = ATMConfig()
    tht = TaskHistoryTable(config)
    generator = HashKeyGenerator(config)
    src = np.arange(1024.0)
    task = _task(src, np.zeros(1024))
    key = generator.compute(task, 1.0)
    tht.insert(key, MEMO_TYPE.name, [np.zeros(1024)], producer_index=0)
    benchmark(tht.lookup, key, MEMO_TYPE.name)


def test_engine_memoization_hit_path(benchmark):
    """Full engine hit: hash + THT probe + output copy (the paper's 10x-cheaper path)."""
    config = ATMConfig()
    engine = ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=1)
    src = np.arange(8192.0)
    first = _task(src, np.zeros(8192))
    decision = engine.task_ready(first)
    first.run()
    engine.task_finished(first, decision, executed=True)

    def hit():
        consumer = _task(src, np.zeros(8192))
        return engine.task_ready(consumer)

    result = benchmark(hit)
    assert result.action.value == "skip"


def test_engine_miss_and_commit_path(benchmark):
    """Full engine miss: hash + probe + execution + THT commit."""
    config = ATMConfig()
    engine = ATMEngine(config=config, policy=StaticATMPolicy(config), num_threads=1)
    rng = np.random.default_rng(2)

    def miss():
        src = rng.standard_normal(8192)
        task = _task(src, np.zeros(8192))
        decision = engine.task_ready(task)
        task.run()
        engine.task_finished(task, decision, executed=True)

    benchmark(miss)
