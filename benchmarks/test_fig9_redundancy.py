"""Benchmark regenerating Figure 9: where the redundancy is generated."""

from __future__ import annotations

from repro.evaluation import fig9_redundancy

from conftest import BENCH_CORES, BENCH_SCALE, run_once

BENCHMARKS = ("blackscholes", "gauss-seidel", "kmeans", "swaptions")


def test_fig9_redundancy_generation(benchmark):
    curves = run_once(
        benchmark,
        fig9_redundancy.compute,
        scale=BENCH_SCALE,
        cores=BENCH_CORES,
        benchmarks=BENCHMARKS,
        mode="dynamic",
    )
    benchmark.extra_info["report"] = fig9_redundancy.report(curves)
    by_name = {curve.benchmark: curve for curve in curves}

    # Every benchmark generates some reuse under Dynamic ATM at this scale.
    for name in ("blackscholes", "gauss-seidel"):
        assert by_name[name].total_reuse_events > 0, name

    # Blackscholes generates a substantial share of its redundancy in the
    # first part of the execution (paper: the first iteration's tasks feed
    # all later ones).  Dynamic-ATM training shifts some of it to the right
    # at reduced workload scales, so the threshold is conservative.
    blackscholes = by_name["blackscholes"]
    assert blackscholes.reuse_generated_before(0.6) > 0.2

    # The iterative stencil keeps generating redundancy throughout the run:
    # a visible fraction of its reuse is produced by the second half of the
    # task stream.
    stencil = by_name["gauss-seidel"]
    assert stencil.reuse_generated_before(0.5) < 0.98
