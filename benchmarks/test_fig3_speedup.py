"""Benchmark regenerating Figure 3: ATM speedups per benchmark + geomean.

The assertions check the *shape* of the paper's result rather than absolute
numbers (our substrate is a simulator, not the authors' Sandy Bridge):

* Dynamic ATM beats Static ATM on average (paper: 2.5x vs 1.4x geomean);
* Blackscholes is the biggest winner and benefits from approximation;
* Kmeans only profits from ATM when approximation is enabled;
* adding the IKT never hurts.
"""

from __future__ import annotations

from repro.evaluation import fig3_speedup
from repro.evaluation.runner import geometric_mean

from conftest import BENCH_CORES, BENCH_SCALE, run_once


def test_fig3_atm_speedups(benchmark):
    rows = run_once(
        benchmark,
        fig3_speedup.compute,
        scale=BENCH_SCALE,
        cores=BENCH_CORES,
        include_oracles=False,
    )
    benchmark.extra_info["report"] = fig3_speedup.report(rows)
    by_name = {row.benchmark: row for row in rows}

    static_geomean = geometric_mean([r.static_tht_ikt for r in rows])
    dynamic_geomean = geometric_mean([r.dynamic_tht_ikt for r in rows])
    benchmark.extra_info["static_geomean"] = static_geomean
    benchmark.extra_info["dynamic_geomean"] = dynamic_geomean

    # Who wins: exact memoization pays off on average, approximation more so
    # at the scales EXPERIMENTS.md records (at tiny scale dynamic training
    # overhead can dominate, so only the weaker ordering is asserted here).
    assert static_geomean > 0.9
    assert dynamic_geomean > 0.9

    # Blackscholes is the biggest static-ATM winner (paper: 5.5x).
    best_static = max(rows, key=lambda r: r.static_tht_ikt).benchmark
    assert best_static == "blackscholes"
    assert by_name["blackscholes"].static_tht_ikt > 2.0

    # Kmeans cannot exploit exact memoization (paper: ~0.9x).
    assert by_name["kmeans"].static_tht_ikt < 1.05

    # Swaptions barely profits from exact memoization (paper: 1.07x).
    assert 0.9 < by_name["swaptions"].static_tht_ikt < 1.5

    # The IKT never makes things worse (paper: +1.8 % Jacobi, +15 % LU).
    for row in rows:
        assert row.static_tht_ikt >= row.static_tht * 0.98


def test_fig3_oracle_speedups(benchmark):
    """Oracle (95 %) upper-bounds and approximation headroom (paper Fig. 3)."""
    from repro.evaluation.oracle import find_oracle

    def compute():
        results = {}
        for name in ("blackscholes", "gauss-seidel"):
            results[name] = find_oracle(
                name, min_correctness=95.0, scale=BENCH_SCALE, cores=BENCH_CORES
            )
        return results

    oracles = run_once(benchmark, compute)
    # The oracle's tiny sampling fraction removes the hash overhead, so it
    # must beat (or at least match) exact memoization for these benchmarks.
    for name, oracle in oracles.items():
        benchmark.extra_info[f"{name}_oracle_p"] = oracle.chosen_p
        benchmark.extra_info[f"{name}_oracle_speedup"] = oracle.speedup
        assert oracle.correctness >= 95.0
        assert oracle.speedup > 1.0
