"""Benchmark regenerating Figure 4: final correctness of Static/Dynamic ATM."""

from __future__ import annotations

from repro.evaluation import fig4_correctness

from conftest import BENCH_CORES, BENCH_SCALE, run_once


def test_fig4_correctness(benchmark):
    rows = run_once(
        benchmark,
        fig4_correctness.compute,
        scale=BENCH_SCALE,
        cores=BENCH_CORES,
        include_oracle=False,
    )
    benchmark.extra_info["report"] = fig4_correctness.report(rows)

    for row in rows:
        # Static ATM is exact memoization: always 100 % (LU's residual-based
        # metric sits epsilon below).
        assert row.static_correctness >= 99.99, row.benchmark
        # Dynamic ATM loses at most a few percent (paper: worst case 3.2 %,
        # average 0.7 %); allow extra headroom for the scaled-down inputs.
        assert row.dynamic_correctness >= 90.0, row.benchmark

    average_loss = 100.0 - sum(r.dynamic_correctness for r in rows) / len(rows)
    benchmark.extra_info["average_dynamic_loss_percent"] = average_loss
    assert average_loss < 5.0
