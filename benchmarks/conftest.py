"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
(``tiny``) workload scale so the whole suite completes in minutes; set
``REPRO_ATM_BENCH_SCALE=small`` (or ``paper``) to run the heavier versions
that EXPERIMENTS.md is based on.
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation.runner import clear_reference_cache

#: Workload scale used by the benchmark harness.
BENCH_SCALE = os.environ.get("REPRO_ATM_BENCH_SCALE", "tiny")

#: Core count used by the benchmark harness (the paper evaluates 8 cores).
BENCH_CORES = int(os.environ.get("REPRO_ATM_BENCH_CORES", "8"))


@pytest.fixture(scope="session", autouse=True)
def _fresh_reference_cache():
    clear_reference_cache()
    yield
    clear_reference_cache()


def run_once(bench_fixture, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic and relatively slow, so a single
    measured round is both sufficient and necessary to keep the harness
    usable.  (The first parameter is the pytest-benchmark fixture; it is not
    named ``benchmark`` so that callers can forward a ``benchmark=...``
    keyword to experiment functions that select a benchmark application.)
    """
    return bench_fixture.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
