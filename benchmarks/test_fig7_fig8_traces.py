"""Benchmarks regenerating the trace-based figures (7 and 8)."""

from __future__ import annotations

from repro.evaluation import fig7_trace, fig8_ready_tasks

from conftest import BENCH_CORES, BENCH_SCALE, run_once


def test_fig7_gauss_seidel_trace(benchmark):
    """Figure 7: ATM memory-bound states slow down as core count grows."""
    result = run_once(
        benchmark,
        fig7_trace.compute,
        benchmark="gauss-seidel",
        scale=BENCH_SCALE,
        cores_small=2,
        cores_large=BENCH_CORES,
    )
    benchmark.extra_info["report"] = fig7_trace.report(result)
    benchmark.extra_info["memoization_slowdown"] = result.memoization_slowdown
    # Both core counts actually performed memoization copies...
    assert result.mean_memo_small > 0.0
    assert result.mean_memo_large > 0.0
    # ...and the shared-memory contention makes them no faster (the paper
    # measures ~60 % slower) at the larger core count.
    assert result.memoization_slowdown >= 0.95
    assert result.hash_slowdown >= 0.95


def test_fig8_blackscholes_ready_tasks(benchmark):
    """Figure 8: with ATM the ready queue drains (creation-bound execution)."""
    result = run_once(
        benchmark,
        fig8_ready_tasks.compute,
        benchmark="blackscholes",
        scale=BENCH_SCALE,
        cores=BENCH_CORES,
    )
    benchmark.extra_info["report"] = fig8_ready_tasks.report(result)
    # ATM makes the run faster...
    assert result.speedup > 1.0
    # ...and keeps the ready queue emptier than the baseline, because worker
    # threads memoize tasks faster than the master can create them.
    assert result.with_atm_mean_ready <= result.without_atm_mean_ready + 1e-9
    assert result.with_atm_max_ready <= result.without_atm_max_ready
