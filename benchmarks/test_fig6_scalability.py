"""Benchmark regenerating Figure 6: Dynamic-ATM speedup over 1..8 cores."""

from __future__ import annotations

from repro.evaluation import fig6_scalability

from conftest import BENCH_SCALE, run_once

BENCHMARKS = ("blackscholes", "gauss-seidel", "kmeans")
CORE_COUNTS = (1, 2, 4, 8)


def test_fig6_scalability(benchmark):
    series = run_once(
        benchmark,
        fig6_scalability.compute,
        scale=BENCH_SCALE,
        core_counts=CORE_COUNTS,
        benchmarks=BENCHMARKS,
        include_oracle=False,
    )
    benchmark.extra_info["report"] = fig6_scalability.report(series)
    geomean = fig6_scalability.geomean_series(series)
    benchmark.extra_info["geomean_series"] = list(zip(geomean.cores, geomean.dynamic_speedup))

    for entry in series:
        assert len(entry.dynamic_speedup) == len(CORE_COUNTS)
        assert all(s > 0 for s in entry.dynamic_speedup)

    # The paper observes that the ATM advantage does not collapse as cores
    # grow (3.0x at 1 core vs 2.5x at 8 cores): the 8-core geomean advantage
    # stays within a factor ~2 of the single-core one.
    single_core = geomean.dynamic_speedup[0]
    eight_core = geomean.dynamic_speedup[-1]
    assert eight_core > 0.45 * single_core
