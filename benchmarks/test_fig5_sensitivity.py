"""Benchmark regenerating Figure 5: correctness vs fixed sampling fraction p."""

from __future__ import annotations

from repro.evaluation import fig5_sensitivity

from conftest import BENCH_CORES, BENCH_SCALE, run_once

#: A reduced ladder (the full 16-step sweep is available via the CLI).
LADDER = (2.0 ** -15, 2.0 ** -10, 2.0 ** -6, 2.0 ** -3, 0.5, 1.0)
BENCHMARKS = ("blackscholes", "gauss-seidel", "kmeans", "swaptions")


def test_fig5_correctness_vs_p(benchmark):
    curves = run_once(
        benchmark,
        fig5_sensitivity.compute,
        scale=BENCH_SCALE,
        cores=BENCH_CORES,
        benchmarks=BENCHMARKS,
        ladder=LADDER,
    )
    benchmark.extra_info["report"] = fig5_sensitivity.report(curves)

    for curve in curves:
        # The right-most point (p = 1) is Static ATM: always 100 % correct.
        assert curve.correctness_at(1.0) >= 99.99, curve.benchmark
        # Correctness never *improves* dramatically by sampling less: the
        # p=1 point is (close to) the maximum of the curve.
        assert max(curve.correctness) <= curve.correctness_at(1.0) + 1e-6

    # Shrinking p eventually degrades correctness for at least one benchmark
    # (the paper's curves all fall off on the left side of the plot).
    smallest_p = min(LADDER)
    degraded = [c for c in curves if c.correctness_at(smallest_p) < 99.0]
    assert degraded, "no benchmark degraded at the smallest sampling fraction"

    # Dynamic ATM's automatically chosen configuration stays accurate
    # (paper: every benchmark above 96.8 %).
    for curve in curves:
        if curve.dynamic_correctness is not None:
            assert curve.dynamic_correctness >= 90.0, curve.benchmark
