PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-check bench-quick figures ci

# Tier-1 verification: the full unit + integration suite.
test:
	$(PYTHON) -m pytest tests -x -q

# Perf trajectory: run the microbenchmark + end-to-end suite and write
# BENCH_<n>.json at the repo root (see PERFORMANCE.md for the schema).
bench:
	$(PYTHON) scripts/bench.py

# One-command gate for PRs: tier-1 tests + keygen-equivalence suite + perf
# thresholds; non-zero exit on any regression.
bench-check:
	$(PYTHON) scripts/bench.py --check

bench-quick:
	$(PYTHON) scripts/bench.py --quick

# Figure/table regeneration harness (pytest-benchmark based).
figures:
	$(PYTHON) -m pytest benchmarks -q

# Mirror of .github/workflows/ci.yml: tier-1 suite, then perf gates.
ci:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) scripts/bench.py --check
