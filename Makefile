PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-check bench-quick figures examples ci

# Tier-1 verification: the full unit + integration suite.
test:
	$(PYTHON) -m pytest tests -x -q

# Perf trajectory: run the microbenchmark + end-to-end suite and write
# BENCH_<n>.json at the repo root (see PERFORMANCE.md for the schema).
bench:
	$(PYTHON) scripts/bench.py

# One-command gate for PRs: tier-1 tests + keygen-equivalence suite + perf
# thresholds; non-zero exit on any regression.
bench-check:
	$(PYTHON) scripts/bench.py --check

bench-quick:
	$(PYTHON) scripts/bench.py --quick

# Figure/table regeneration harness (pytest-benchmark based).
figures:
	$(PYTHON) -m pytest benchmarks -q

# API-facing docs can't rot: run the doctests of the public API modules and
# execute all four examples serially at smoke scales.
examples:
	$(PYTHON) -m pytest --doctest-modules \
		src/repro/runtime/api.py src/repro/session -q
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/heat_diffusion.py
	$(PYTHON) examples/option_pricing.py tiny
	$(PYTHON) examples/adaptive_approximation.py tiny

# Mirror of .github/workflows/ci.yml: tier-1 suite, examples smoke, perf gates.
ci:
	$(PYTHON) -m pytest -x -q
	$(MAKE) examples
	$(PYTHON) scripts/bench.py --check
