PYTHON ?= python
export PYTHONPATH := $(CURDIR)/src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-check bench-quick figures examples net-loopback net-residency net-soak fault-matrix serve-smoke tht-store ci

# Tier-1 verification: the full unit + integration suite.
test:
	$(PYTHON) -m pytest tests -x -q

# Perf trajectory: run the microbenchmark + end-to-end suite and write
# BENCH_<n>.json at the repo root (see PERFORMANCE.md for the schema).
bench:
	$(PYTHON) scripts/bench.py

# One-command gate for PRs: tier-1 tests + keygen-equivalence suite + perf
# thresholds; non-zero exit on any regression.
bench-check:
	$(PYTHON) scripts/bench.py --check

bench-quick:
	$(PYTHON) scripts/bench.py --quick

# Figure/table regeneration harness (pytest-benchmark based).
figures:
	$(PYTHON) -m pytest benchmarks -q

# API-facing docs can't rot: run the doctests of the public API modules and
# execute all four examples serially at smoke scales.
examples:
	$(PYTHON) -m pytest --doctest-modules src/repro/session -q
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/heat_diffusion.py
	$(PYTHON) examples/option_pricing.py tiny
	$(PYTHON) examples/adaptive_approximation.py tiny

# Network backend: parity + fault-injection matrix over the loopback
# transport, cache-less and fail-fast (mirrors the CI step), and the soak
# tier (500-task churn with mid-drain worker loss, excluded from tier-1).
net-loopback:
	$(PYTHON) -m pytest tests/runtime/test_executor_parity.py \
		tests/runtime/test_net_faults.py \
		tests/runtime/test_net_wire_property.py -p no:cacheprovider -x -q

# Residency protocol tier: the hypothesis interleaving property + unit
# rules for the per-endpoint stale-bytes caches, the parity matrix (which
# runs the network backend residency-on and -off) and the failover
# scenarios that exercise residency invalidation.
net-residency:
	$(PYTHON) -m pytest tests/runtime/test_residency_property.py \
		tests/runtime/test_executor_parity.py \
		tests/runtime/test_net_faults.py -p no:cacheprovider -x -q

net-soak:
	$(PYTHON) -m pytest -m net_soak -q

# Supervision tier: the cross-backend fault-injection matrix (raising,
# flaky, wedged and worker-killing tasks against timeouts/retries/
# quarantine on every executor; excluded from tier-1 by the marker
# expression in pytest.ini because it sleeps and kills workers on purpose).
fault-matrix:
	$(PYTHON) -m pytest -m fault -q

# Serving tier: the gateway smoke (concurrent tenants bit-identical to a
# serial Session, ATM namespace isolation, shared-THT reuse) plus the
# multi-client soak tests excluded from tier-1 by the `serving` marker.
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py
	$(PYTHON) -m pytest -m serving -q

# Persistent THT tier: the store/shard unit + integration suite (file
# format, corruption handling, shard protocol, Session warm starts, the
# gateway's store-backed shared tier) plus the cold-vs-warm benchmark in
# quick mode — proves warm restores stay bit-identical end to end.
tht-store:
	$(PYTHON) -m pytest tests/atm/test_tht_store.py \
		tests/serving/test_gateway.py -x -q
	$(PYTHON) scripts/bench.py --quick --out /tmp/tht_store_bench.json

# Mirror of .github/workflows/ci.yml: tier-1 suite, examples smoke,
# network-loopback matrix + soak, serving smoke, perf gates.
ci:
	$(PYTHON) -m pytest -x -q
	$(MAKE) examples
	$(MAKE) net-loopback
	$(MAKE) net-residency
	$(MAKE) net-soak
	$(MAKE) serve-smoke
	$(MAKE) fault-matrix
	$(MAKE) tht-store
	$(PYTHON) scripts/bench.py --check
