"""Configuration objects for the runtime, the ATM engine and the simulator.

All knobs of the paper's Section III / IV live here so experiments can be
described declaratively:

* THT geometry (``2^N`` buckets of ``M`` entries, per-bucket locks);
* IKT sizing (one entry per thread);
* input-sampling percentage ``p`` and its training schedule
  (``p0 = 2^-15``, doubling, at most 15 steps, ``L_training`` successes);
* the per-task error threshold ``tau_max``;
* the simulated machine (cores, memoization copy bandwidth, hash bandwidth,
  task-creation throughput, memory-contention model).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.common.exceptions import ConfigurationError
from repro.common.registry import EXECUTORS, POLICIES, SCHEDULERS

__all__ = [
    "ATMConfig",
    "RuntimeConfig",
    "ServingConfig",
    "SimulationConfig",
    "MIN_P",
    "P_LADDER",
]

#: Smallest sampling fraction explored by Dynamic ATM: 2^-15 (paper III-D).
MIN_P: float = 2.0 ** -15

#: The 16-step ladder of sampling fractions 2^-15, 2^-14, ..., 2^-1, 1.0.
P_LADDER: tuple[float, ...] = tuple(2.0 ** exp for exp in range(-15, 1))


@dataclass
class ATMConfig:
    """Configuration of the ATM engine (Sections III-A to III-D).

    Attributes
    ----------
    mode:
        Operating policy name resolved through the policy registry
        (:data:`repro.common.registry.POLICIES`): ``"none"`` (no engine is
        installed), ``"static"``, ``"dynamic"``, ``"fixed_p"`` or any name a
        plugin registered.  The Session API builds the policy and the engine
        from this field; the engine itself never reads it.
    tht_bucket_bits:
        ``N``: the THT has ``2^N`` buckets.  The paper uses ``N = 8``.
    tht_bucket_capacity:
        ``M``: entries per bucket, FIFO-evicted.  The paper uses ``M = 16``
        for most benchmarks and ``M = 128`` for Kmeans (and for all reported
        experiments).
    use_ikt:
        Whether the In-flight Key Table is enabled.
    p:
        Input-byte sampling fraction used by Static ATM / fixed-p policies.
    tau_max:
        Per-task Chebyshev error threshold for Dynamic ATM training.
    l_training:
        Number of correctly approximated tasks required before Dynamic ATM
        freezes ``p`` and enters the steady-state phase.
    p_initial:
        First sampling fraction explored during training (paper: ``2^-15``).
    type_aware:
        Enable MSB-first type-aware input selection (Section III-C).
    hash_function:
        Which whole-buffer hash to use: ``"numpy"`` (vectorised, default),
        ``"lookup3"`` (exact Jenkins lookup3) or ``"one_at_a_time"``.
    hash_seed:
        Seed mixed into every hash key.
    track_unstable_outputs:
        Maintain the set of output pointers whose training error exceeded
        ``tau_max`` and refuse to memoize tasks writing to them (Section
        III-D, needed by Jacobi).
    shuffle_seed:
        Seed of the per-task-type index shuffle (stored once per task type).
    key_pipeline:
        How composite hash keys are built from the sampled input bytes:

        * ``"exact"`` (default) — hash the shuffled, interleaved sample
          stream, bit-identical to the original (seed) key generator;
        * ``"digest"`` — hash each input's sampled bytes independently and
          combine the per-input digests with splitmix64 mixing.  Keys stay
          order- and content-sensitive (and equal the exact keys for
          single-input tasks) but multi-input composites differ from the
          seed values; in exchange per-input digests of unchanged regions
          are reused from an 8-byte cache.
    key_cache:
        Enable the region-version keyed caches (whole-key, per-region sample
        bytes and per-region digests).  Requires every write to go through a
        declared ``out``/``inout`` access or :meth:`DataRegion.copy_from`,
        which is already the dependence-system contract.
    key_cache_budget_bytes:
        LRU budget shared by all key-cache entries.
    shuffle_cache_entries:
        LRU bound on the number of stored shuffle records (one per
        ``(task type, total input bytes)``), fixing the unbounded growth the
        seed implementation exhibited for apps with many distinct sizes.
    tht_store:
        Persistent THT tier (DESIGN.md §9), ``None`` (default) for the
        classic session-lifetime table.  ``"file://<path>"`` warm-starts the
        THT from a snapshot file on Session open and flushes the run's delta
        back on ``finish()``; ``"tcp://<host>:<port>"`` attaches to a
        running ``scripts/tht_shard.py`` cache-shard daemon so concurrent
        sessions and gateways share one warm tier.  A corrupt or unreachable
        store degrades to a cold start — it never fails the run.
    tht_store_compact_frames:
        Append-then-compact bound of the ``file://`` store: when a flush
        leaves more than this many delta frames in the file, it is rewritten
        (atomically) as one consolidated snapshot.
    """

    mode: str = "none"
    tht_bucket_bits: int = 8
    tht_bucket_capacity: int = 128
    use_ikt: bool = True
    p: float = 1.0
    tau_max: float = 0.01
    l_training: int = 15
    p_initial: float = MIN_P
    type_aware: bool = True
    hash_function: str = "numpy"
    hash_seed: int = 0x5EED
    track_unstable_outputs: bool = True
    shuffle_seed: int = 0xC0FFEE
    key_pipeline: str = "exact"
    key_cache: bool = True
    key_cache_budget_bytes: int = 32 << 20
    shuffle_cache_entries: int = 256
    tht_store: Optional[str] = None
    tht_store_compact_frames: int = 8

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        POLICIES.validate_name(self.mode, field="mode")
        if self.tht_bucket_bits < 0 or self.tht_bucket_bits > 24:
            raise ConfigurationError(
                f"tht_bucket_bits must be in [0, 24], got {self.tht_bucket_bits}"
            )
        if self.tht_bucket_capacity < 1:
            raise ConfigurationError(
                f"tht_bucket_capacity must be >= 1, got {self.tht_bucket_capacity}"
            )
        if not (0.0 < self.p <= 1.0):
            raise ConfigurationError(f"p must be in (0, 1], got {self.p}")
        if not (0.0 < self.p_initial <= 1.0):
            raise ConfigurationError(
                f"p_initial must be in (0, 1], got {self.p_initial}"
            )
        if self.tau_max < 0.0:
            raise ConfigurationError(f"tau_max must be >= 0, got {self.tau_max}")
        if self.l_training < 1:
            raise ConfigurationError(
                f"l_training must be >= 1, got {self.l_training}"
            )
        if self.hash_function not in ("numpy", "lookup3", "one_at_a_time"):
            raise ConfigurationError(
                f"unknown hash_function {self.hash_function!r}"
            )
        if self.key_pipeline not in ("exact", "digest"):
            raise ConfigurationError(
                f"key_pipeline must be 'exact' or 'digest', got {self.key_pipeline!r}"
            )
        if self.key_cache_budget_bytes < 0:
            raise ConfigurationError("key_cache_budget_bytes must be >= 0")
        if self.shuffle_cache_entries < 1:
            raise ConfigurationError("shuffle_cache_entries must be >= 1")
        if self.tht_store is not None:
            store = self.tht_store.strip()
            if store.startswith("file://"):
                if not store[len("file://"):]:
                    raise ConfigurationError(
                        "tht_store file:// URL names no path"
                    )
            elif store.startswith("tcp://"):
                address = store[len("tcp://"):]
                host, _, port = address.rpartition(":")
                if not host or not port.isdigit() or not (0 < int(port) <= 65535):
                    raise ConfigurationError(
                        f"tht_store tcp:// URL must be tcp://host:port, "
                        f"got {self.tht_store!r}"
                    )
            else:
                raise ConfigurationError(
                    f"tht_store must be a file:// or tcp:// URL, "
                    f"got {self.tht_store!r}"
                )
        if self.tht_store_compact_frames < 1:
            raise ConfigurationError(
                f"tht_store_compact_frames must be >= 1, "
                f"got {self.tht_store_compact_frames}"
            )

    @property
    def n_buckets(self) -> int:
        return 1 << self.tht_bucket_bits

    def with_overrides(self, **kwargs) -> "ATMConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **kwargs)


@dataclass
class RuntimeConfig:
    """Configuration of the task runtime itself.

    Attributes
    ----------
    num_threads:
        Worker threads / worker processes / simulated cores.
    executor:
        Execution backend selected by :func:`repro.runtime.executor.build_executor`:
        ``"serial"``, ``"threaded"``, ``"process"`` or ``"simulated"``
        (DESIGN.md §4).
    scheduler:
        Ready-queue policy name (``"fifo"``, ``"lifo"`` or
        ``"work_stealing"``).
    enable_tracing:
        Record per-core state intervals and ready-queue depth samples.
    max_ready_tasks:
        Optional bound on the ready queue (``None`` = unbounded); used to
        model the task-creation throughput limitation discussed in Section
        V-C.
    seed:
        Seed for any stochastic scheduling decisions (work stealing).
    mp_workers:
        Worker-process count for the ``"process"`` backend (``None`` falls
        back to ``num_threads``).
    mp_chunk_size:
        Maximum ready tasks batched into one dispatch message of the
        process backend (amortises queue/pickle overhead on wide graphs;
        narrow/wavefront graphs still dispatch singles, see DESIGN.md §4.3).
    mp_start_method:
        ``multiprocessing`` start method for the process backend (``None``
        picks ``"fork"`` where available, else ``"spawn"``).
    net_endpoints:
        Worker endpoints for the ``"network"`` backend (DESIGN.md §4.5).
        Either ``"loopback"`` / ``"loopback:<n>"`` — spawn ``n`` in-process
        loopback workers (default: ``mp_workers`` falling back to
        ``num_threads``) speaking the real wire protocol over socketpairs —
        or a comma-separated list of ``host:port`` addresses of
        ``scripts/net_worker.py`` daemons.
    net_timeout_s:
        Heartbeat/ack timeout of the network backend: an endpoint with
        outstanding work that stays silent this long is declared dead and
        its chunks are resubmitted elsewhere.  Must exceed the worst-case
        wall-clock of one dispatched chunk.
    net_max_retries:
        How many times one task may be resubmitted after endpoint failures
        before the drain raises
        :class:`~repro.common.exceptions.NetworkDrainError`.
    net_timeout_grace_s:
        Dispatch/queue latency allowance the network backend adds to the
        per-chunk task budget before an endpoint is declared wedged
        (``task_timeout_s`` supervision).  Replaces the hardcoded
        ``NetworkExecutor.TIMEOUT_GRACE`` class constant.
    net_residency:
        Enable per-endpoint data residency on the network backend
        (DESIGN.md §4.5): workers keep generation-tagged caches of shipped
        buffer spans keyed on :mod:`repro.runtime.data` write-versions, the
        parent tracks them in a :class:`repro.runtime.residency.
        ResidencyTable`, and dispatch ships bytes only for *stale* spans —
        plus routes ready chunks to the endpoint already holding their
        input bytes.  Off restores the ship-everything round-robin backend.
    net_residency_budget_bytes:
        Per-endpoint byte budget of the residency table; least-recently
        used entries beyond it are evicted (and invalidated on the worker).
    task_timeout_s:
        Per-task wall-clock budget enforced by the supervision layer
        (DESIGN.md §7).  ``None`` (default) disables per-task timeouts.  The
        process/network backends enforce it preemptively (the worker is
        killed/excluded and the task resubmitted or failed); the in-process
        backends (serial/threaded) cannot preempt a running Python frame and
        detect the overrun when the task returns.
    task_max_retries:
        How many times a failed task (body raised, timed out, or its worker
        died) is re-run before it is declared failed.  ``0`` (default) fails
        on the first error, preserving pre-supervision behaviour.
    retry_backoff_s:
        Base of the exponential back-off between task retries: attempt *k*
        sleeps ``retry_backoff_s * 2**(k-1)`` seconds before re-running.
    drain_timeout_s:
        Safety deadline for a single drain (seconds).  Replaces the
        per-executor hardcoded ``DRAIN_TIMEOUT`` class constants; on expiry
        the drain dumps all thread stacks (``faulthandler``) and raises
        :class:`~repro.common.exceptions.DrainAbortedError` instead of
        hanging.
    on_task_failure:
        What a drain does when a task exhausts its retry budget:
        ``"abort"`` (default) raises
        :class:`~repro.common.exceptions.DrainAbortedError` carrying every
        recorded failure; ``"quarantine"`` marks the task ``FAILED``, cancels
        its dependent subgraph (``CANCELLED``) and keeps draining the
        independent tasks — the failures are reported in
        ``RunResult.failures``.
    """

    num_threads: int = 8
    executor: str = "serial"
    scheduler: str = "fifo"
    enable_tracing: bool = False
    max_ready_tasks: Optional[int] = None
    seed: int = 2017
    mp_workers: Optional[int] = None
    mp_chunk_size: int = 8
    mp_start_method: Optional[str] = None
    net_endpoints: str = "loopback"
    net_timeout_s: float = 30.0
    net_max_retries: int = 2
    net_timeout_grace_s: float = 0.25
    net_residency: bool = True
    net_residency_budget_bytes: int = 256 << 20
    task_timeout_s: Optional[float] = None
    task_max_retries: int = 0
    retry_backoff_s: float = 0.05
    drain_timeout_s: float = 300.0
    on_task_failure: str = "abort"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.num_threads < 1:
            raise ConfigurationError(
                f"num_threads must be >= 1, got {self.num_threads}"
            )
        EXECUTORS.validate_name(self.executor, field="executor")
        SCHEDULERS.validate_name(self.scheduler, field="scheduler")
        if self.max_ready_tasks is not None and self.max_ready_tasks < 1:
            raise ConfigurationError("max_ready_tasks must be >= 1 or None")
        if self.mp_workers is not None and self.mp_workers < 1:
            raise ConfigurationError("mp_workers must be >= 1 or None")
        if self.mp_chunk_size < 1:
            raise ConfigurationError("mp_chunk_size must be >= 1")
        if self.mp_start_method not in (None, "fork", "spawn", "forkserver"):
            raise ConfigurationError(
                f"unknown mp_start_method {self.mp_start_method!r}"
            )
        if not self.net_endpoints or not self.net_endpoints.strip():
            raise ConfigurationError(
                "net_endpoints must name at least one endpoint "
                "('loopback', 'loopback:<n>' or 'host:port,...')"
            )
        if self.net_timeout_s <= 0:
            raise ConfigurationError(
                f"net_timeout_s must be > 0, got {self.net_timeout_s}"
            )
        if self.net_max_retries < 0:
            raise ConfigurationError(
                f"net_max_retries must be >= 0, got {self.net_max_retries}"
            )
        if self.net_timeout_grace_s < 0:
            raise ConfigurationError(
                f"net_timeout_grace_s must be >= 0, got {self.net_timeout_grace_s}"
            )
        if self.net_residency_budget_bytes < 1:
            raise ConfigurationError(
                f"net_residency_budget_bytes must be >= 1, "
                f"got {self.net_residency_budget_bytes}"
            )
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ConfigurationError(
                f"task_timeout_s must be > 0 or None, got {self.task_timeout_s}"
            )
        if self.task_max_retries < 0:
            raise ConfigurationError(
                f"task_max_retries must be >= 0, got {self.task_max_retries}"
            )
        if self.retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.drain_timeout_s <= 0:
            raise ConfigurationError(
                f"drain_timeout_s must be > 0, got {self.drain_timeout_s}"
            )
        if self.on_task_failure not in ("abort", "quarantine"):
            raise ConfigurationError(
                f"on_task_failure must be 'abort' or 'quarantine', "
                f"got {self.on_task_failure!r}"
            )

    def with_overrides(self, **kwargs) -> "RuntimeConfig":
        return replace(self, **kwargs)


@dataclass
class ServingConfig:
    """Configuration of the multi-tenant serving gateway (DESIGN.md §8).

    Attributes
    ----------
    host / port:
        TCP listen address of the gateway daemon.  ``port = 0`` binds an
        ephemeral port (the daemon prints the bound address), which is what
        the tests and ``make serve-smoke`` use.
    max_pending:
        Bounded global pending pool: at most this many admitted tasks may be
        in flight (submitted to the shared executor but not yet terminal)
        across all tenants — the Puppetmaster-style cap that keeps the
        shared scheduler's working set constant no matter how many clients
        connect.  Over-budget work waits in per-tenant queues.
    max_tenant_queue:
        Per-tenant backlog cap.  A single batch larger than this can never
        be admitted and is rejected with
        :class:`~repro.common.exceptions.AdmissionError`; otherwise a full
        queue exerts backpressure by blocking the tenant's connection.
    quantum:
        Deficit-round-robin quantum: credits (task admissions) granted per
        scheduling round to a weight-1.0 tenant.  A tenant's per-round
        credit is ``quantum * weight``; unused credit carries over while the
        tenant has queued work, so bursty tenants are not penalised.
    default_weight:
        Fair-share weight assigned to tenants whose ``hello`` does not
        request one.
    shared_tht:
        Default for the opt-in shared THT tier: when on, a tenant-engine
        miss probes the gateway-wide shared table before executing, and the
        merge pump publishes tenant deltas into it.  Tenants can override
        per-connection in ``hello``.
    merge_interval_s:
        Period of the incremental ATM merge pump: at least this often every
        tenant engine's journaled delta (``snapshot(reset=True)``) is merged
        into the shared tier — no drain barrier required.
    merge_min_commits:
        Size trigger of the merge pump: a tenant engine whose journal
        accumulates this many commits is merged immediately instead of
        waiting for the timer.
    result_history:
        Per-tenant reservoir of completed-task latencies kept for ``stats``
        replies (p50/p99); bounded so long-lived tenants use constant
        memory.
    shutdown_grace_s:
        On SIGTERM/SIGINT the gateway stops admitting, waits up to this many
        seconds for in-flight tasks to finish, flushes ATM deltas and
        answers outstanding barriers before closing sockets.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 256
    max_tenant_queue: int = 4096
    quantum: int = 32
    default_weight: float = 1.0
    shared_tht: bool = False
    merge_interval_s: float = 0.05
    merge_min_commits: int = 64
    result_history: int = 1024
    shutdown_grace_s: float = 5.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not self.host or not self.host.strip():
            raise ConfigurationError("host must be a non-empty address")
        if not (0 <= self.port <= 65535):
            raise ConfigurationError(
                f"port must be in [0, 65535], got {self.port}"
            )
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.max_tenant_queue < 1:
            raise ConfigurationError(
                f"max_tenant_queue must be >= 1, got {self.max_tenant_queue}"
            )
        if self.quantum < 1:
            raise ConfigurationError(f"quantum must be >= 1, got {self.quantum}")
        if self.default_weight <= 0:
            raise ConfigurationError(
                f"default_weight must be > 0, got {self.default_weight}"
            )
        if self.merge_interval_s <= 0:
            raise ConfigurationError(
                f"merge_interval_s must be > 0, got {self.merge_interval_s}"
            )
        if self.merge_min_commits < 1:
            raise ConfigurationError(
                f"merge_min_commits must be >= 1, got {self.merge_min_commits}"
            )
        if self.result_history < 1:
            raise ConfigurationError(
                f"result_history must be >= 1, got {self.result_history}"
            )
        if self.shutdown_grace_s < 0:
            raise ConfigurationError(
                f"shutdown_grace_s must be >= 0, got {self.shutdown_grace_s}"
            )

    def with_overrides(self, **kwargs) -> "ServingConfig":
        return replace(self, **kwargs)


@dataclass
class SimulationConfig:
    """Cost model of the discrete-event simulated multicore.

    The simulator replaces the paper's real Sandy Bridge testbed (see
    DESIGN.md Section 4).  Costs are expressed in microseconds of simulated
    time; throughput figures are bytes per microsecond.

    Attributes
    ----------
    copy_bandwidth:
        Bytes/us for THT output copies.  The paper measures the SIMD copies to
        be ~10.3-10.8x faster than executing the task, which emerges from this
        bandwidth combined with the per-application task cost models.
    hash_bandwidth:
        Bytes/us processed by the hash-key generator.
    task_overhead:
        Fixed per-task runtime bookkeeping cost (scheduling, dependence
        release).
    tht_lookup_overhead:
        Fixed cost of one THT probe (lock + compare).
    ikt_lookup_overhead:
        Fixed cost of one IKT probe.
    creation_throughput:
        Tasks/us that the master thread can create; models the creation
        bottleneck seen in Blackscholes/Kmeans (Section V-C, Figure 8).
    memory_contention_factor:
        Extra latency factor applied to memory-bound ATM activities when
        several cores perform them concurrently: effective cost is multiplied
        by ``1 + factor * (concurrent_memory_ops - 1)``.  Models the 60 %
        slowdown of hash/copy states observed between 2 and 8 cores (Figure
        7).
    """

    copy_bandwidth: float = 2000.0
    hash_bandwidth: float = 400.0
    task_overhead: float = 0.2
    tht_lookup_overhead: float = 0.1
    ikt_lookup_overhead: float = 0.02
    creation_throughput: float = 8.0
    memory_contention_factor: float = 0.09

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        for name in (
            "copy_bandwidth",
            "hash_bandwidth",
            "creation_throughput",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be > 0")
        for name in (
            "task_overhead",
            "tht_lookup_overhead",
            "ikt_lookup_overhead",
            "memory_contention_factor",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    def with_overrides(self, **kwargs) -> "SimulationConfig":
        return replace(self, **kwargs)
