"""Error metrics used by ATM.

The paper uses two per-output distance metrics and one derived program-level
correctness figure:

* **Chebyshev relative error** (Eq. 1) — the per-task metric used by Dynamic
  ATM during the training phase.  It is a max-reduction, so it does not suffer
  from the floating-point accumulation problems of the Euclidean metric and is
  well correlated with final program correctness.
* **Euclidean relative error** (Eq. 3) — the program-level metric used to
  report correctness of the final output vectors/matrices.
* **LU residual** (Eq. 4) — the application-specific metric for the sparse LU
  benchmark, ``|A - L*U|_2 / |A|_2``.

Correctness, as plotted in Figures 4 and 5, is ``100 * (1 - Er)`` clamped to
``[0, 100]``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

# The unified task-supervision error taxonomy lives with the rest of the
# exception hierarchy in :mod:`repro.common.exceptions`; it is re-exported
# here so ``repro.common.errors`` is the one-stop module for everything
# error-shaped — metrics below, named failure classes here.
from repro.common.exceptions import (  # noqa: F401  (re-export)
    AdmissionError,
    DrainAbortedError,
    GatewayError,
    GatewayProtocolError,
    GatewayShutdownError,
    TaskFailedError,
    TaskTimeoutError,
    TenantRejectedError,
    WorkerLostError,
)

__all__ = [
    "chebyshev_relative_error",
    "euclidean_relative_error",
    "correctness_percent",
    "lu_residual_error",
    "combined_chebyshev_error",
    "TaskFailedError",
    "TaskTimeoutError",
    "WorkerLostError",
    "DrainAbortedError",
    "GatewayError",
    "GatewayProtocolError",
    "TenantRejectedError",
    "AdmissionError",
    "GatewayShutdownError",
]


def _flatten(x: np.ndarray | Sequence[float]) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    return arr.reshape(-1)


def chebyshev_relative_error(
    correct: np.ndarray | Sequence[float],
    approximate: np.ndarray | Sequence[float],
) -> float:
    """Chebyshev relative error ``tau`` between two outputs (paper Eq. 1).

    ``tau = max_i |correct_i - approx_i| / max_i |correct_i|``

    A zero reference with a non-zero approximation yields ``inf``; two outputs
    that are both identically zero yield ``0.0``.
    """
    xc = _flatten(correct)
    xa = _flatten(approximate)
    if xc.shape != xa.shape:
        raise ValueError(
            f"shape mismatch: correct {xc.shape} vs approximate {xa.shape}"
        )
    if xc.size == 0:
        return 0.0
    num = float(np.max(np.abs(xc - xa)))
    den = float(np.max(np.abs(xc)))
    if den == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / den


def combined_chebyshev_error(
    pairs: Iterable[tuple[np.ndarray, np.ndarray]],
) -> float:
    """Chebyshev error over several output regions of a single task.

    A task may declare several outputs; the paper's per-task error considers
    all output elements together, which is equivalent to taking the maximum
    numerator over all regions divided by the maximum reference magnitude over
    all regions.
    """
    num = 0.0
    den = 0.0
    seen = False
    for correct, approximate in pairs:
        xc = _flatten(correct)
        xa = _flatten(approximate)
        if xc.shape != xa.shape:
            raise ValueError("shape mismatch in combined Chebyshev error")
        if xc.size == 0:
            continue
        seen = True
        num = max(num, float(np.max(np.abs(xc - xa))))
        den = max(den, float(np.max(np.abs(xc))))
    if not seen:
        return 0.0
    if den == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / den


def euclidean_relative_error(
    correct: np.ndarray | Sequence[float],
    approximate: np.ndarray | Sequence[float],
) -> float:
    """Euclidean relative error ``Er`` (paper Eq. 3).

    ``Er = sum_i (correct_i - approx_i)^2 / sum_i correct_i^2``
    """
    xc = _flatten(correct)
    xa = _flatten(approximate)
    if xc.shape != xa.shape:
        raise ValueError(
            f"shape mismatch: correct {xc.shape} vs approximate {xa.shape}"
        )
    if xc.size == 0:
        return 0.0
    num = float(np.sum((xc - xa) ** 2))
    den = float(np.sum(xc ** 2))
    if den == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / den


def lu_residual_error(
    a: np.ndarray,
    l: np.ndarray,
    u: np.ndarray,
) -> float:
    """LU-specific relative error (paper Eq. 4): ``|A - L*U|_2 / |A|_2``."""
    a = np.asarray(a, dtype=np.float64)
    residual = a - np.asarray(l, dtype=np.float64) @ np.asarray(u, dtype=np.float64)
    den = float(np.linalg.norm(a))
    if den == 0.0:
        return 0.0 if float(np.linalg.norm(residual)) == 0.0 else float("inf")
    return float(np.linalg.norm(residual)) / den


def correctness_percent(relative_error: float) -> float:
    """Convert a relative error into the correctness percentage of Figs. 4-5.

    ``correctness = 100 * (1 - Er)`` clamped to ``[0, 100]``.  ``inf`` or NaN
    errors map to 0 % correctness.
    """
    if not np.isfinite(relative_error):
        return 0.0
    return float(np.clip(100.0 * (1.0 - relative_error), 0.0, 100.0))
