"""Shared low-level substrates: hashing, error metrics, dtypes, config, rng."""

from repro.common.hashing import (
    HashKey,
    jenkins_lookup3,
    jenkins_one_at_a_time,
    hash_bytes,
    hash_sampled_bytes,
)
from repro.common.errors import (
    chebyshev_relative_error,
    euclidean_relative_error,
    correctness_percent,
    lu_residual_error,
)
from repro.common.config import ATMConfig, RuntimeConfig, SimulationConfig
from repro.common.dtypes import TypeDescriptor, describe_array, significance_order

__all__ = [
    "HashKey",
    "jenkins_lookup3",
    "jenkins_one_at_a_time",
    "hash_bytes",
    "hash_sampled_bytes",
    "chebyshev_relative_error",
    "euclidean_relative_error",
    "correctness_percent",
    "lu_residual_error",
    "ATMConfig",
    "RuntimeConfig",
    "SimulationConfig",
    "TypeDescriptor",
    "describe_array",
    "significance_order",
]
