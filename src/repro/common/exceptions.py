"""Exception hierarchy for the ATM reproduction.

Keeping a single module for exceptions lets callers catch broad categories
(``ReproError``) or precise conditions (``DependenceError``) without importing
heavy modules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """A configuration object contains an invalid or inconsistent value."""


class DependenceError(ReproError):
    """A task declared data accesses that the dependence system rejects."""


class TaskDefinitionError(ReproError):
    """A task or task type was declared incorrectly (e.g. missing outputs)."""


class RuntimeStateError(ReproError):
    """The runtime was driven through an invalid state transition."""


class MemoizationError(ReproError):
    """The ATM engine detected an inconsistent memoization state."""


class SchedulerError(ReproError):
    """A scheduler was asked to perform an unsupported operation."""


# -- task supervision taxonomy (DESIGN.md §7 "Failure semantics") ----------------
#
# Every backend reports task-level failures through the same four names so
# callers can write backend-agnostic handlers: per-task conditions
# (``TaskFailedError``, ``TaskTimeoutError``, ``WorkerLostError``) describe
# *why one task* could not complete and appear as ``RunResult.failures``
# entries under quarantine; ``DrainAbortedError`` (and its network
# specialisation ``NetworkDrainError``) is what a drain *raises* when it
# cannot or may not continue.


class TaskFailedError(ReproError):
    """A task body raised and exhausted its retry budget.

    ``label`` names the task, ``attempts`` counts executions (1 + retries).
    The original exception is chained as ``__cause__`` where available.
    """

    def __init__(self, message: str, label: str = "", attempts: int = 1) -> None:
        super().__init__(message)
        self.label = label
        self.attempts = attempts


class TaskTimeoutError(TaskFailedError):
    """A task exceeded its per-task wall-clock budget (``task_timeout_s``)."""


class WorkerLostError(TaskFailedError):
    """The worker process/endpoint executing a task died mid-flight.

    Raised (or recorded as the failure reason) after the task's resubmission
    budget is exhausted — a single crash only triggers resubmission.
    """


class DrainAbortedError(RuntimeStateError):
    """A drain was aborted by task failures or a drain-level timeout.

    Carries the structured per-task report in ``failures`` (a list of
    :class:`repro.runtime.supervision.TaskFailure`); the message names every
    failed task.  Subclasses :class:`RuntimeStateError` so pre-supervision
    callers catching the broad runtime error keep working.
    """

    def __init__(self, message: str, failures: "list | None" = None) -> None:
        super().__init__(message)
        self.failures = list(failures or [])


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class WireProtocolError(ReproError):
    """A network frame failed to decode (bad magic, length or checksum).

    Raised by :mod:`repro.runtime.net_wire` when a peer sends bytes that are
    not a well-formed frame; the network executor treats the sending endpoint
    as failed and resubmits its work elsewhere.
    """


class NetworkTransportError(ReproError):
    """A network endpoint could not be reached or its connection broke."""


class NetworkDrainError(DrainAbortedError):
    """A network-backend drain cannot complete.

    Raised — instead of hanging — when every endpoint has failed, a task
    exhausted its resubmission budget (``RuntimeConfig.net_max_retries``), or
    the drain deadline expired with work still outstanding.  A
    :class:`DrainAbortedError` specialisation: transport-level aborts join
    the unified supervision taxonomy.
    """


# -- serving-gateway taxonomy (DESIGN.md §8 "Serving layer") ----------------------
#
# The gateway never lets a server-side traceback leak to a client: every
# error a tenant can observe is one of these named conditions, shipped over
# the wire as a structured ``error`` reply and re-raised client-side.  They
# mirror the supervision taxonomy above: per-request conditions subclass
# ``GatewayError``; task-level failures inside a tenant's graph still arrive
# as ``RunResult.failures`` entries in ``result``/``stats`` replies rather
# than as exceptions.


class GatewayError(ReproError):
    """Base class for every error the serving gateway reports to a client."""


class GatewayProtocolError(GatewayError):
    """A client request was malformed or arrived out of sequence.

    Examples: a ``submit`` before ``hello``, an unknown message type, or a
    task referencing a buffer the tenant never shipped.
    """


class TenantRejectedError(GatewayError):
    """The gateway refused a ``hello`` (duplicate tenant name, bad config)."""


class AdmissionError(GatewayError):
    """A submission violates the admission controller's hard limits.

    Raised when a single batch alone exceeds the tenant's queue capacity —
    backpressure that can never resolve by waiting.  Ordinary over-budget
    submissions are queued, not rejected.
    """


class GatewayShutdownError(GatewayError):
    """The gateway is draining for shutdown and no longer accepts work."""


# -- persistent THT store taxonomy (DESIGN.md §9 "Persistent memoization") -------
#
# The persistent tier fails *loudly but recoverably*: a store that cannot be
# read raises ``THTStoreCorruptError`` (never garbage entries), and the
# Session treats that as a cold start instead of dying — a damaged cache
# file must never take down the computation it was meant to accelerate.


class THTStoreError(ReproError):
    """Base class for persistent-THT-store failures (file or shard)."""


class THTStoreCorruptError(THTStoreError):
    """A store file or shard reply failed to decode.

    Raised on a bad header, a schema mismatch, a truncated or
    checksum-failing frame, or a frame that is not a store message.  The
    Session catches this on warm-start and falls back to a cold table.
    """


class THTStoreUnavailableError(THTStoreError):
    """A ``tcp://`` cache shard could not be reached or dropped mid-request."""


class WorkloadError(ReproError):
    """An application workload was configured with invalid parameters."""


class EvaluationError(ReproError):
    """An experiment harness failed to produce a result."""
