"""Exception hierarchy for the ATM reproduction.

Keeping a single module for exceptions lets callers catch broad categories
(``ReproError``) or precise conditions (``DependenceError``) without importing
heavy modules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """A configuration object contains an invalid or inconsistent value."""


class DependenceError(ReproError):
    """A task declared data accesses that the dependence system rejects."""


class TaskDefinitionError(ReproError):
    """A task or task type was declared incorrectly (e.g. missing outputs)."""


class RuntimeStateError(ReproError):
    """The runtime was driven through an invalid state transition."""


class MemoizationError(ReproError):
    """The ATM engine detected an inconsistent memoization state."""


class SchedulerError(ReproError):
    """A scheduler was asked to perform an unsupported operation."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class WireProtocolError(ReproError):
    """A network frame failed to decode (bad magic, length or checksum).

    Raised by :mod:`repro.runtime.net_wire` when a peer sends bytes that are
    not a well-formed frame; the network executor treats the sending endpoint
    as failed and resubmits its work elsewhere.
    """


class NetworkTransportError(ReproError):
    """A network endpoint could not be reached or its connection broke."""


class NetworkDrainError(ReproError):
    """A network-backend drain cannot complete.

    Raised — instead of hanging — when every endpoint has failed, a task
    exhausted its resubmission budget (``RuntimeConfig.net_max_retries``), or
    the drain deadline expired with work still outstanding.
    """


class WorkloadError(ReproError):
    """An application workload was configured with invalid parameters."""


class EvaluationError(ReproError):
    """An experiment harness failed to produce a result."""
