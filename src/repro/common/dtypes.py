"""Type descriptors for type-aware input selection (paper Section III-C).

The OmpSs runtime only knows the start address and size of each data region;
the paper extends the runtime API so the compiler can also communicate the
element type of every input and output.  With that information the hash-key
generator can shuffle the *most significant byte* of every element first, then
the next most significant byte, and so on, so that a small sampling percentage
``p`` still protects sign and exponent bits of floating-point data and sign
and high-order bits of integer data.

This module provides the Python equivalent: a :class:`TypeDescriptor` derived
from a NumPy dtype, and :func:`significance_order`, which returns for a region
of ``n`` elements the byte indexes ordered from most to least significant
(grouped by significance level, as the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TypeDescriptor",
    "describe_array",
    "describe_dtype",
    "significance_order",
    "byte_significance_ranks",
]


@dataclass(frozen=True)
class TypeDescriptor:
    """Describes the element type of a data region.

    Attributes
    ----------
    name:
        Canonical NumPy dtype name (``"float32"``, ``"int64"``...).
    itemsize:
        Bytes per element.
    kind:
        NumPy kind character: ``'f'`` float, ``'i'`` signed int, ``'u'``
        unsigned int, ``'b'`` boolean, ``'V'`` raw/void.
    byteorder:
        ``"little"`` or ``"big"``; raw byte buffers are treated as
        little-endian single-byte elements.
    """

    name: str
    itemsize: int
    kind: str
    byteorder: str = "little"

    @property
    def is_multibyte(self) -> bool:
        return self.itemsize > 1

    def msb_first_byte_offsets(self) -> list[int]:
        """Byte offsets within one element, most significant first.

        For little-endian multi-byte types the most significant byte is the
        last one of the element; for big-endian it is the first.  Single-byte
        types trivially return ``[0]``.
        """
        offsets = list(range(self.itemsize))
        if self.byteorder == "little":
            offsets.reverse()
        return offsets


#: Descriptors depend on the dtype alone, and programs use a handful of
#: dtypes across millions of regions — memoise them (``dtype.name`` alone
#: costs microseconds per call, measurable on the task-submission path).
_DESCRIPTOR_CACHE: dict[np.dtype, TypeDescriptor] = {}


def describe_dtype(dtype: np.dtype) -> TypeDescriptor:
    """Build (or fetch the cached) :class:`TypeDescriptor` for a dtype."""
    cached = _DESCRIPTOR_CACHE.get(dtype)
    if cached is not None:
        return cached
    byteorder = dtype.byteorder
    if byteorder in ("=", "|"):
        order = "little" if np.little_endian else "big"
    elif byteorder == "<":
        order = "little"
    else:
        order = "big"
    descriptor = TypeDescriptor(
        name=dtype.name,
        itemsize=int(dtype.itemsize),
        kind=dtype.kind,
        byteorder=order,
    )
    _DESCRIPTOR_CACHE[dtype] = descriptor
    return descriptor


def describe_array(array: np.ndarray) -> TypeDescriptor:
    """Build a :class:`TypeDescriptor` from a NumPy array."""
    return describe_dtype(array.dtype)


def byte_significance_ranks(descriptor: TypeDescriptor, nbytes: int) -> np.ndarray:
    """Rank every byte of a region by significance level.

    Returns an int array ``ranks`` of length ``nbytes`` where ``ranks[i]`` is
    the significance level of byte ``i`` (0 = most significant byte of its
    element).  Trailing bytes that do not form a full element (possible only
    for raw buffers) are assigned the lowest significance.
    """
    itemsize = max(1, descriptor.itemsize)
    ranks = np.empty(nbytes, dtype=np.int64)
    if itemsize == 1:
        ranks.fill(0)
        return ranks
    offsets = descriptor.msb_first_byte_offsets()
    # offset -> rank (position in MSB-first order)
    rank_of_offset = np.empty(itemsize, dtype=np.int64)
    for rank, offset in enumerate(offsets):
        rank_of_offset[offset] = rank
    n_full = (nbytes // itemsize) * itemsize
    if n_full:
        within = np.arange(n_full, dtype=np.int64) % itemsize
        ranks[:n_full] = rank_of_offset[within]
    if n_full < nbytes:
        ranks[n_full:] = itemsize - 1
    return ranks


def significance_order(
    descriptors: list[tuple[TypeDescriptor, int]],
    rng: np.random.Generator,
) -> np.ndarray:
    """Type-aware shuffled index vector over the concatenated inputs.

    ``descriptors`` is a list of ``(TypeDescriptor, nbytes)`` pairs describing
    the task's data inputs in concatenation order.  The returned index vector
    covers ``sum(nbytes)`` global byte positions.  Bytes are grouped by
    significance level (level 0 = most significant byte of every element of
    every input) and each group is independently shuffled; groups are then
    concatenated from most to least significant, exactly as Section III-C
    describes ("first shuffles the indexes pointing to the MSBs of the data
    inputs, then the next MSBs, ...").
    """
    total = sum(nbytes for _, nbytes in descriptors)
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ranks = np.empty(total, dtype=np.int64)
    cursor = 0
    for descriptor, nbytes in descriptors:
        ranks[cursor:cursor + nbytes] = byte_significance_ranks(descriptor, nbytes)
        cursor += nbytes
    indices = np.arange(total, dtype=np.int64)
    order_parts: list[np.ndarray] = []
    for level in range(int(ranks.max()) + 1):
        group = indices[ranks == level]
        if group.size:
            order_parts.append(rng.permutation(group))
    return np.concatenate(order_parts)
