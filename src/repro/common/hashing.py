"""Hashing substrate used to build ATM hash keys.

The paper indexes the Task History Table with a "very precise hash key"
computed with Bob Jenkins's hash function over (a sampled subset of) the task
input bytes; the resulting key is 8 bytes and collisions are expected roughly
once every 2^32 keys.

This module provides three layers:

``jenkins_one_at_a_time``
    The classic scalar Jenkins one-at-a-time 32-bit hash.  Simple reference
    implementation, used in tests and for tiny inputs.

``jenkins_lookup3``
    A faithful Python port of Jenkins's *lookup3* ``hashlittle2`` returning a
    64-bit value (the concatenation of the two 32-bit lanes).  This is the
    function the paper cites [12].  It is exact but scalar, so it is only the
    default for small inputs.

``hash_bytes`` / ``hash_sampled_bytes``
    A vectorised 64-bit mixing hash built on NumPy (splitmix64 finalisation of
    position-salted 64-bit words).  It has the same statistical role as
    lookup3 (uniform 64-bit keys, order- and content-sensitive) but runs at
    memory bandwidth on multi-megabyte task inputs, which is what the ATM key
    generator needs.  The engine can be configured to use the exact lookup3
    implementation instead (``ATMConfig.hash_function = "lookup3"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = [
    "HashKey",
    "bucket_of_value",
    "jenkins_one_at_a_time",
    "jenkins_lookup3",
    "hash_bytes",
    "hash_sampled_bytes",
    "splitmix64",
    "combine_digests",
    "canonical_p",
    "padded_sample_buffer",
    "hash_padded_buffer",
    "HASH_FUNCTIONS",
]

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def bucket_of_value(value: int, n_bits: int) -> int:
    """THT bucket of a raw 64-bit key value: its lower ``n_bits`` bits.

    The single source of truth for bucket selection — used both by live
    lookups (:meth:`HashKey.bucket`) and by the THT delta merge, which only
    has the stored ``key_value``; the two must never disagree or merged
    worker entries would land in buckets lookups never probe.
    """
    if n_bits <= 0:
        return 0
    return value & ((1 << n_bits) - 1)

BytesLike = Union[bytes, bytearray, memoryview, np.ndarray]


@dataclass(frozen=True)
class HashKey:
    """A computed ATM hash key.

    Attributes
    ----------
    value:
        The 64-bit key (non-negative Python int).
    p:
        The fraction of input bytes that was sampled to build the key
        (``1.0`` for Static ATM).
    sampled_bytes:
        Number of bytes actually fed to the hash function.
    total_bytes:
        Total number of input bytes of the task.
    """

    value: int
    p: float = 1.0
    sampled_bytes: int = 0
    total_bytes: int = 0

    def __int__(self) -> int:  # pragma: no cover - trivial
        return self.value

    def bucket(self, n_bits: int) -> int:
        """Return the THT bucket index: the lower ``n_bits`` bits of the key."""
        return bucket_of_value(self.value, n_bits)

    @property
    def storage_bytes(self) -> int:
        """Bytes needed to store this key in the THT (the paper uses 8)."""
        return 8


def _as_uint8(data: BytesLike) -> np.ndarray:
    """View arbitrary byte-like input as a contiguous ``uint8`` array."""
    if isinstance(data, np.ndarray):
        arr = np.ascontiguousarray(data)
        return arr.view(np.uint8).reshape(-1)
    return np.frombuffer(bytes(data), dtype=np.uint8)


def jenkins_one_at_a_time(data: BytesLike, seed: int = 0) -> int:
    """Jenkins one-at-a-time hash (32-bit).

    Reference scalar implementation; intended for small inputs and testing.
    """
    h = seed & _MASK32
    buf = _as_uint8(data)
    for byte in buf.tolist():
        h = (h + int(byte)) & _MASK32
        h = (h + ((h << 10) & _MASK32)) & _MASK32
        h ^= h >> 6
    h = (h + ((h << 3) & _MASK32)) & _MASK32
    h ^= h >> 11
    h = (h + ((h << 15) & _MASK32)) & _MASK32
    return h


def _rot(x: int, k: int) -> int:
    """32-bit left rotation."""
    return ((x << k) | (x >> (32 - k))) & _MASK32


def _mix(a: int, b: int, c: int) -> tuple[int, int, int]:
    """lookup3 ``mix()`` of three 32-bit values."""
    a = (a - c) & _MASK32
    a ^= _rot(c, 4)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rot(a, 6)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rot(b, 8)
    b = (b + a) & _MASK32
    a = (a - c) & _MASK32
    a ^= _rot(c, 16)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rot(a, 19)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rot(b, 4)
    b = (b + a) & _MASK32
    return a, b, c


def _final(a: int, b: int, c: int) -> tuple[int, int, int]:
    """lookup3 ``final()`` of three 32-bit values."""
    c ^= b
    c = (c - _rot(b, 14)) & _MASK32
    a ^= c
    a = (a - _rot(c, 11)) & _MASK32
    b ^= a
    b = (b - _rot(a, 25)) & _MASK32
    c ^= b
    c = (c - _rot(b, 16)) & _MASK32
    a ^= c
    a = (a - _rot(c, 4)) & _MASK32
    b ^= a
    b = (b - _rot(a, 14)) & _MASK32
    c ^= b
    c = (c - _rot(b, 24)) & _MASK32
    return a, b, c


def jenkins_lookup3(data: BytesLike, seed: int = 0) -> int:
    """Jenkins *lookup3* ``hashlittle2`` producing a 64-bit key.

    The two 32-bit lanes (``pc`` and ``pb`` in the original C code) are
    concatenated as ``(pc << 32) | pb``.
    """
    buf = _as_uint8(data)
    length = buf.size
    a = b = c = (0xDEADBEEF + length + (seed & _MASK32)) & _MASK32
    c = (c + ((seed >> 32) & _MASK32)) & _MASK32

    offset = 0
    remaining = length
    data_list = buf.tolist()

    def word(off: int, nbytes: int) -> int:
        value = 0
        for i in range(nbytes):
            value |= data_list[off + i] << (8 * i)
        return value

    while remaining > 12:
        a = (a + word(offset, 4)) & _MASK32
        b = (b + word(offset + 4, 4)) & _MASK32
        c = (c + word(offset + 8, 4)) & _MASK32
        a, b, c = _mix(a, b, c)
        offset += 12
        remaining -= 12

    if remaining > 0:
        chunk = data_list[offset:offset + remaining] + [0] * (12 - remaining)

        def tail_word(start: int) -> int:
            return (
                chunk[start]
                | (chunk[start + 1] << 8)
                | (chunk[start + 2] << 16)
                | (chunk[start + 3] << 24)
            )

        a = (a + tail_word(0)) & _MASK32
        b = (b + tail_word(4)) & _MASK32
        c = (c + tail_word(8)) & _MASK32
        a, b, c = _final(a, b, c)
    # When remaining == 0, lookup3 returns c,b unchanged (zero-length case is
    # the seeded initial state).

    return ((c << 32) | b) & _MASK64


_SPLITMIX_C1 = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_C2 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_C3 = np.uint64(0x94D049BB133111EB)


def splitmix64(x: np.ndarray | int) -> np.ndarray | int:
    """splitmix64 finaliser: a cheap, high-quality 64-bit bijective mixer."""
    scalar = np.isscalar(x) or isinstance(x, int)
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = z + _SPLITMIX_C1
        z = (z ^ (z >> np.uint64(30))) * _SPLITMIX_C2
        z = (z ^ (z >> np.uint64(27))) * _SPLITMIX_C3
        z = z ^ (z >> np.uint64(31))
    if scalar:
        return int(z)
    return z


def _hash_words(words: np.ndarray, n: int, seed: int) -> int:
    """Mix little-endian 64-bit ``words`` covering ``n`` payload bytes.

    Shared core of :func:`hash_bytes` and :func:`hash_padded_buffer`; the
    trailing word must be zero-padded beyond byte ``n``.
    """
    with np.errstate(over="ignore"):
        positions = np.arange(1, words.size + 1, dtype=np.uint64)
        salted = words ^ (positions * _SPLITMIX_C1)
        mixed = splitmix64(salted)
        acc = np.bitwise_xor.reduce(mixed)
        acc ^= np.uint64(n) * _SPLITMIX_C3
        acc ^= np.uint64(seed & _MASK64)
    return int(splitmix64(acc))


def hash_bytes(data: BytesLike, seed: int = 0) -> int:
    """Vectorised 64-bit hash of a byte buffer.

    The buffer is reinterpreted as little-endian 64-bit words (zero-padded to
    a multiple of 8 bytes), each word is salted with its position and pushed
    through the splitmix64 finaliser, and the lanes are XOR-reduced before a
    final mix that also folds in the total length and the seed.  The result is
    deterministic across platforms and runs at NumPy speed for multi-megabyte
    inputs.
    """
    buf = _as_uint8(data)
    n = buf.size
    if n == 0:
        return int(splitmix64(np.uint64(seed) ^ np.uint64(0xA5A5A5A5A5A5A5A5)))
    pad = (-n) % 8
    if pad:
        padded = np.zeros(n + pad, dtype=np.uint8)
        padded[:n] = buf
        buf = padded
    return _hash_words(buf.view(np.uint64), n, seed)


def padded_sample_buffer(count: int) -> np.ndarray:
    """A zeroed ``uint8`` buffer of ``count`` bytes padded to a word multiple.

    Gather sampled bytes into ``buf[:count]`` and hash with
    :func:`hash_padded_buffer`; the result is bit-identical to
    ``hash_bytes(buf[:count])`` without the extra pad-and-copy pass.
    """
    return np.zeros(count + ((-count) % 8), dtype=np.uint8)


def hash_padded_buffer(buf: np.ndarray, count: int, seed: int = 0,
                       function: str = "numpy") -> int:
    """Hash ``buf[:count]`` where ``buf`` came from :func:`padded_sample_buffer`.

    For the vectorised ``"numpy"`` hash the already-padded buffer is mixed in
    place (one pass, no copy); other hash functions fall back to slicing.
    """
    if count == 0:
        return HASH_FUNCTIONS[function](np.empty(0, dtype=np.uint8), seed)
    if function == "numpy":
        return _hash_words(buf.view(np.uint64), count, seed)
    return HASH_FUNCTIONS[function](buf[:count], seed)


def combine_digests(digests: "list[int] | tuple[int, ...]", seed: int = 0) -> int:
    """Order- and content-sensitive splitmix64 combination of 64-bit digests.

    Used by the ``"digest"`` key pipeline: each task input contributes the
    hash of its own sampled bytes and the composite chains them with their
    ordinal position, so swapping two inputs or changing any byte of any
    input changes the composite key.
    """
    with np.errstate(over="ignore"):
        acc = splitmix64(np.uint64(seed & _MASK64) + _SPLITMIX_C2)
        for ordinal, digest in enumerate(digests):
            lane = (np.uint64(digest & _MASK64) + np.uint64(ordinal + 1) * _SPLITMIX_C1)
            acc = splitmix64(np.uint64(acc) ^ lane)
    return int(acc)


#: Quantization grid for canonical sampling fractions: 2^-20 steps cover the
#: whole Dynamic-ATM ladder (min p = 2^-15) with headroom to spare.
_P_QUANT_BITS = 20


def canonical_p(p: float) -> int:
    """Canonical quantized representation of a sampling fraction.

    THT entries must never fail to match because ``p`` was recomputed through
    a different floating-point path (e.g. the Dynamic-ATM trainer doubling
    ``p0`` versus the policy reading a stored ladder value).  Quantizing to a
    2^-20 grid makes equality robust to sub-grid float jitter while keeping
    every ladder step (2^-15 ... 1.0) distinct.
    """
    if p >= 1.0:
        return 1 << _P_QUANT_BITS
    return max(1, int(round(p * (1 << _P_QUANT_BITS))))


def hash_sampled_bytes(
    data: BytesLike,
    indices: np.ndarray,
    seed: int = 0,
    function: str = "numpy",
) -> int:
    """Hash only the bytes of ``data`` selected by ``indices``.

    ``indices`` is the prefix of the stored shuffled index vector described in
    Section III-B of the paper; gathering then hashing matches the paper's
    "selected bytes are served to the hash key generator".
    """
    buf = _as_uint8(data)
    if indices.size == 0:
        sampled: BytesLike = np.empty(0, dtype=np.uint8)
    else:
        sampled = buf[indices]
    return HASH_FUNCTIONS[function](sampled, seed)


#: Registry of usable whole-buffer hash functions, keyed by config name.
HASH_FUNCTIONS = {
    "numpy": hash_bytes,
    "lookup3": jenkins_lookup3,
    "one_at_a_time": lambda data, seed=0: jenkins_one_at_a_time(data, seed),
}
