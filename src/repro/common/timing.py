"""Small timing utilities shared by the threaded executor and the harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Stopwatch", "Timer", "timed"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch: total seconds across ``start``/``stop`` pairs."""

    total: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        elapsed = time.perf_counter() - self._started_at
        self.total += elapsed
        self._started_at = None
        return elapsed

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def reset(self) -> None:
        self.total = 0.0
        self._started_at = None


@dataclass
class Timer:
    """One-shot wall-clock timer with a context-manager interface."""

    elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._t0


@contextmanager
def timed() -> Iterator[Timer]:
    """``with timed() as t: ...`` then read ``t.elapsed``."""
    timer = Timer()
    with timer:
        yield timer
