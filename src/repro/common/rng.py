"""Deterministic random-number helpers.

Everything stochastic in the reproduction (workload generation, index
shuffles, work-stealing victims) derives from named, seeded generators so
experiments are bit-reproducible across runs and machines.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "generator_for", "spawn_generators"]


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a 64-bit child seed from a root seed and a name path.

    Uses BLAKE2b over the textual representation so the mapping is stable
    across Python versions and processes (unlike ``hash()``).
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest(), "little")


def generator_for(root_seed: int, *names: object) -> np.random.Generator:
    """A NumPy Generator deterministically derived from ``root_seed/names``."""
    return np.random.default_rng(derive_seed(root_seed, *names))


def spawn_generators(
    root_seed: int, count: int, *names: object
) -> list[np.random.Generator]:
    """``count`` independent generators under the same name path."""
    return [generator_for(root_seed, *names, i) for i in range(count)]
