"""String-keyed component registries (executors, schedulers, ATM policies).

The public Session API (:mod:`repro.session`) selects execution backends,
ready-queue schedulers and ATM policies by *name* (``executor="process"``,
``policy="dynamic"``).  The name -> factory mappings live here, at the bottom
of the layering, so that

* configuration objects (:mod:`repro.common.config`) can validate names
  without importing the runtime or ATM layers, and
* new backends (e.g. the planned network-transport executor, DESIGN.md §4.3)
  can be plugged in by calling ``register(...)`` — no call site changes.

Each :class:`Registry` is born knowing its *builtin* names so that config
validation works even before the module providing the factories has been
imported; the factories themselves are installed when
:mod:`repro.runtime.executor`, :mod:`repro.runtime.scheduler` and
:mod:`repro.atm.policy` are imported (``Registry.factory`` imports the
providing module on demand, so lookups never race the import order).
"""

from __future__ import annotations

import importlib
import threading
from typing import Callable, Iterable, Optional

from repro.common.exceptions import ConfigurationError

__all__ = [
    "Registry",
    "EXECUTORS",
    "SCHEDULERS",
    "POLICIES",
]


class Registry:
    """A named, thread-safe ``name -> factory`` mapping with builtin seeding."""

    def __init__(
        self,
        kind: str,
        builtins: Iterable[str] = (),
        provider_module: Optional[str] = None,
    ) -> None:
        self.kind = kind
        #: Module whose import installs the builtin factories.
        self._provider_module = provider_module
        self._builtin_names = tuple(builtins)
        self._factories: dict[str, Callable] = {}
        self._names: set[str] = set(builtins)
        self._lock = threading.Lock()

    # -- registration ----------------------------------------------------------
    def register(self, name: str, factory: Callable, *, replace: bool = False) -> None:
        """Install ``factory`` under ``name`` (the extension hook).

        Builtin names may only be replaced with ``replace=True``; this keeps a
        plugin from silently shadowing e.g. the ``"process"`` backend.
        """
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"{self.kind} name must be a non-empty string")
        with self._lock:
            if not replace and name in self._names:
                raise ConfigurationError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass replace=True to override it"
                )
            self._factories[name] = factory
            self._names.add(name)

    def unregister(self, name: str) -> None:
        """Remove a plugin registration (builtins cannot be removed)."""
        if name in self._builtin_names:
            raise ConfigurationError(f"cannot unregister builtin {self.kind} {name!r}")
        with self._lock:
            self._factories.pop(name, None)
            self._names.discard(name)

    # -- lookup ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._names

    def names(self) -> tuple[str, ...]:
        """All registered names, builtins first, plugins alphabetically."""
        plugins = sorted(self._names - set(self._builtin_names))
        return self._builtin_names + tuple(plugins)

    def factory(self, name: str) -> Callable:
        """Resolve ``name`` to its factory, importing the provider if needed."""
        factory = self._factories.get(name)
        if factory is None and self._provider_module is not None:
            importlib.import_module(self._provider_module)
            factory = self._factories.get(name)
        if factory is None:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; known: {', '.join(self.names())}"
            )
        return factory

    def validate_name(self, name: str, field: str) -> None:
        """Raise :class:`ConfigurationError` naming ``field`` on a bad name."""
        if name not in self._names:
            raise ConfigurationError(
                f"{field}: unknown {self.kind} {name!r}; "
                f"known: {', '.join(self.names())}"
            )


#: Execution backends (DESIGN.md §4); factories take (config, engine, sim_config).
EXECUTORS = Registry(
    "executor",
    builtins=("serial", "threaded", "process", "simulated", "network"),
    provider_module="repro.runtime.executor",
)

#: Ready-queue policies; factories take (config,).
SCHEDULERS = Registry(
    "scheduler",
    builtins=("fifo", "lifo", "work_stealing"),
    provider_module="repro.runtime.scheduler",
)

#: ATM operating policies; factories take (config, p).
POLICIES = Registry(
    "policy",
    builtins=("none", "static", "dynamic", "fixed_p"),
    provider_module="repro.atm.policy",
)
