"""The Session facade: one declarative entry point for a whole run.

A :class:`Session` owns the assembly of every moving part the paper's
programming model assumes — the memoization engine (policy + THT + IKT), the
execution backend, the ready-queue scheduler and the task dependence graph —
from a single :class:`~repro.session.config.ReproConfig` tree, and exposes
the OmpSs-style task-declaration surface on top:

>>> import numpy as np
>>> from repro.session import Session, In, Out
>>> with Session(executor="serial") as s:
...     @s.task(memoizable=True)
...     def saxpy(x: In, y: Out, a):
...         y[:] = a * x
...     x = np.arange(4, dtype=np.float64); y = np.zeros(4)
...     _ = saxpy(x, y, 2.0)
...     _ = s.wait_all()
>>> y.tolist()
[0.0, 2.0, 4.0, 6.0]

Data accesses are declared either by annotating parameters with ``In`` /
``Out`` / ``InOut`` (as above) or explicitly by parameter name
(``@s.task(ins=("x",), outs=("y",))``); the runtime derives the dependence
edges and the ATM engine derives the hash-key inputs from the same
declaration, exactly like an OmpSs ``depend`` clause.  Backends, schedulers
and ATM policies are selected by registry name (``executor="process"``,
``policy="dynamic"``), so plugged-in backends work here without changes
(:mod:`repro.session.registry`).
"""

from __future__ import annotations

import functools
import inspect
import pickle
import sys
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.common.config import RuntimeConfig
from repro.common.exceptions import (
    ConfigurationError,
    RuntimeStateError,
    TaskDefinitionError,
    THTStoreCorruptError,
    THTStoreError,
    THTStoreUnavailableError,
)
from repro.runtime.data import DataAccess, In, InOut, Out
from repro.runtime.executor import BaseExecutor, RunResult, build_executor
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.task import Task, TaskType
from repro.session.config import ReproConfig

__all__ = ["Session"]

#: Annotation markers accepted for access inference, by bare name (string
#: annotations appear when the task module uses ``from __future__ import
#: annotations``).
_ACCESS_MARKERS: dict[str, Callable] = {"In": In, "Out": Out, "InOut": InOut}


def _marker_for(annotation: Any) -> Optional[Callable]:
    """Map a parameter annotation to In/Out/InOut, else ``None``."""
    if annotation in (In, Out, InOut):
        return annotation
    if isinstance(annotation, str):
        return _ACCESS_MARKERS.get(annotation.split(".")[-1].strip())
    return None


def _resolve_task_body(module: str, qualname: str) -> "_TaskBody":
    """Unpickle helper: re-resolve a decorated task body by name.

    The name resolves to the ``@session.task`` *wrapper* (it shadows the
    original function at module scope); the raw body hangs off its
    ``__wrapped__`` attribute.
    """
    import importlib

    obj: Any = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return _TaskBody(getattr(obj, "__wrapped__", obj))


class _TaskBody:
    """Callable wrapper for a task body that stays picklable once decorated.

    ``@session.task`` rebinds the function's module-level name to the
    submitting wrapper, so pickling the raw function for the process backend
    would fail with "not the same object".  This proxy calls the body
    directly in-process and pickles by (module, qualname), resolving through
    the wrapper's ``__wrapped__`` on the worker side.  Bodies that are not
    module-resolvable (lambdas, closures) still fail at dispatch with the
    process backend's explanatory error, exactly like undecorated ones.
    """

    __slots__ = ("function",)

    def __init__(self, function: Callable) -> None:
        self.function = function

    def __call__(self, *args, **kwargs):
        return self.function(*args, **kwargs)

    @property
    def __name__(self) -> str:
        return getattr(self.function, "__name__", "task_body")

    def __reduce__(self):
        # Fail at dispatch in the parent (the process backend turns this into
        # its explanatory error) instead of killing a worker that cannot
        # resolve the name at unpickle time: prove resolvability here, the
        # same way the worker will attempt it.  Catches local functions
        # ('<locals>'), lambdas ('<lambda>') and rebound/deleted names alike.
        fn = self.function
        obj: Any = sys.modules.get(fn.__module__)
        for part in fn.__qualname__.split("."):
            obj = getattr(obj, part, None)
        if obj is not fn and getattr(obj, "__wrapped__", None) is not fn:
            raise pickle.PicklingError(
                f"task body {fn.__qualname__!r} is not resolvable as a "
                f"module-level name in {fn.__module__!r}; the process backend "
                f"needs module-level task bodies (no lambdas/closures)"
            )
        return (_resolve_task_body, (fn.__module__, fn.__qualname__))


class _TaskDeclaration:
    """Resolved access declaration of one ``@session.task`` function."""

    def __init__(
        self,
        fn: Callable,
        ins: Sequence[str] | str,
        outs: Sequence[str] | str,
        inouts: Sequence[str] | str,
    ) -> None:
        self.signature = inspect.signature(fn)
        modes: dict[str, Callable] = {}
        for names, factory, label in (
            (ins, In, "ins"),
            (outs, Out, "outs"),
            (inouts, InOut, "inouts"),
        ):
            if isinstance(names, str):
                names = (names,)
            for param in names:
                if param not in self.signature.parameters:
                    raise TaskDefinitionError(
                        f"{label}: {fn.__name__}() has no parameter {param!r}"
                    )
                if param in modes:
                    raise TaskDefinitionError(
                        f"parameter {param!r} of {fn.__name__}() is declared "
                        f"in more than one access clause"
                    )
                modes[param] = factory
        annotations = getattr(fn, "__annotations__", {})
        for param, annotation in annotations.items():
            if param == "return":
                continue
            factory = _marker_for(annotation)
            if factory is None:
                continue
            if param in modes and modes[param] is not factory:
                raise TaskDefinitionError(
                    f"parameter {param!r} of {fn.__name__}() has conflicting "
                    f"access declarations (annotation vs ins/outs/inouts)"
                )
            modes.setdefault(param, factory)
        if not modes:
            raise TaskDefinitionError(
                f"task {fn.__name__}() declares no data accesses; annotate "
                f"parameters with In/Out/InOut or pass ins=/outs=/inouts="
            )
        # Accesses in parameter order, matching a hand-written accesses list.
        self.modes = {
            name: modes[name]
            for name in self.signature.parameters
            if name in modes
        }
        # Fast re-submission path: iterative apps call the same task type
        # thousands of times with all-positional arguments, and
        # ``Signature.bind`` dominates that path.  When every parameter is
        # plain positional-or-keyword, a fully positional call maps each
        # declared access to a fixed argument index.
        parameters = list(self.signature.parameters.values())
        self._positional_ok = all(
            p.kind is inspect.Parameter.POSITIONAL_OR_KEYWORD for p in parameters
        )
        index_of = {p.name: i for i, p in enumerate(parameters)}
        self._positional_plan = [
            (index_of[name], factory, name) for name, factory in self.modes.items()
        ]
        self._n_params = len(parameters)

    def build_accesses(self, args: tuple, kwargs: dict) -> list[DataAccess]:
        if self._positional_ok and not kwargs and len(args) == self._n_params:
            return [
                factory(args[index], name=name)
                for index, factory, name in self._positional_plan
            ]
        bound = self.signature.bind(*args, **kwargs)
        bound.apply_defaults()
        return [
            factory(bound.arguments[param], name=param)
            for param, factory in self.modes.items()
        ]


class Session:
    """Declarative front door to the runtime + ATM + executor assembly.

    Parameters
    ----------
    config:
        A :class:`ReproConfig`, a nested dict, a ``.toml``/``.json`` path or
        ``None`` (all defaults).
    executor:
        Registry name overriding ``config.runtime.executor`` — or an already
        constructed :class:`BaseExecutor` for full manual control.
    scheduler:
        Registry name overriding ``config.runtime.scheduler``.
    policy:
        Registry name overriding ``config.atm.mode`` — or an
        :class:`~repro.atm.policy.ATMPolicy` instance.
    engine:
        An explicit memoization engine, bypassing policy assembly (used by
        harnesses that pre-build engines; ``None`` + ``mode == "none"`` runs
        without memoization).
    cores / p / tracing:
        Shorthand overrides for ``runtime.num_threads``, ``atm.p`` and
        ``runtime.enable_tracing``.

    Lifecycle: ``submit``/task calls are allowed until :meth:`finish`;
    :meth:`wait_all` is the intermediate barrier; leaving a ``with`` block
    calls :meth:`finish` (or, on an in-flight exception, :meth:`close`) so
    executor resources — worker pools, shared-memory segments — are released
    on every path.

    When ``atm.tht_store`` names a ``file://`` snapshot or ``tcp://`` cache
    shard, the session warm-starts its THT from the store on open (falling
    back to a cold table, with a ``RuntimeWarning``, if the store is corrupt
    or unreachable — ``Session.warm_started`` reports which happened) and
    publishes the run's new commits back on :meth:`finish`.
    """

    def __init__(
        self,
        config: "ReproConfig | Mapping | str | Path | None" = None,
        *,
        executor: "str | BaseExecutor | None" = None,
        scheduler: Optional[str] = None,
        policy: Any = None,
        engine: Any = None,
        cores: Optional[int] = None,
        p: Optional[float] = None,
        tracing: Optional[bool] = None,
    ) -> None:
        cfg = ReproConfig.coerce(config)
        runtime_overrides: dict[str, Any] = {}
        atm_overrides: dict[str, Any] = {}
        if isinstance(executor, str):
            runtime_overrides["executor"] = executor
        if scheduler is not None:
            runtime_overrides["scheduler"] = scheduler
        if cores is not None:
            runtime_overrides["num_threads"] = cores
        if tracing is not None:
            runtime_overrides["enable_tracing"] = tracing
        if isinstance(policy, str):
            atm_overrides["mode"] = policy
        if p is not None:
            atm_overrides["p"] = p
        if runtime_overrides or atm_overrides:
            cfg = cfg.with_overrides(runtime=runtime_overrides, atm=atm_overrides)
        self.config = cfg
        if engine is not None and (policy is not None or p is not None):
            # A pre-built engine carries its policy and sampling fraction;
            # silently ignoring the overrides would misreport the run.
            raise ConfigurationError(
                "policy=/p= overrides do not apply to a pre-built engine"
            )
        if policy == "fixed_p" and p is None:
            # Via the kwarg path an omitted p would silently fall back to the
            # config default (1.0 = exact memoization); a declarative config
            # tree states atm.p explicitly instead.
            raise ConfigurationError(
                "policy='fixed_p' requires an explicit p= override"
            )

        if executor is not None and not isinstance(executor, str):
            if runtime_overrides:
                # cores=/scheduler=/tracing= describe how to *build* a
                # backend; they cannot retrofit an already-built instance,
                # and silently ignoring them would misreport the run.
                raise ConfigurationError(
                    f"{', '.join(sorted(runtime_overrides))}: runtime "
                    f"overrides do not apply to a pre-built executor instance"
                )
            self.executor: BaseExecutor = executor
            if executor.engine is not None:
                # The instance already carries an engine; a *different*
                # explicit engine/policy would silently lose either the run's
                # behaviour or its statistics — reject the ambiguity.
                if (
                    (engine is not None and engine is not executor.engine)
                    or policy is not None
                    or p is not None
                ):
                    raise ConfigurationError(
                        "the executor instance already carries an engine; "
                        "pass engine=/policy=/p= only with engine-less "
                        "executors"
                    )
                self.engine = executor.engine
            else:
                self.engine = self._assemble_engine(
                    cfg, policy, engine, num_threads=executor.config.num_threads
                )
                self._reject_dangling_p(p)
                if self.engine is not None:
                    executor.engine = self.engine
        else:
            self.engine = self._assemble_engine(
                cfg, policy, engine, num_threads=cfg.runtime.num_threads
            )
            # Checked before build_executor so a config error never abandons
            # a freshly spawned worker pool.
            self._reject_dangling_p(p)
            self.executor = build_executor(
                cfg.runtime, engine=self.engine, sim_config=cfg.simulation
            )
        self.graph = TaskDependenceGraph(
            on_ready=self.executor.notify_ready,
            on_ready_batch=self.executor.notify_ready_batch,
        )
        # Persistent memoization tier (DESIGN.md §9): warm-start the THT from
        # the configured store and flush this run's commits on finish().
        self._tht_store = None
        self.warm_started = False
        if cfg.atm.tht_store:
            self._tht_store = self._open_tht_store(cfg.atm.tht_store)
        self._closed = False
        self._drained = False
        self._drain_aborted = ""  # exception class name once a drain fails
        self._submitted = 0
        self._batch_buffer: Optional[list[Task]] = None

    # -- persistent THT store (DESIGN.md §9) --------------------------------------
    def _open_tht_store(self, url: str):
        """Open ``atm.tht_store`` and warm-start the engine's THT from it.

        Failure semantics: a corrupt file or unreachable shard degrades to a
        cold start with a ``RuntimeWarning`` — a damaged cache must never
        take down the computation it was meant to accelerate.  The journal is
        enabled *after* the restore merge, so warm-started entries are never
        re-published by this session's flush.
        """
        if self.engine is None:
            # Raised before any submission, but the executor (and a possible
            # worker pool) already exists — release it on the error path.
            self.executor.close()
            raise ConfigurationError(
                "atm.tht_store requires a memoization engine (set atm.mode "
                "or pass policy=)"
            )
        from repro.atm.store import open_store

        try:
            store = open_store(url, self.config.atm)
        except THTStoreUnavailableError as exc:
            warnings.warn(
                f"THT store {url} unavailable, cold-starting: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        try:
            delta = store.load()
        except THTStoreCorruptError as exc:
            # Keep the store attached: the finish() flush rewrites the
            # damaged file with a fresh snapshot (FileTHTStore self-heals).
            warnings.warn(
                f"THT store {url} unreadable, cold-starting: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            delta = None
        except THTStoreUnavailableError as exc:
            store.close()
            warnings.warn(
                f"THT store {url} dropped during warm-start, cold-starting: "
                f"{exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        if delta and delta.get("entries"):
            self.engine.tht.merge(delta, journal=False)
            self.warm_started = True
        self.engine.enable_delta_snapshots()
        return store

    def _flush_tht_store(self) -> None:
        """Publish this run's THT commits to the store and release it."""
        store, self._tht_store = self._tht_store, None
        if store is None:
            return
        try:
            if self.engine is not None:
                store.publish(self.engine.tht.snapshot(reset=True))
        except THTStoreError as exc:
            warnings.warn(
                f"THT store {store.url} flush failed; this run's entries "
                f"were not persisted: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
        finally:
            store.close()

    def _reject_dangling_p(self, p: Optional[float]) -> None:
        if p is not None and self.engine is None:
            raise ConfigurationError(
                "p= has no effect without an ATM policy (pass policy= or set "
                "atm.mode in the config)"
            )

    @staticmethod
    def _assemble_engine(cfg: ReproConfig, policy: Any, engine: Any, num_threads: int):
        """Build the memoization engine from policy/config declarations.

        ``num_threads`` sizes the in-flight key table; it comes from the
        executor that will actually run the tasks.
        """
        if engine is not None:
            return engine
        if policy is None and cfg.atm.mode == "none":
            return None
        # Imported here: the ATM layer itself programs against the runtime,
        # so the engine assembly must not be a static dependency of the
        # runtime's import graph.
        from repro.atm.engine import ATMEngine
        from repro.atm.policy import ATMPolicy, make_policy

        num_threads = max(num_threads, 1)
        if isinstance(policy, ATMPolicy):
            return ATMEngine(
                config=policy.config, policy=policy, num_threads=num_threads
            )
        mode = cfg.atm.mode
        built = make_policy(
            mode, cfg.atm, p=cfg.atm.p if mode == "fixed_p" else None
        )
        return ATMEngine(config=cfg.atm, policy=built, num_threads=num_threads)

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: "ReproConfig | Mapping | str | Path | None",
        **overrides: Any,
    ) -> "Session":
        """Build a session from a config tree / dict / file path.

        Keyword overrides are the same as the constructor's
        (``executor=``, ``policy=``, ``cores=``, ...).
        """
        return cls(config, **overrides)

    # -- program construction ---------------------------------------------------
    def submit(
        self,
        task_type: TaskType,
        function: Callable,
        accesses: Sequence[DataAccess],
        args: tuple = (),
        kwargs: Optional[dict] = None,
    ) -> Task:
        """Create a task and hand it to the dependence system.

        Inside a :meth:`batch` block the task is buffered and handed to the
        graph in one batched submission when the block exits.
        """
        if self._closed:
            raise RuntimeStateError(
                "session already finished: no further tasks can be submitted"
            )
        task = Task(
            task_type=task_type,
            function=function,
            accesses=list(accesses),
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            task_id=self._submitted,
        )
        self._submitted += 1
        if self._batch_buffer is not None:
            self._batch_buffer.append(task)
        else:
            self.graph.add_task(task)
        return task

    def submit_batch(self, specs: "Sequence[Sequence] | Sequence[Mapping]") -> list[Task]:
        """Submit many tasks under one graph-lock acquisition.

        Each spec is either a tuple ``(task_type, function, accesses[, args[,
        kwargs]])`` or a mapping with the same keys as :meth:`submit`.
        Dependence edges, task ids and ready order are identical to calling
        :meth:`submit` once per spec; only the per-task locking, ready-queue
        handoff and notification overhead is amortised across the batch
        (see PERFORMANCE.md "Submission fast path").
        """
        if self._closed:
            raise RuntimeStateError(
                "session already finished: no further tasks can be submitted"
            )
        tasks: list[Task] = []
        for spec in specs:
            if isinstance(spec, Mapping):
                task_type = spec["task_type"]
                function = spec["function"]
                accesses = spec["accesses"]
                args = spec.get("args", ())
                kwargs = spec.get("kwargs")
            else:
                task_type, function, accesses = spec[0], spec[1], spec[2]
                args = spec[3] if len(spec) > 3 else ()
                kwargs = spec[4] if len(spec) > 4 else None
            tasks.append(Task(
                task_type=task_type,
                function=function,
                accesses=list(accesses),
                args=tuple(args),
                kwargs=dict(kwargs or {}),
                task_id=self._submitted,
            ))
            self._submitted += 1
        if self._batch_buffer is not None:
            self._batch_buffer.extend(tasks)
        else:
            self.graph.add_tasks(tasks)
        return tasks

    @contextmanager
    def batch(self):
        """Buffer ``@s.task`` calls / :meth:`submit` into one batched handoff.

        >>> import numpy as np
        >>> from repro.session import Session, In, Out
        >>> with Session(executor="serial") as s:
        ...     @s.task(memoizable=False)
        ...     def scale(x: In, y: Out):
        ...         y[:] = 2 * x
        ...     xs = [np.ones(4) for _ in range(8)]
        ...     ys = [np.zeros(4) for _ in range(8)]
        ...     with s.batch():
        ...         for x, y in zip(xs, ys):
        ...             _ = scale(x, y)
        ...     _ = s.wait_all()
        >>> float(ys[0][0])
        2.0

        Tasks submitted inside the block reach the dependence graph when the
        block exits (one lock acquisition, one batched ready notification).
        If the block raises, the buffered tasks are discarded.  Nesting is
        not supported.
        """
        if self._batch_buffer is not None:
            raise RuntimeStateError("session batch blocks cannot be nested")
        buffer: list[Task] = []
        self._batch_buffer = buffer
        try:
            yield self
        except BaseException:
            # Discard: half-built iterations must not enter the graph.
            self._submitted -= len(buffer)
            raise
        finally:
            self._batch_buffer = None
        self.graph.add_tasks(buffer)

    def task(
        self,
        fn: Optional[Callable] = None,
        *,
        ins: Sequence[str] | str = (),
        outs: Sequence[str] | str = (),
        inouts: Sequence[str] | str = (),
        name: Optional[str] = None,
        memoizable: bool = False,
        cost_model: Optional[Callable] = None,
        tau_max: Optional[float] = None,
        l_training: Optional[int] = None,
    ) -> Callable:
        """Declare a task type: the Python analogue of an OmpSs pragma.

        The decorated function's calls submit tasks into this session; data
        accesses come from ``In``/``Out``/``InOut`` parameter annotations
        and/or the explicit ``ins=``/``outs=``/``inouts=`` parameter-name
        clauses.  ``memoizable=True`` is the programmer opt-in the paper
        requires (Section III-E); ``cost_model``/``tau_max``/``l_training``
        forward to the :class:`~repro.runtime.task.TaskType`.

        The created task type is exposed as ``fn.task_type`` and the raw
        body as ``fn.__wrapped__`` (call it to run without submitting).
        """

        def decorate(function: Callable) -> Callable:
            declaration = _TaskDeclaration(function, ins, outs, inouts)
            type_kwargs: dict[str, Any] = {}
            if cost_model is not None:
                type_kwargs["cost_model"] = cost_model
            task_type = TaskType(
                name=name or function.__name__,
                memoizable=memoizable,
                tau_max=tau_max,
                l_training=l_training,
                **type_kwargs,
            )

            body = _TaskBody(function)

            @functools.wraps(function)
            def wrapper(*args, **kwargs) -> Task:
                accesses = declaration.build_accesses(args, kwargs)
                return self.submit(
                    task_type, body, accesses=accesses, args=args, kwargs=kwargs
                )

            wrapper.task_type = task_type  # type: ignore[attr-defined]
            wrapper.declaration = declaration  # type: ignore[attr-defined]
            return wrapper

        if fn is not None:
            return decorate(fn)
        return decorate

    # -- barriers and lifecycle ---------------------------------------------------
    def wait_all(self) -> RunResult:
        """Barrier: run every submitted task to completion (``taskwait``)."""
        if self._closed:
            raise RuntimeStateError(
                "session already finished: wait_all() is not available after "
                "finish()/close()"
            )
        if self._drain_aborted:
            # An aborted drain leaves unfinished tasks the scheduler will
            # never hand out again; re-draining would starve or hang.  The
            # partial counters in ``result`` stay readable; only close()
            # (or leaving the ``with`` block) remains.
            raise RuntimeStateError(
                "a previous drain aborted "
                f"({self._drain_aborted}); the session cannot drain again — "
                "read Session.result for the failure records and close"
            )
        try:
            result = self.executor.drain(self.graph)
        except Exception as exc:
            self._drain_aborted = type(exc).__name__
            raise
        finally:
            # Even a failing drain ran the barrier: partial counters in
            # Session.result stay readable for error reporting.
            self._drained = True
        return result

    def finish(self) -> RunResult:
        """Final barrier; afterwards the session rejects new submissions.

        Executor-held resources (the process backend's worker pool and
        shared-memory segments) are released even when the drain raises; the
        returned result stays valid after the release.
        """
        if self._closed:
            raise RuntimeStateError("session already finished")
        try:
            return self.wait_all()
        finally:
            self._closed = True
            try:
                # Entries committed before a failed drain are still valid
                # memoizations — publish what completed on every path.
                self._flush_tht_store()
            finally:
                self.executor.close()

    def close(self) -> None:
        """Release executor resources without draining (error-path teardown).

        The THT store is released *without* publishing: an error-path
        teardown must not flush a half-drained delta over a good snapshot.
        """
        self._closed = True
        store, self._tht_store = self._tht_store, None
        if store is not None:
            store.close()
        self.executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._closed:
            return
        if exc_type is None and not self._drain_aborted:
            self.finish()
        else:
            # An exception is unwinding (or an earlier drain already aborted
            # and the caller handled it): do not try to drain, but never
            # leak the worker pool / shared segments either.
            self.close()

    # -- introspection ------------------------------------------------------------
    @property
    def task_count(self) -> int:
        return self.graph.task_count

    @property
    def result(self) -> RunResult:
        """Aggregate result of the drains run so far.

        Raises :class:`RuntimeStateError` until a barrier has actually run —
        reading stats from a session that never drained is a bug, not an
        empty result.
        """
        if not self._drained:
            raise RuntimeStateError(
                "no result yet: run wait_all() or finish() before reading "
                "Session.result"
            )
        return self.executor.result()

    @property
    def stats(self) -> dict:
        """ATM statistics snapshot (empty when no engine is installed)."""
        if self.engine is None or not hasattr(self.engine, "stats"):
            return {}
        return self.engine.stats.snapshot()

    def describe(self) -> str:
        engine = "none"
        if self.engine is not None:
            policy = getattr(self.engine, "policy", None)
            engine = policy.describe() if policy is not None else "custom"
        return (
            f"Session(executor={type(self.executor).__name__}, "
            f"scheduler={self.config.runtime.scheduler!r}, "
            f"cores={self.config.runtime.num_threads}, atm={engine})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
