"""Public registration hooks of the Session API.

Future backends plug into the Session assembly path by name, without any
call-site changes — registering a name immediately makes it a valid
``RuntimeConfig.executor`` / ``RuntimeConfig.scheduler`` / ``ATMConfig.mode``
value, a valid ``Session(executor=..., policy=...)`` argument and a valid
config-file/env value:

>>> from repro.session import (
...     register_executor, unregister_executor, available_executors,
... )
>>> from repro.runtime.executor import SerialExecutor
>>> register_executor(
...     "loopback",
...     lambda config, engine, sim_config: SerialExecutor(config=config, engine=engine),
... )
>>> "loopback" in available_executors()
True
>>> unregister_executor("loopback")

Factory signatures
------------------
* executor: ``factory(config: RuntimeConfig, engine, sim_config) -> BaseExecutor``
* scheduler: ``factory(config: RuntimeConfig) -> Scheduler``
* policy: ``factory(config: ATMConfig | None, p: float | None) -> ATMPolicy``

This is the seam the planned network-transport backend lands on
(DESIGN.md §4.3): it will ship a module calling ``register_executor("network",
...)`` and every existing harness — figures, bench, examples — can select it
from config alone.
"""

from __future__ import annotations

from typing import Callable

from repro.common.registry import EXECUTORS, POLICIES, SCHEDULERS

__all__ = [
    "register_executor",
    "register_scheduler",
    "register_policy",
    "unregister_executor",
    "unregister_scheduler",
    "unregister_policy",
    "available_executors",
    "available_schedulers",
    "available_policies",
]


def register_executor(name: str, factory: Callable, *, replace: bool = False) -> None:
    """Register an execution backend under ``name`` (see module docstring)."""
    EXECUTORS.register(name, factory, replace=replace)


def register_scheduler(name: str, factory: Callable, *, replace: bool = False) -> None:
    """Register a ready-queue scheduler under ``name``."""
    SCHEDULERS.register(name, factory, replace=replace)


def register_policy(name: str, factory: Callable, *, replace: bool = False) -> None:
    """Register an ATM operating policy under ``name``."""
    POLICIES.register(name, factory, replace=replace)


def unregister_executor(name: str) -> None:
    """Remove a plugin backend (builtins cannot be removed)."""
    EXECUTORS.unregister(name)


def unregister_scheduler(name: str) -> None:
    SCHEDULERS.unregister(name)


def unregister_policy(name: str) -> None:
    POLICIES.unregister(name)


def available_executors() -> tuple[str, ...]:
    """All selectable executor names, builtins first."""
    return EXECUTORS.names()


def available_schedulers() -> tuple[str, ...]:
    return SCHEDULERS.names()


def available_policies() -> tuple[str, ...]:
    return POLICIES.names()
