"""Public Session API: one declarative entry point for a whole run.

This package is the stable front door of the reproduction — the OmpSs-style
ergonomics the paper assumes, without hand-assembling engines, policies and
executors:

>>> from repro.session import Session, ReproConfig
>>> cfg = ReproConfig.from_dict({
...     "runtime": {"executor": "simulated", "num_threads": 8},
...     "atm": {"mode": "static"},
... })
>>> with Session(cfg) as s:
...     pass  # declare tasks with @s.task(...), then s.wait_all()

Three pieces:

* :class:`Session` (:mod:`repro.session.session`) — owns assembly of engine +
  policy + executor + graph and exposes ``@s.task`` / ``submit`` /
  ``wait_all`` / ``finish``;
* :class:`ReproConfig` (:mod:`repro.session.config`) — the unified
  ``runtime``/``atm``/``simulation`` config tree with dict / TOML / JSON /
  environment round-tripping;
* the registries (:mod:`repro.session.registry`) — ``register_executor`` /
  ``register_scheduler`` / ``register_policy`` extension hooks so future
  backends (e.g. the planned network transport, DESIGN.md §4.3) drop in
  without touching call sites.
"""

from repro.runtime.data import In, InOut, Out
from repro.session.config import ENV_PREFIX, ReproConfig
from repro.session.registry import (
    available_executors,
    available_policies,
    available_schedulers,
    register_executor,
    register_policy,
    register_scheduler,
    unregister_executor,
    unregister_policy,
    unregister_scheduler,
)
from repro.session.session import Session

__all__ = [
    "Session",
    "ReproConfig",
    "ENV_PREFIX",
    "In",
    "Out",
    "InOut",
    "register_executor",
    "register_scheduler",
    "register_policy",
    "unregister_executor",
    "unregister_scheduler",
    "unregister_policy",
    "available_executors",
    "available_schedulers",
    "available_policies",
]
