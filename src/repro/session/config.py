"""The unified, declarative configuration tree of the Session API.

A :class:`ReproConfig` aggregates the four leaf configuration dataclasses —
:class:`~repro.common.config.RuntimeConfig` (``runtime``),
:class:`~repro.common.config.ATMConfig` (``atm``),
:class:`~repro.common.config.SimulationConfig` (``simulation``) and
:class:`~repro.common.config.ServingConfig` (``serving``) — into one
tree that fully describes a run: which backend, how many workers, which ATM
policy with which knobs, the simulated-machine cost model, and the serving
gateway's admission/merge knobs.

The tree round-trips losslessly through three exchange formats:

* **dict**  — ``ReproConfig.from_dict(cfg.to_dict()) == cfg``;
* **file**  — TOML (read via :mod:`tomllib`) and JSON, dispatched on the
  file suffix: ``ReproConfig.from_file("run.toml")`` /
  ``cfg.to_file("run.json")``;
* **env**   — flat ``REPRO_<SECTION>_<FIELD>`` variables:
  ``ReproConfig.from_env(cfg.to_env()) == cfg``, and
  ``ReproConfig.from_env()`` reads ``os.environ`` so deployments can
  override any knob without touching code.

Unknown sections or fields raise
:class:`~repro.common.exceptions.ConfigurationError` naming the offending
field; value errors surface from the leaf dataclasses' own ``validate``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import typing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.common.config import (
    ATMConfig,
    RuntimeConfig,
    ServingConfig,
    SimulationConfig,
)
from repro.common.exceptions import ConfigurationError

__all__ = ["ReproConfig", "ENV_PREFIX"]

#: Default prefix of the flat environment-variable encoding.
ENV_PREFIX = "REPRO_"

_SECTION_TYPES: dict[str, type] = {
    "runtime": RuntimeConfig,
    "atm": ATMConfig,
    "simulation": SimulationConfig,
    "serving": ServingConfig,
}


def _type_hints(cls: type) -> dict[str, Any]:
    """Resolved field type hints (the dataclasses use string annotations)."""
    return typing.get_type_hints(cls)


def _unwrap_optional(hint: Any) -> tuple[Any, bool]:
    """Return ``(inner_type, is_optional)`` for ``Optional[X]`` hints."""
    if typing.get_origin(hint) is typing.Union:
        args = [a for a in typing.get_args(hint) if a is not type(None)]
        if len(args) == 1:
            return args[0], True
    return hint, False


def _coerce_env_value(raw: str, hint: Any, field_name: str) -> Any:
    """Parse one environment-variable string according to the field type."""
    inner, optional = _unwrap_optional(hint)
    text = raw.strip()
    if optional and text.lower() in ("", "none", "null"):
        return None
    try:
        if inner is bool:
            lowered = text.lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"not a boolean: {text!r}")
        if inner is int:
            return int(text)
        if inner is float:
            return float(text)
        return text
    except ValueError as exc:
        raise ConfigurationError(f"{field_name}: cannot parse {raw!r}: {exc}") from exc


def _build_section(section: str, data: Mapping[str, Any]) -> Any:
    """Instantiate one leaf config from a mapping, naming bad fields."""
    cls = _SECTION_TYPES[section]
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"{section}: expected a mapping of fields, got {type(data).__name__}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    for name in data:
        if name not in known:
            raise ConfigurationError(
                f"{section}.{name} is not a recognised {cls.__name__} field"
            )
    try:
        return cls(**dict(data))
    except TypeError as exc:
        raise ConfigurationError(f"{section}: {exc}") from exc


def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    raise ConfigurationError(f"cannot serialise {value!r} to TOML")


@dataclass
class ReproConfig:
    """One declarative description of a whole run (see module docstring)."""

    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    atm: ATMConfig = field(default_factory=ATMConfig)
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)

    # -- dict ----------------------------------------------------------------------
    def to_dict(self) -> dict[str, dict[str, Any]]:
        """Nested plain-dict form (sections of scalar fields)."""
        return {
            section: dataclasses.asdict(getattr(self, section))
            for section in _SECTION_TYPES
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ReproConfig":
        """Build from a (possibly partial) nested dict; unknown keys raise."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"config root must be a mapping, got {type(data).__name__}"
            )
        for section in data:
            if section not in _SECTION_TYPES:
                raise ConfigurationError(
                    f"unknown config section {section!r}; "
                    f"expected one of: {', '.join(_SECTION_TYPES)}"
                )
        return cls(
            **{
                section: _build_section(section, data.get(section, {}))
                for section in _SECTION_TYPES
            }
        )

    # -- file ----------------------------------------------------------------------
    @classmethod
    def from_file(cls, path: "str | Path") -> "ReproConfig":
        """Load a TOML or JSON config file (dispatched on the suffix)."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".toml":
            import tomllib

            try:
                data = tomllib.loads(path.read_text())
            except tomllib.TOMLDecodeError as exc:
                raise ConfigurationError(f"{path}: invalid TOML: {exc}") from exc
        elif suffix == ".json":
            try:
                data = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise ConfigurationError(f"{path}: invalid JSON: {exc}") from exc
        else:
            raise ConfigurationError(
                f"{path}: unsupported config format {suffix!r} (use .toml or .json)"
            )
        return cls.from_dict(data)

    def to_file(self, path: "str | Path") -> Path:
        """Write the config as TOML or JSON (dispatched on the suffix).

        ``None`` fields are omitted from TOML (it has no null); loading the
        file back restores them to their defaults, which — because only
        Optional-typed fields can hold ``None`` and their defaults are
        ``None`` — round-trips exactly.
        """
        path = Path(path)
        suffix = path.suffix.lower()
        data = self.to_dict()
        if suffix == ".toml":
            lines: list[str] = []
            for section, values in data.items():
                lines.append(f"[{section}]")
                for name, value in values.items():
                    if value is None:
                        continue
                    lines.append(f"{name} = {_toml_scalar(value)}")
                lines.append("")
            path.write_text("\n".join(lines))
        elif suffix == ".json":
            path.write_text(json.dumps(data, indent=2) + "\n")
        else:
            raise ConfigurationError(
                f"{path}: unsupported config format {suffix!r} (use .toml or .json)"
            )
        return path

    # -- environment ------------------------------------------------------------------
    def to_env(self, prefix: str = ENV_PREFIX) -> dict[str, str]:
        """Flat ``PREFIX_SECTION_FIELD -> str`` encoding (``None`` omitted)."""
        env: dict[str, str] = {}
        for section, values in self.to_dict().items():
            for name, value in values.items():
                if value is None:
                    continue
                key = f"{prefix}{section}_{name}".upper()
                env[key] = str(value)
        return env

    @classmethod
    def from_env(
        cls,
        env: Optional[Mapping[str, str]] = None,
        prefix: str = ENV_PREFIX,
        base: Optional["ReproConfig"] = None,
    ) -> "ReproConfig":
        """Build from flat environment variables, over ``base``'s values.

        Reads ``os.environ`` when ``env`` is not given.  Unrecognised
        ``PREFIX``-prefixed keys raise, so typos never silently no-op.
        """
        if env is None:
            env = os.environ
        base = base or cls()
        overrides: dict[str, dict[str, Any]] = {s: {} for s in _SECTION_TYPES}
        hints = {s: _type_hints(t) for s, t in _SECTION_TYPES.items()}
        fields_upper = {
            section: {f.name.upper(): f.name for f in dataclasses.fields(t)}
            for section, t in _SECTION_TYPES.items()
        }
        for key, raw in env.items():
            if not key.startswith(prefix):
                continue
            remainder = key[len(prefix):]
            for section in _SECTION_TYPES:
                marker = section.upper() + "_"
                if remainder.startswith(marker):
                    field_upper = remainder[len(marker):]
                    field_name = fields_upper[section].get(field_upper)
                    if field_name is None:
                        raise ConfigurationError(
                            f"{key}: {section}.{field_upper.lower()} is not a "
                            f"recognised {_SECTION_TYPES[section].__name__} field"
                        )
                    overrides[section][field_name] = _coerce_env_value(
                        raw, hints[section][field_name], f"{section}.{field_name}"
                    )
                    break
            else:
                raise ConfigurationError(
                    f"{key}: unknown config section (expected "
                    f"{', '.join(prefix + s.upper() for s in _SECTION_TYPES)}...)"
                )
        merged = base.to_dict()
        for section, values in overrides.items():
            merged[section].update(values)
        return cls.from_dict(merged)

    # -- convenience --------------------------------------------------------------------
    def with_overrides(self, **sections: Mapping[str, Any]) -> "ReproConfig":
        """Copy with per-section field overrides.

        >>> cfg = ReproConfig().with_overrides(runtime={"num_threads": 2})
        >>> cfg.runtime.num_threads
        2
        """
        merged = self.to_dict()
        for section, values in sections.items():
            if section not in _SECTION_TYPES:
                raise ConfigurationError(
                    f"unknown config section {section!r}; "
                    f"expected one of: {', '.join(_SECTION_TYPES)}"
                )
            merged[section].update(values)
        return type(self).from_dict(merged)

    @classmethod
    def coerce(
        cls, source: "ReproConfig | Mapping | str | Path | None"
    ) -> "ReproConfig":
        """Accept a config tree, nested dict, file path or ``None``."""
        if source is None:
            return cls()
        if isinstance(source, cls):
            return source
        if isinstance(source, Mapping):
            return cls.from_dict(source)
        if isinstance(source, (str, Path)):
            return cls.from_file(source)
        raise ConfigurationError(
            f"cannot build a ReproConfig from {type(source).__name__}"
        )
