"""Test-support helpers shipped with the library.

:mod:`repro.testing.faults` is the backend-agnostic fault-injection
harness: picklable misbehaving task bodies plus a session factory that
builds any executor backend with the supervision knobs set, so one fault
matrix can run unchanged against serial, threaded, process and network
drains (DESIGN.md §"Failure semantics").
"""
