"""Backend-agnostic fault-injection harness (DESIGN.md §"Failure semantics").

One fault matrix, four executor backends.  The harness has two halves:

* **Misbehaving task bodies** — module-level (the process and network
  backends pickle task functions by reference) and deliberately boring:
  raise deterministically, raise until the N-th attempt, sleep past the
  task budget, or kill the hosting worker process outright.  Cross-process
  attempt counting uses marker files under a caller-owned directory, the
  only channel all four backends share.
* **A session factory** — :func:`fault_session` builds a
  :class:`~repro.session.Session` over any backend with the supervision
  knobs (``task_timeout_s``, ``task_max_retries``, ``retry_backoff_s``,
  ``drain_timeout_s``, ``on_task_failure``) applied, so a test
  parametrised over backend names exercises the exact same scenario
  everywhere.

Worker-killing (:func:`kill_worker_body`) is only meaningful where the
task runs in a separate *process* — on the in-process backends it would
take the test runner down with it, so :func:`fault_session` refuses the
combination early rather than letting a matrix typo kill pytest.
"""

from __future__ import annotations

import os
import time
from typing import Optional

import numpy as np

from repro.common.config import RuntimeConfig
from repro.common.exceptions import RuntimeStateError

__all__ = [
    "BACKENDS",
    "FAULT_DRAIN_TIMEOUT",
    "square_body",
    "raising_body",
    "flaky_body",
    "wedge_body",
    "kill_worker_body",
    "fault_session",
    "submit_one",
]

#: Backends the fault matrix runs against (simulated replays traces; it
#: never executes user task bodies, so there is nothing to inject into).
BACKENDS = ("serial", "threaded", "process", "network")

#: Hard bound on every harness drain: a hung failure path fails the test
#: loudly instead of stalling the suite.
FAULT_DRAIN_TIMEOUT = 30.0


# -- task bodies (module-level: pickled by reference) --------------------------------
def square_body(src: np.ndarray, dst: np.ndarray) -> None:
    """The healthy control body: ``dst = src ** 2``."""
    dst[:] = src ** 2


def raising_body(src: np.ndarray, dst: np.ndarray) -> None:
    """Deterministic task bug: raises on every attempt."""
    raise ValueError("injected task failure")


def flaky_body(marker_path: str, fail_times: int, src, dst) -> None:
    """Fails the first ``fail_times`` attempts, then succeeds.

    Attempts are counted by appending one byte to ``marker_path`` — a
    plain file, so the count survives worker process boundaries (process
    backend respawns, network endpoint failover) where in-memory counters
    would reset.
    """
    with open(marker_path, "ab") as marker:
        marker.write(b"x")
    if os.path.getsize(marker_path) <= fail_times:
        raise ValueError(
            f"injected flaky failure (attempt {os.path.getsize(marker_path)})"
        )
    dst[:] = src ** 2


def wedge_body(sleep_s: float, src, dst) -> None:
    """Runs ``sleep_s`` of wall-clock before finishing: the wedged task.

    Against a ``task_timeout_s`` below ``sleep_s`` this triggers timeout
    supervision — post-hoc detection on serial/threaded, worker
    kill/exclusion on process/network.
    """
    time.sleep(sleep_s)
    dst[:] = src ** 2


def kill_worker_body(src, dst) -> None:
    """Kills the hosting worker process without cleanup (SIGKILL-like).

    ``os._exit`` skips ``atexit``/queue flushing, so the parent observes a
    dead process mid-chunk — the crash-recovery path, not an error reply.
    Only valid on the process backend (see module docstring).
    """
    os._exit(17)


# -- session factory -----------------------------------------------------------------
def fault_session(
    backend: str,
    *,
    workers: int = 2,
    chunk_size: int = 2,
    task_timeout_s: Optional[float] = None,
    task_max_retries: int = 0,
    retry_backoff_s: float = 0.01,
    on_task_failure: str = "abort",
    drain_timeout_s: float = FAULT_DRAIN_TIMEOUT,
    allow_worker_kill: bool = False,
    net_timeout_s: float = 0.5,
    net_max_retries: int = 2,
):
    """Build a Session over ``backend`` with supervision configured.

    Every knob of the supervision layer is surfaced as a keyword so a
    scenario reads as its configuration.  ``allow_worker_kill`` must be
    set (and ``backend`` must run tasks out-of-process) before a scenario
    may submit :func:`kill_worker_body` — the guard keeps an in-process
    backend from executing ``os._exit`` inside pytest.
    """
    from repro.session import Session

    if backend not in BACKENDS:
        raise RuntimeStateError(
            f"unknown fault-matrix backend {backend!r}; expected one of {BACKENDS}"
        )
    if allow_worker_kill and backend not in ("process",):
        raise RuntimeStateError(
            f"kill_worker_body would kill the test process on the "
            f"{backend!r} backend; only 'process' runs task bodies in "
            "disposable worker processes"
        )
    supervision = dict(
        task_timeout_s=task_timeout_s,
        task_max_retries=task_max_retries,
        retry_backoff_s=retry_backoff_s,
        drain_timeout_s=drain_timeout_s,
        on_task_failure=on_task_failure,
    )
    if backend == "network":
        from repro.runtime.net_executor import NetworkExecutor
        from repro.runtime.net_transport import LoopbackEndpoint

        config = RuntimeConfig(
            executor="network",
            num_threads=workers,
            mp_chunk_size=chunk_size,
            net_timeout_s=net_timeout_s,
            net_max_retries=net_max_retries,
            **supervision,
        )
        endpoints = [LoopbackEndpoint(f"fault-lo/{i}") for i in range(workers)]
        executor = NetworkExecutor(config=config, endpoints=endpoints)
        return Session(executor=executor)
    runtime = dict(
        executor=backend,
        num_threads=workers,
        **supervision,
    )
    if backend == "process":
        runtime["mp_workers"] = workers
        runtime["mp_chunk_size"] = chunk_size
    return Session({"runtime": runtime})


def submit_one(session, body, *extra_args, label: str = "fault"):
    """Submit one ``body(*extra_args, src, dst)`` task; returns ``(src, dst)``."""
    from repro.runtime.data import In, Out
    from repro.runtime.task import TaskType

    src = np.arange(8, dtype=np.float64)
    dst = np.zeros(8)
    session.submit(
        TaskType(label, memoizable=False),
        body,
        accesses=[In(src), Out(dst)],
        args=(*extra_args, src, dst),
    )
    return src, dst
