"""Seeded open-loop traffic generation for the serving gateway.

Serving benchmarks and soak tests need *open-loop* load: request arrival
times are drawn up front from a seeded process (the offered load does not
slow down because the gateway is slow — the property that makes saturation
and fairness measurable), then replayed against a submission surface.

Two arrival processes are provided:

* ``"poisson"`` — independent exponential gaps at ``rate_hz`` (the classic
  open-loop model);
* ``"burst"``  — groups of ``burst_size`` simultaneous arrivals with the
  gaps between groups scaled so the long-run rate is still ``rate_hz``
  (stress for the admission controller's bounded pending pool).

The module also hosts the module-level (hence picklable) task bodies that
the serving tests and benches submit — the same rule as
:mod:`repro.testing.faults`: the process/network pools import task functions
by reference, so nothing here may be a closure or a lambda.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.common.exceptions import WorkloadError

__all__ = [
    "SERVED_APPS",
    "Request",
    "arrival_times",
    "make_plan",
    "replay",
    "scale_block",
    "burn_block",
    "add_blocks",
    "fill_block",
    "accumulate_block",
]

#: The six evaluated applications (registry names) a traffic plan cycles
#: over.  Kept as literals so importing this module never pulls the apps
#: package into workers that only need the task bodies below.
SERVED_APPS = (
    "blackscholes",
    "gauss-seidel",
    "jacobi",
    "kmeans",
    "lu",
    "swaptions",
)


# -- arrival processes ----------------------------------------------------------
def arrival_times(
    n: int,
    rate_hz: float,
    process: str = "poisson",
    seed: int = 0,
    burst_size: int = 8,
) -> np.ndarray:
    """``n`` seeded arrival offsets (seconds, ascending, starting near 0)."""
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    if rate_hz <= 0:
        raise WorkloadError(f"rate_hz must be > 0, got {rate_hz}")
    rng = np.random.default_rng(seed)
    if process == "poisson":
        gaps = rng.exponential(scale=1.0 / rate_hz, size=n)
        return np.cumsum(gaps)
    if process == "burst":
        if burst_size < 1:
            raise WorkloadError(f"burst_size must be >= 1, got {burst_size}")
        n_groups = (n + burst_size - 1) // burst_size
        group_gaps = rng.exponential(scale=burst_size / rate_hz, size=n_groups)
        group_at = np.cumsum(group_gaps)
        return np.repeat(group_at, burst_size)[:n]
    raise WorkloadError(
        f"unknown arrival process {process!r} (use 'poisson' or 'burst')"
    )


@dataclass(frozen=True)
class Request:
    """One planned submission: when, which app, and its workload seed."""

    at_s: float
    app: str
    seed: int


def make_plan(
    n: int,
    rate_hz: float,
    process: str = "poisson",
    seed: int = 0,
    apps: Sequence[str] = SERVED_APPS,
    burst_size: int = 8,
) -> list[Request]:
    """A seeded open-loop plan cycling round-robin over ``apps``.

    Per-request workload seeds are derived from the plan seed, so two plans
    with the same arguments are byte-identical — the bench's reproducibility
    contract.
    """
    if not apps:
        raise WorkloadError("apps must be non-empty")
    offsets = arrival_times(
        n, rate_hz, process=process, seed=seed, burst_size=burst_size
    )
    return [
        Request(
            at_s=float(offsets[i]),
            app=apps[i % len(apps)],
            seed=seed * 1_000_003 + i,
        )
        for i in range(n)
    ]


def replay(
    plan: Sequence[Request],
    dispatch: Callable[[Request], None],
    speed: float = 1.0,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> list[float]:
    """Open-loop replay: dispatch each request at its planned offset.

    Sleeps until each arrival time (scaled by ``1/speed``) and calls
    ``dispatch(request)``; a slow dispatcher makes subsequent requests
    *late*, never *fewer* — that is the open-loop property.  Returns the
    actual dispatch offsets for lateness diagnostics.
    """
    if speed <= 0:
        raise WorkloadError(f"speed must be > 0, got {speed}")
    t0 = clock()
    dispatched: list[float] = []
    for request in plan:
        target = request.at_s / speed
        delay = target - (clock() - t0)
        if delay > 0:
            sleep(delay)
        dispatch(request)
        dispatched.append(clock() - t0)
    return dispatched


# -- picklable task bodies ------------------------------------------------------
def scale_block(src: np.ndarray, dst: np.ndarray, factor: float) -> None:
    """dst = src * factor (the serving bench's unit of work)."""
    dst[:] = src * factor


def burn_block(src: np.ndarray, dst: np.ndarray, passes: int) -> None:
    """``passes`` dependent scale sweeps: compute-dense, byte-light.

    The serving fairness bench needs per-task cost to dominate frame
    shipping without inflating the arena (and its barrier write-backs), so
    it burns CPU over a small block instead of touching a big one.
    """
    dst[:] = src
    for _ in range(passes):
        dst *= 1.0000001


def add_blocks(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
    """out = a + b."""
    out[:] = a + b


def fill_block(out: np.ndarray, value: float) -> None:
    """out = value (wave-1 body of the submit-while-draining tests)."""
    out[:] = value


def accumulate_block(src: np.ndarray, acc: np.ndarray) -> None:
    """acc += src (wave-2 body: depends on wave 1 through src)."""
    acc += src
