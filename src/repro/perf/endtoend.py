"""End-to-end tiny-scale perf runs.

Replays a reduced Figure-3-style experiment (benchmark x ATM mode on the
simulated 8-core machine) and records, per run: wall-clock seconds, simulated
elapsed time, completed tasks per wall second, reuse percentage, ATM memory
footprint, key-cache effectiveness and a determinism checksum of the program
output.  The checksum anchors "unchanged figure outputs" across PRs: it must
stay constant for a given (benchmark, scale, mode, seed) unless a PR
deliberately changes program semantics.
"""

from __future__ import annotations

import time

import numpy as np

from repro.common.hashing import hash_bytes
from repro.evaluation.runner import ExperimentSpec, clear_reference_cache, run_benchmark
from repro.perf.report import safe_ratio

__all__ = ["bench_end_to_end"]

#: The default tiny end-to-end matrix: one redundancy-heavy iterative app
#: (kmeans exercises the digest cache) and one embarrassingly parallel app.
DEFAULT_MATRIX = (
    ("blackscholes", "none"),
    ("blackscholes", "static"),
    ("blackscholes", "dynamic"),
    ("kmeans", "none"),
    ("kmeans", "static"),
    ("kmeans", "dynamic"),
)


def bench_end_to_end(matrix=DEFAULT_MATRIX, scale: str = "tiny", cores: int = 8) -> list[dict]:
    clear_reference_cache()
    results = []
    for benchmark, mode in matrix:
        spec = ExperimentSpec(
            benchmark=benchmark, scale=scale, mode=mode, cores=cores,
            executor="simulated",
        )
        t0 = time.perf_counter()
        result = run_benchmark(spec)
        wall = time.perf_counter() - t0
        output = np.ascontiguousarray(np.asarray(result.output, dtype=np.float64))
        stats = result.atm_stats or {}
        results.append({
            "benchmark": benchmark,
            "mode": mode,
            "scale": scale,
            "cores": cores,
            "wall_s": round(wall, 4),
            "simulated_elapsed_us": round(result.elapsed, 2),
            "tasks_completed": result.tasks_completed,
            "tasks_per_wall_sec": round(safe_ratio(result.tasks_completed, wall), 1),
            "reuse_percent": round(result.reuse_percent, 3),
            "relative_error": float(result.relative_error),
            "memory_overhead_percent": round(result.memory_overhead_percent, 4),
            "key_cache_hits": stats.get("key_cache_hits", 0),
            "key_cache_misses": stats.get("key_cache_misses", 0),
            "digest_cache_hits": stats.get("digest_cache_hits", 0),
            "output_checksum": f"{hash_bytes(output):016x}",
        })
    return results
