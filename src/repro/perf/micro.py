"""Microbenchmarks for the ATM hot paths.

Four operation families dominate a run (see PERFORMANCE.md):

* **keygen** — hash-key computation over (sampled) task inputs; measured
  against the preserved seed implementation
  (:mod:`repro.atm.keygen_reference`) in three scenarios: cold multi-input
  lookups, iterative lookups over unchanged regions (the digest-cache case)
  and iterative lookups where one small input mutates every round (the
  kmeans-centroids case);
* **THT probe** — bucket lookups, hit and miss;
* **dependence analysis** — task submission into the dependence graph;
* **simulator drain** — discrete-event processing throughput.

All timings are wall-clock microseconds per operation, medians over several
repeats, measured with everything functional (real NumPy data, real locks).

Unlike the end-to-end suites (:mod:`repro.perf.endtoend`,
:mod:`repro.perf.process_backend`), which construct their runs through the
Session API, these benchmarks deliberately instantiate runtime internals
(graph, executor, keygen) directly: they time single components below the
public facade.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable

import numpy as np

from repro.atm.keygen import HashKeyGenerator
from repro.atm.keygen_reference import ReferenceKeyGenerator
from repro.atm.tht import TaskHistoryTable
from repro.common.config import ATMConfig, RuntimeConfig, SimulationConfig
from repro.common.hashing import HashKey
from repro.common.rng import generator_for
from repro.perf.report import safe_ratio
from repro.runtime.data import In, InOut, Out
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.simulator import SimulatedExecutor
from repro.runtime.task import Task, TaskType

__all__ = [
    "bench_keygen",
    "bench_tht_probe",
    "bench_dependences",
    "bench_submission",
    "bench_simulator_drain",
]


def _time_us(fn: Callable[[], object], rounds: int, repeats: int = 3) -> float:
    """Median over ``repeats`` of the mean per-call latency of ``fn``."""
    fn()  # warm-up (first call builds shuffles/caches)
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(rounds):
            fn()
        samples.append((time.perf_counter() - t0) / rounds * 1e6)
    return statistics.median(samples)


def _make_task(task_type: TaskType, arrays: list[np.ndarray]) -> Task:
    return Task(
        task_type=task_type,
        function=lambda: None,
        accesses=[In(a) for a in arrays],
        task_id=0,
    )


def bench_keygen(scale: float = 1.0, rounds: int = 40) -> dict:
    """Keygen latency and shuffle memory, optimised vs seed reference.

    ``scale`` multiplies the input sizes (1.0 -> ~4 MiB of multi-input
    data); ``rounds`` is the timed-loop length per repeat.
    """
    rng = generator_for(2017, "perf", "keygen")
    n = max(1024, int((1 << 17) * scale))
    task_type = TaskType("perf_keygen", memoizable=True)
    arrays = [rng.standard_normal(n) for _ in range(4)]
    small = rng.standard_normal(max(256, n // 64))
    total_bytes = sum(a.nbytes for a in arrays)

    cases = []

    def run_case(name: str, p: float, new_gen, ref_gen, new_fn, ref_fn) -> dict:
        new_us = _time_us(new_fn, rounds)
        ref_us = _time_us(ref_fn, rounds)
        case = {
            "name": name,
            "p": p,
            "inputs": 4,
            "total_bytes": int(total_bytes),
            "new_us": round(new_us, 2),
            "ref_us": round(ref_us, 2),
            "speedup": round(ref_us / new_us, 2) if new_us > 0 else float("inf"),
        }
        cases.append(case)
        return case

    # -- cold multi-input lookups (cache-neutral): the zero-copy gather win.
    for p in (0.001, 0.01, 0.1):
        new_gen = HashKeyGenerator(ATMConfig(key_cache=False))
        ref_gen = ReferenceKeyGenerator(ATMConfig())
        task = _make_task(task_type, arrays)
        run_case(
            f"multi_input_cold_p{p}", p, new_gen, ref_gen,
            lambda g=new_gen, t=task, p=p: g.compute(t, p),
            lambda g=ref_gen, t=task, p=p: g.compute(t, p),
        )

    # -- iterative lookups over unchanged regions: the digest-cache win
    #    (kmeans points blocks, stencil halos re-hashed every iteration).
    new_gen = HashKeyGenerator(ATMConfig())
    ref_gen = ReferenceKeyGenerator(ATMConfig())
    task = _make_task(task_type, arrays)
    run_case(
        "multi_input_iterative_unchanged", 0.01, new_gen, ref_gen,
        lambda: new_gen.compute(task, 0.01),
        lambda: ref_gen.compute(task, 0.01),
    )

    # -- iterative lookups with one small mutating input (the centroids
    #    case): big read-only inputs served from the sample cache.
    new_gen = HashKeyGenerator(ATMConfig())
    ref_gen = ReferenceKeyGenerator(ATMConfig())
    mixed = arrays[:3] + [small]
    task = _make_task(task_type, mixed)
    mutating_region = task.accesses[3].region

    def mutate_then(gen):
        small[0] += 1.0
        mutating_region.bump_version()
        return gen.compute(task, 0.01)

    run_case(
        "multi_input_one_mutating", 0.01, new_gen, ref_gen,
        lambda: mutate_then(new_gen),
        lambda: mutate_then(ref_gen),
    )

    # -- shuffle memory: steady-state sampled lookups (every policy below
    #    exact memoization), new truncated uint32 prefix vs seed full int64.
    mem_new = HashKeyGenerator(ATMConfig())
    mem_ref = ReferenceKeyGenerator(ATMConfig())
    mem_task = _make_task(task_type, arrays)
    for p in (0.001, 0.01, 0.1):
        mem_new.compute(mem_task, p)
        mem_ref.compute(mem_task, p)
    new_bytes = mem_new.shuffle_memory_bytes()
    ref_bytes = mem_ref.shuffle_memory_bytes()

    headline = [
        c["speedup"] for c in cases
        if c["name"] in ("multi_input_cold_p0.001", "multi_input_iterative_unchanged")
    ]
    return {
        "cases": cases,
        "shuffle_memory": {
            "new_bytes": int(new_bytes),
            "ref_bytes": int(ref_bytes),
            "reduction": round(ref_bytes / max(1, new_bytes), 2),
        },
        "headline_speedup": round(min(headline), 2),
    }


def bench_tht_probe(entries: int = 2048, rounds: int = 20000) -> dict:
    """THT lookup latency for hits and misses on a populated table."""
    config = ATMConfig(tht_bucket_bits=8, tht_bucket_capacity=128)
    tht = TaskHistoryTable(config)
    rng = generator_for(2017, "perf", "tht")
    outputs = [np.zeros(16)]
    keys = []
    for index in range(entries):
        key = HashKey(value=int(rng.integers(0, 2**63)), p=0.5,
                      sampled_bytes=64, total_bytes=128)
        tht.insert(key, "perf_tht", outputs, producer_index=index)
        keys.append(key)
    hit_keys = keys[:: max(1, len(keys) // 64)]
    miss_key = HashKey(value=(1 << 62) + 12345, p=0.5, sampled_bytes=64, total_bytes=128)

    state = {"i": 0}

    def probe_hit():
        key = hit_keys[state["i"] % len(hit_keys)]
        state["i"] += 1
        return tht.lookup(key, "perf_tht")

    hit_us = _time_us(probe_hit, rounds, repeats=3)
    miss_us = _time_us(lambda: tht.lookup(miss_key, "perf_tht"), rounds, repeats=3)
    return {
        "entries": entries,
        "hit_us": round(hit_us, 3),
        "miss_us": round(miss_us, 3),
        "hit_rate_observed": round(tht.hit_rate, 4),
    }


def bench_dependences(tasks: int = 600) -> dict:
    """Task-submission throughput through the dependence tracker.

    Builds an iterative read-mostly pattern (many readers of one region plus
    per-task outputs, with a reduction task per round) similar to the kmeans
    task graph.
    """
    task_type = TaskType("perf_dep", memoizable=True)
    shared = np.zeros(1024)
    blocks = [np.zeros(256) for _ in range(16)]

    def build() -> float:
        graph = TaskDependenceGraph()
        t0 = time.perf_counter()
        submitted = 0
        while submitted < tasks:
            for block in blocks:
                graph.add_task(Task(
                    task_type=task_type, function=lambda: None,
                    accesses=[In(shared), Out(block)], task_id=-1,
                ))
                submitted += 1
                if submitted >= tasks:
                    break
            else:
                graph.add_task(Task(
                    task_type=task_type, function=lambda: None,
                    accesses=[InOut(shared)], task_id=-1,
                ))
                submitted += 1
        return (time.perf_counter() - t0) / submitted * 1e6

    samples = [build() for _ in range(3)]
    per_task_us = min(samples)  # gated: min, like bench_submission
    return {
        "tasks": tasks,
        "submit_us_per_task": round(per_task_us, 3),
        "tasks_per_sec": round(safe_ratio(1e6, per_task_us), 1),
    }


def bench_submission(tasks: int = 600, batch: int = 64) -> dict:
    """Submission throughput across graph shapes and batch sizes.

    Three access-pattern shapes cover the spectrum the dependence index
    sees in practice:

    * **wide** — every task writes its own block: no edges, pure
      per-task overhead;
    * **chain** — every task ``inout``s one shared buffer: maximal edge
      churn, one predecessor per task;
    * **stencil** — tasks sweep over a ring of blocks reading both
      neighbours (``In(left), In(right), InOut(mine)``): several overlap
      queries and 3 edges per task in steady state.

    Each shape is measured at ``batch=1`` (``graph.add_task`` per task, the
    pre-PR-4 protocol) and at ``batch=<batch>`` (``graph.add_tasks`` chunks:
    one graph-lock acquisition and one batched ready-queue handoff per
    chunk).  A final pair measures the full Session facade — per-call
    ``@s.task`` submission vs ``Session.submit_batch`` — so the public
    batched-submission surface is exercised by the perf suite.
    """
    task_type = TaskType("perf_submit")
    n_blocks = 16
    blocks = [np.zeros(256) for _ in range(n_blocks)]
    own = [np.zeros(64) for _ in range(tasks)]

    def wide_accesses(index: int) -> list:
        return [Out(own[index])]

    def chain_accesses(index: int) -> list:
        return [InOut(blocks[0])]

    def stencil_accesses(index: int) -> list:
        mine = index % n_blocks
        return [
            In(blocks[(mine - 1) % n_blocks]),
            In(blocks[(mine + 1) % n_blocks]),
            InOut(blocks[mine]),
        ]

    def run(accesses_of, chunk: int) -> float:
        graph = TaskDependenceGraph()
        t0 = time.perf_counter()
        if chunk <= 1:
            for index in range(tasks):
                graph.add_task(Task(
                    task_type=task_type, function=lambda: None,
                    accesses=accesses_of(index), task_id=-1,
                ))
        else:
            for lo in range(0, tasks, chunk):
                graph.add_tasks([
                    Task(
                        task_type=task_type, function=lambda: None,
                        accesses=accesses_of(index), task_id=-1,
                    )
                    for index in range(lo, min(lo + chunk, tasks))
                ])
        return (time.perf_counter() - t0) / tasks * 1e6

    cases = []
    shapes = [
        ("wide", wide_accesses),
        ("chain", chain_accesses),
        ("stencil", stencil_accesses),
    ]
    # Gated metric: take the *minimum* of the samples, not the median.
    # Scheduler noise on loaded shared runners is strictly additive, so the
    # fastest observation is the least-noisy estimate of the true cost.
    for name, accesses_of in shapes:
        for chunk in (1, batch):
            samples = [run(accesses_of, chunk) for _ in range(3)]
            per_task = min(samples)
            cases.append({
                "shape": name,
                "batch": chunk,
                "submit_us_per_task": round(per_task, 3),
                "tasks_per_sec": round(safe_ratio(1e6, per_task), 1),
            })

    # -- the public facade: per-call @s.task vs Session.submit_batch ----------
    from repro.session import Session

    def session_per_call() -> float:
        with Session(executor="serial") as s:
            saxpy = s.task(outs=("y",))(lambda y: None)
            t0 = time.perf_counter()
            for index in range(tasks):
                saxpy(own[index])
            elapsed = time.perf_counter() - t0
            s.wait_all()
        return elapsed / tasks * 1e6

    def session_batch() -> float:
        with Session(executor="serial") as s:
            saxpy = s.task(outs=("y",))(lambda y: None)
            t0 = time.perf_counter()
            for lo in range(0, tasks, batch):
                with s.batch():
                    for index in range(lo, min(lo + batch, tasks)):
                        saxpy(own[index])
            elapsed = time.perf_counter() - t0
            s.wait_all()
        return elapsed / tasks * 1e6

    def session_submit_batch() -> float:
        with Session(executor="serial") as s:
            t0 = time.perf_counter()
            for lo in range(0, tasks, batch):
                s.submit_batch([
                    (task_type, lambda: None, [Out(own[index])])
                    for index in range(lo, min(lo + batch, tasks))
                ])
            elapsed = time.perf_counter() - t0
            s.wait_all()
        return elapsed / tasks * 1e6

    for name, fn, chunk in (
        ("session_per_call", session_per_call, 1),
        ("session_batch", session_batch, batch),
        ("session_submit_batch", session_submit_batch, batch),
    ):
        samples = [fn() for _ in range(3)]
        per_task = min(samples)
        cases.append({
            "shape": name,
            "batch": chunk,
            "submit_us_per_task": round(per_task, 3),
            "tasks_per_sec": round(safe_ratio(1e6, per_task), 1),
        })

    by_key = {(c["shape"], c["batch"]): c for c in cases}
    batch_speedup = {
        name: round(safe_ratio(
            by_key[(name, 1)]["submit_us_per_task"],
            by_key[(name, batch)]["submit_us_per_task"],
        ), 2)
        for name, _ in shapes
    }
    return {
        "tasks": tasks,
        "batch": batch,
        "cases": cases,
        "batch_speedup": batch_speedup,
        "best_tasks_per_sec": max(c["tasks_per_sec"] for c in cases),
    }


def bench_simulator_drain(tasks: int = 400, cores: int = 8) -> dict:
    """Discrete-event drain throughput (free-core heap + event queue)."""
    task_type = TaskType(
        "perf_sim", memoizable=False, cost_model=lambda task: 5.0
    )
    data = [np.zeros(64) for _ in range(tasks)]

    def run() -> float:
        executor = SimulatedExecutor(
            config=RuntimeConfig(num_threads=cores),
            sim_config=SimulationConfig(),
        )
        graph = TaskDependenceGraph(on_ready=executor.notify_ready)
        for index in range(tasks):
            graph.add_task(Task(
                task_type=task_type, function=lambda: None,
                accesses=[Out(data[index])], task_id=-1,
            ))
        t0 = time.perf_counter()
        executor.drain(graph)
        return time.perf_counter() - t0

    samples = [run() for _ in range(3)]
    elapsed = statistics.median(samples)
    return {
        "tasks": tasks,
        "cores": cores,
        "drain_wall_s": round(elapsed, 4),
        "events_per_sec": round(safe_ratio(tasks, elapsed), 1),
    }
