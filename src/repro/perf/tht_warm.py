"""Cold-vs-warm THT store benchmark (DESIGN.md §9).

Runs the same benchmark application twice against one persistent THT store —
first cold (the store is empty; every memoizable task executes and its
commit is flushed on ``finish()``), then warm (a fresh Session restores the
previous run's table and serves its repeated tasks from memory) — for both
store backends: the ``file://`` snapshot file and a live ``tcp://`` cache
shard served in-process by ``scripts/tht_shard.py``.

Two gated properties come out of it:

* ``warm_hit_rate_percent`` — the warm run's THT hit rate, i.e. hits over
  table lookups.  The repeated workload is 100 % redundant among its
  memoizable tasks, so a healthy warm start serves (nearly) every lookup
  from the restored table; the gate only demands > 50 % to stay robust
  against capacity evictions at small geometries.  (The all-tasks
  ``reuse_percent`` is reported per row but not gated: stencil apps spend
  most of their tasks on non-memoizable halo copies that never probe the
  table, which would cap reuse far below the store's actual efficacy.)
* ``checksums_identical`` — every run (cold and warm, both backends)
  produces bit-identical program output to a store-less serial run: restored
  entries must serve the *same bytes* the original execution produced.
"""

from __future__ import annotations

import importlib.util
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.apps.registry import make_benchmark
from repro.common.hashing import hash_bytes
from repro.perf.report import safe_ratio
from repro.session import Session

__all__ = ["bench_tht_warm"]

#: Benchmarks replayed through the store (full mode runs both; quick mode
#: only the first).  Both are deterministic and 100 % redundant when
#: repeated, so the warm run's reuse percentage is a property of the store,
#: not of the workload.
DEFAULT_BENCHMARKS = ("blackscholes", "jacobi")


def _load_shard_module():
    """Import ``scripts/tht_shard.py`` (a script, not a package) by path."""
    name = "tht_shard_for_bench"
    if name in sys.modules:
        return sys.modules[name]
    path = Path(__file__).resolve().parents[3] / "scripts" / "tht_shard.py"
    if not path.exists():
        return None
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def _run_once(benchmark: str, scale: str, url: "str | None") -> dict:
    """One serial run of ``benchmark``; returns measurements for one row."""
    app = make_benchmark(benchmark, scale=scale)
    atm: dict = {"mode": "static"}
    if url is not None:
        atm["tht_store"] = url
    t0 = time.perf_counter()
    with Session({"atm": atm}, executor="serial") as session:
        app.run(session)
        result = session.result
        warm_started = session.warm_started
        stats = session.stats
    wall = time.perf_counter() - t0
    output = np.ascontiguousarray(np.asarray(app.output(), dtype=np.float64))
    hits = stats.get("tht_hits", 0)
    misses = stats.get("misses", 0)
    return {
        "wall_s": round(wall, 4),
        "tasks_completed": result.tasks_completed,
        "tasks_memoized": result.tasks_memoized,
        "reuse_percent": round(
            100.0 * safe_ratio(result.tasks_memoized, result.tasks_completed), 3
        ),
        "tht_hits": hits,
        "tht_misses": misses,
        # Hit rate over the tasks that actually probed the table: halo
        # copies and other non-memoizable types never look it up, so the
        # all-tasks reuse_percent undersells warm starts on stencils.
        "tht_hit_rate_percent": round(
            100.0 * safe_ratio(hits, hits + misses), 3
        ),
        "warm_started": warm_started,
        "output_checksum": f"{hash_bytes(output):016x}",
    }


def bench_tht_warm(
    benchmarks: "tuple[str, ...]" = DEFAULT_BENCHMARKS,
    scale: str = "tiny",
    quick: bool = False,
) -> dict:
    """Cold/warm rows per (benchmark, store backend) + the gated aggregates."""
    if quick:
        benchmarks = benchmarks[:1]
    rows: list[dict] = []
    checksums_ok = True
    shard_module = _load_shard_module()
    for benchmark in benchmarks:
        reference = _run_once(benchmark, scale, url=None)
        with tempfile.TemporaryDirectory(prefix="tht-warm-") as tmp:
            backends = [("file", f"file://{tmp}/warm.tht", None)]
            if shard_module is not None:
                server, addr = shard_module.serve_in_thread()
                backends.append(("tcp", f"tcp://{addr}", server))
            try:
                for store, url, _server in backends:
                    for phase in ("cold", "warm"):
                        row = _run_once(benchmark, scale, url)
                        row.update(
                            benchmark=benchmark, scale=scale,
                            store=store, phase=phase,
                        )
                        row["checksum_matches_serial"] = (
                            row["output_checksum"] == reference["output_checksum"]
                        )
                        checksums_ok &= row["checksum_matches_serial"]
                        rows.append(row)
            finally:
                for _store, _url, server in backends:
                    if server is not None:
                        server.shutdown_gracefully()
    warm_rows = [row for row in rows if row["phase"] == "warm"]
    cold_rows = [row for row in rows if row["phase"] == "cold"]
    return {
        "benchmarks": list(benchmarks),
        "scale": scale,
        "tcp": shard_module is not None,
        "rows": rows,
        # Gate on the WORST warm run: every backend and benchmark must reuse.
        "warm_hit_rate_percent": round(
            min((row["tht_hit_rate_percent"] for row in warm_rows), default=0.0),
            3,
        ),
        "cold_hit_rate_percent": round(
            max((row["tht_hit_rate_percent"] for row in cold_rows), default=0.0),
            3,
        ),
        "warm_reuse_percent": round(
            min((row["reuse_percent"] for row in warm_rows), default=0.0), 3
        ),
        "checksums_identical": bool(checksums_ok),
    }
