"""End-to-end execution-backend comparison (serial/threaded/process/network).

Runs whole benchmark programs — no ATM, pure backend cost — on the four
real executors at a fixed worker count and records wall-clock times, the
process-over-threaded speedup, per-task dispatch overheads and an
output-checksum cross-check (the parity matrix in
``tests/runtime/test_executor_parity.py`` is the exhaustive version; the
checksums here anchor the perf rows to the same outputs).

The ``network`` row runs the loopback transport (in-process workers over
socketpairs), so its dispatch overhead is the *wire cost* — framing, CRC,
byte-buffer shipping both ways — without real network latency; see
PERFORMANCE.md ("Network backend dispatch overhead") for how to read it.

Interpretation note recorded in the report: the ``ThreadedExecutor`` is
GIL-bound, so on a multi-core host the process backend is the only one whose
wall clock can drop below serial on compute-bound apps (swaptions: ~1 ms of
Monte Carlo per 376-byte record).  On a single-CPU host (CI containers —
detected and flagged via ``cpu_count``/``hardware_limited``) *no* backend
can beat serial, and the process rows then measure pure dispatch overhead:
spawn + per-task IPC.  Speedup figures are recorded for trend analysis and
deliberately not gated, exactly like the other wall-clock metrics.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.apps import make_benchmark
from repro.common.hashing import hash_bytes
from repro.perf.report import safe_ratio

__all__ = ["bench_process_backend", "DEFAULT_BACKEND_CASES"]

#: (benchmark, scale): one compute-bound app (the headline case for process
#: workers) and one task-churn app (measures dispatch overhead per task).
DEFAULT_BACKEND_CASES = (
    ("swaptions", "small"),
    ("blackscholes", "tiny"),
)

EXECUTORS = ("serial", "threaded", "process", "network")


def _checksum(app) -> str:
    out = np.ascontiguousarray(np.asarray(app.output(), dtype=np.float64))
    return f"{hash_bytes(out):016x}"


def bench_process_backend(workers: int = 4, cases=DEFAULT_BACKEND_CASES) -> dict:
    cpu_count = os.cpu_count() or 1
    # Speedup rows are only meaningful when every worker can own a core.
    hardware_limited = cpu_count < workers
    rows = []
    for benchmark, scale in cases:
        walls: dict[str, float] = {}
        checksums: dict[str, str] = {}
        tasks = 0
        for executor in EXECUTORS:
            cores = 1 if executor == "serial" else workers
            app = make_benchmark(benchmark, scale=scale)
            t0 = time.perf_counter()
            result = app.run_on(executor, cores=cores)
            walls[executor] = time.perf_counter() - t0
            checksums[executor] = _checksum(app)
            tasks = result.tasks_completed
        rows.append({
            "benchmark": benchmark,
            "scale": scale,
            "workers": workers,
            "tasks": tasks,
            "serial_s": round(walls["serial"], 4),
            "threaded_s": round(walls["threaded"], 4),
            "process_s": round(walls["process"], 4),
            "network_s": round(walls["network"], 4),
            "speedup_process_vs_threaded": round(
                safe_ratio(walls["threaded"], walls["process"]), 3
            ),
            "dispatch_overhead_ms_per_task": round(
                safe_ratio((walls["process"] - walls["serial"]) * 1e3, tasks), 4
            ),
            "net_dispatch_overhead_ms_per_task": round(
                safe_ratio((walls["network"] - walls["serial"]) * 1e3, tasks), 4
            ),
            "checksums_match": len(set(checksums.values())) == 1,
            "output_checksum": checksums["serial"],
        })
    return {
        "workers": workers,
        "cpu_count": cpu_count,
        "hardware_limited": hardware_limited,
        "note": (
            "speedup_process_vs_threaded needs >= workers physical CPUs to be "
            "meaningful; below that the workers time-share cores and the "
            "process rows increasingly measure dispatch overhead "
            "(entirely so on a single-CPU host)"
        ),
        "rows": rows,
    }
