"""Stale-bytes dispatch benchmark for the network backend (PR 7).

The workload is the iterative pattern the residency protocol exists for:
``drains`` successive drains over the *same* persistent input blocks, one
read-mostly task per block per drain (a scan that reads the whole block
and writes an 8-byte result).  Before residency, every drain re-shipped
every block — dispatch cost O(touched bytes) per task, every time.  With
residency on, drain 1 warms the per-endpoint caches and drains 2..n ship
only the stale spans (the 8-byte outputs), so dispatch cost collapses to
O(stale bytes).

Measured per transport x residency setting, against a serial run of the
identical program:

* ``wall_s`` — min-of-``rounds`` wall clock for the whole iterative run;
* ``net_dispatch_overhead_ms_per_task`` — ``(wall - serial_wall) / tasks``,
  the same column ``process_backend`` reports, here under iterative reuse;
* ``payload_bytes`` — actual frame bytes put on the wire (executor stats);
* residency hit/miss/saved-bytes counters where the table is on.

Transports: ``loopback`` (in-process socketpair workers — wire cost
without scheduler noise from extra processes) always; ``tcp`` (real
``scripts/net_worker.py`` daemons in separate OS processes on 127.0.0.1)
unless the host is hardware-limited or the spawn fails, since extra
worker processes on a starved container measure contention, not protocol.

Headline gates (``checks`` in the BENCH report):

* ``net_residency_improvement`` — loopback dispatch overhead ratio
  (off / on), gated >= 2x;
* ``net_residency_payload_reduction`` — loopback wire-byte ratio
  (off / on), recorded (deterministic, so also asserted >= 2x in tests).

Outputs are checksummed against the serial run: a protocol that got the
bytes wrong fails here before any perf number is read.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.common.config import RuntimeConfig
from repro.common.hashing import hash_bytes
from repro.perf.report import safe_ratio
from repro.runtime.data import In, Out
from repro.runtime.task import TaskType
from repro.session import ReproConfig, Session

__all__ = ["bench_net_residency"]

#: Read-mostly per-block task: touches every input byte, writes 8 bytes.
SCAN_TYPE = TaskType("resident_scan", memoizable=False)


def _scan_body(src: np.ndarray, dst: np.ndarray) -> None:
    dst[0] = float(src.sum())


def _run_program(config: RuntimeConfig, sources, drains: int):
    """One full iterative run; returns (wall_s, checksum, backend_stats)."""
    sinks = [np.zeros(1) for _ in sources]
    t0 = time.perf_counter()
    result = None
    with Session(ReproConfig(runtime=config)) as session:
        for _ in range(drains):
            for src, dst in zip(sources, sinks):
                session.submit(
                    SCAN_TYPE, _scan_body,
                    accesses=[In(src), Out(dst)], args=(src, dst),
                )
            result = session.wait_all()
    wall = time.perf_counter() - t0
    out = np.ascontiguousarray(np.concatenate(sinks))
    checksum = f"{hash_bytes(out):016x}"
    stats = (result.extra or {}).get("network_backend", {}) if result else {}
    return wall, checksum, stats


def _spawn_tcp_workers(count: int, timeout_s: float = 10.0):
    """Start ``count`` net_worker.py daemons on ephemeral ports.

    Returns ``(procs, "host:port,host:port")``; raises on any failure to
    bind/announce within ``timeout_s`` (callers skip the TCP rows then).
    """
    script = Path(__file__).resolve().parents[3] / "scripts" / "net_worker.py"
    procs, addrs = [], []
    try:
        for _ in range(count):
            proc = subprocess.Popen(
                [sys.executable, str(script), "--port", "0", "--announce"],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
            )
            procs.append(proc)
            line = proc.stdout.readline().strip()
            if not line.startswith("listening "):
                raise RuntimeError(f"net_worker announced {line!r}")
            addrs.append(line.split(" ", 1)[1])
        return procs, ",".join(addrs)
    except Exception:
        for proc in procs:
            proc.terminate()
        raise


def _kill_workers(procs) -> None:
    for proc in procs:
        proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck daemon
            proc.kill()


def bench_net_residency(
    workers: int = 2,
    blocks: int = 16,
    block_kib: int = 1024,
    drains: int = 6,
    rounds: int = 2,
    with_tcp: bool | None = None,
) -> dict:
    """Run the iterative workload over every transport/residency cell."""
    cpu_count = os.cpu_count() or 1
    hardware_limited = cpu_count < workers + 1  # workers + the parent
    if with_tcp is None:
        with_tcp = not hardware_limited
    rng = np.random.default_rng(7)
    sources = [rng.random(block_kib * 128) for _ in range(blocks)]  # 1 KiB = 128 f64
    tasks = blocks * drains

    def measure(config: RuntimeConfig):
        best_wall, checksum, stats = None, None, {}
        for _ in range(rounds):
            wall, run_checksum, run_stats = _run_program(config, sources, drains)
            if best_wall is None or wall < best_wall:
                best_wall, checksum, stats = wall, run_checksum, run_stats
        return best_wall, checksum, stats

    serial_wall, serial_checksum, _ = measure(
        RuntimeConfig(executor="serial", num_threads=1)
    )

    cells = [("loopback", True), ("loopback", False)]
    procs, tcp_addrs = [], None
    if with_tcp:
        try:
            procs, tcp_addrs = _spawn_tcp_workers(workers)
            cells += [("tcp", True), ("tcp", False)]
        except Exception:  # pragma: no cover - spawn-hostile environment
            with_tcp = False

    rows = []
    try:
        for transport, residency in cells:
            config = RuntimeConfig(
                executor="network",
                num_threads=workers,
                mp_chunk_size=2,
                net_residency=residency,
                net_endpoints=(
                    "loopback" if transport == "loopback" else tcp_addrs
                ),
            )
            wall, checksum, stats = measure(config)
            residency_stats = stats.get("residency", {})
            rows.append({
                "transport": transport,
                "residency": residency,
                "wall_s": round(wall, 4),
                "net_dispatch_overhead_ms_per_task": round(
                    safe_ratio((wall - serial_wall) * 1e3, tasks), 4
                ),
                "payload_bytes": stats.get("payload_bytes", 0),
                "residency_hits": residency_stats.get("hits", 0),
                "residency_bytes_saved": residency_stats.get("bytes_saved", 0),
                "checksum_matches_serial": checksum == serial_checksum,
            })
    finally:
        _kill_workers(procs)

    def cell(transport: str, residency: bool) -> dict:
        return next(
            row for row in rows
            if row["transport"] == transport and row["residency"] == residency
        )

    on, off = cell("loopback", True), cell("loopback", False)
    # Wall noise can drive an overhead to ~0 or below on a fast host; the
    # floor keeps the ratio finite and the gate conservative.
    floor_ms = 1e-4
    improvement = safe_ratio(
        max(off["net_dispatch_overhead_ms_per_task"], floor_ms),
        max(on["net_dispatch_overhead_ms_per_task"], floor_ms),
    )
    payload_reduction = safe_ratio(off["payload_bytes"], on["payload_bytes"])
    return {
        "workers": workers,
        "cpu_count": cpu_count,
        "hardware_limited": hardware_limited,
        "blocks": blocks,
        "block_kib": block_kib,
        "drains": drains,
        "tasks": tasks,
        "rounds": rounds,
        "tcp": with_tcp,
        "serial_wall_s": round(serial_wall, 4),
        "serial_checksum": serial_checksum,
        "rows": rows,
        "improvement_dispatch_overhead": round(improvement, 3),
        "payload_reduction": round(payload_reduction, 3),
        "note": (
            "iterative workload: the same input blocks re-read across "
            "drains; residency converts dispatch from O(touched bytes) to "
            "O(stale bytes), so the off/on overhead ratio is the stale-"
            "bytes win. TCP rows (real worker processes on 127.0.0.1) are "
            "skipped on hardware-limited hosts where extra processes "
            "measure contention, not protocol."
        ),
    }
