"""Fault-recovery micro suite: kill one of N workers, measure the recovery.

Runs the same independent-task workload twice on the process backend in
quarantine mode — once healthy, once with a worker-killing poison task
injected — and reports the wall-clock delta: what one SIGKILL-style worker
death costs a drain end to end (crash detection, respawn, in-flight
resubmission, quarantine bookkeeping).

Wall-clock recovery times are recorded for trend analysis and not gated
(they depend on process spawn latency, which varies wildly across CI
hosts); the gated supervision metric is the happy-path one — submission
throughput and e2e checksums must not move against the previous BENCH
report (see ``repro.perf.report.compare_to_baseline``).
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["bench_fault_recovery"]


def _run_once(workers: int, tasks: int, inject_kill: bool) -> dict:
    from repro.testing.faults import (
        fault_session,
        kill_worker_body,
        square_body,
        submit_one,
    )

    session = fault_session(
        "process",
        workers=workers,
        chunk_size=1,
        on_task_failure="quarantine",
        drain_timeout_s=60.0,
        allow_worker_kill=inject_kill,
    )
    with session:
        if inject_kill:
            submit_one(session, kill_worker_body, label="bench_kill")
        sinks = [
            submit_one(session, square_body, label="bench_work")
            for _ in range(tasks)
        ]
        t0 = time.perf_counter()
        result = session.wait_all()
        wall = time.perf_counter() - t0
    for src, dst in sinks:
        assert np.array_equal(dst, src ** 2), "fault-recovery bench corrupted data"
    stats = result.extra.get("process_backend", {})
    return {
        "wall_s": wall,
        "respawns": stats.get("respawns", 0),
        "failures": len(result.failures),
        "completed": result.tasks_completed,
    }


def bench_fault_recovery(workers: int = 2, tasks: int = 12, rounds: int = 3) -> dict:
    """Kill-1-of-N-workers recovery cost on the process backend.

    ``recovery_overhead_s`` is the min-over-rounds faulty wall minus the
    min-over-rounds healthy wall for an otherwise identical workload (min,
    like the other gated micros: noise is strictly additive).
    """
    healthy = [_run_once(workers, tasks, inject_kill=False) for _ in range(rounds)]
    faulty = [_run_once(workers, tasks, inject_kill=True) for _ in range(rounds)]
    for run in healthy:
        assert run["failures"] == 0 and run["respawns"] == 0
    for run in faulty:
        assert run["failures"] == 1, "poison task must quarantine, not abort"
        assert run["respawns"] >= 1, "worker death must trigger a respawn"
        assert run["completed"] == tasks, "healthy tasks must survive the crash"
    healthy_wall = min(run["wall_s"] for run in healthy)
    faulty_wall = min(run["wall_s"] for run in faulty)
    return {
        "workers": workers,
        "tasks": tasks,
        "rounds": rounds,
        "healthy_wall_s": round(healthy_wall, 6),
        "faulty_wall_s": round(faulty_wall, 6),
        "recovery_overhead_s": round(faulty_wall - healthy_wall, 6),
        "respawns": max(run["respawns"] for run in faulty),
    }
