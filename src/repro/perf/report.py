"""BENCH report assembly, serialisation and threshold checks.

``BENCH_<n>.json`` (repo root, one per PR generation) is the machine-readable
perf trajectory.  Schema (``schema_version`` 2):

.. code-block:: text

    {
      "schema_version": 2,
      "bench_id": <int>,              # PR generation number
      "created_unix": <float>,
      "host": {"python": ..., "numpy": ..., "platform": ..., "cpu_count": ...},
      "micro": {
        "keygen": {"cases": [...], "shuffle_memory": {...},
                    "headline_speedup": <float>},
        "tht_probe": {...},
        "dependences": {...},
        "simulator": {...}
      },
      "endtoend": [ {per-run record, incl. output_checksum}, ... ],
      "process_backend": {            # serial/threaded/process comparison
        "workers": ..., "cpu_count": ..., "hardware_limited": ...,
        "rows": [ {benchmark, *_s walls, speedup_process_vs_threaded,
                    dispatch_overhead_ms_per_task, checksums_match}, ... ]
      },
      "checks": {"keygen_speedup_multi_input": <float>,
                  "shuffle_memory_reduction": <float>,
                  "thresholds": {...}, "passed": <bool>}
    }

``check_report`` enforces the acceptance thresholds (keygen >= 3x on
multi-input tasks, shuffle memory >= 5x smaller than the seed); wall-clock
metrics — including the process-backend speedups, which depend on physical
core availability — are recorded for trend analysis but deliberately not
gated, because CI machines vary.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

__all__ = [
    "build_report",
    "check_report",
    "write_report",
    "safe_ratio",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 2


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator`` guarded against empty/zero-task runs."""
    if not denominator:
        return default
    return numerator / denominator

#: Acceptance thresholds for the gated metrics.
THRESHOLDS = {
    "keygen_speedup_multi_input": 3.0,
    "shuffle_memory_reduction": 5.0,
}


def build_report(bench_id: int = 1, quick: bool = False) -> dict:
    """Run the whole suite and assemble the report dict."""
    from repro.perf.endtoend import bench_end_to_end
    from repro.perf.micro import (
        bench_dependences,
        bench_keygen,
        bench_simulator_drain,
        bench_tht_probe,
    )
    from repro.perf.process_backend import bench_process_backend

    # Quick mode trims rounds, never input scale: small inputs make the cold
    # keygen cases Python-overhead-bound and the speedup gate unrepresentative.
    rounds = 10 if quick else 40
    keygen = bench_keygen(scale=1.0, rounds=rounds)
    micro = {
        "keygen": keygen,
        "tht_probe": bench_tht_probe(rounds=2000 if quick else 20000),
        "dependences": bench_dependences(tasks=200 if quick else 600),
        "simulator": bench_simulator_drain(tasks=150 if quick else 400),
    }
    endtoend = bench_end_to_end()
    # Quick mode trims the backend comparison to the cheap task-churn case
    # (skipping the multi-second swaptions runs); the full report keeps both.
    if quick:
        process_backend = bench_process_backend(
            workers=2, cases=(("blackscholes", "tiny"),)
        )
    else:
        process_backend = bench_process_backend(workers=4)
    checks = {
        "keygen_speedup_multi_input": keygen["headline_speedup"],
        "shuffle_memory_reduction": keygen["shuffle_memory"]["reduction"],
        "thresholds": dict(THRESHOLDS),
    }
    checks["passed"] = all(
        checks[name] >= threshold for name, threshold in THRESHOLDS.items()
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "bench_id": bench_id,
        "created_unix": time.time(),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count() or 1,
        },
        "micro": micro,
        "endtoend": endtoend,
        "process_backend": process_backend,
        "checks": checks,
    }


def check_report(report: dict) -> list[str]:
    """Return a list of human-readable threshold violations (empty = pass)."""
    failures = []
    checks = report.get("checks", {})
    for name, threshold in THRESHOLDS.items():
        value = checks.get(name)
        if value is None:
            failures.append(f"missing check metric {name!r}")
        elif value < threshold:
            failures.append(f"{name} = {value} below threshold {threshold}")
    return failures


def write_report(report: dict, path: "str | Path") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
