"""BENCH report assembly, serialisation and threshold checks.

``BENCH_<n>.json`` (repo root, one per PR generation) is the machine-readable
perf trajectory.  Schema (``schema_version`` 8 — adds the ``tht_warm``
suite: cold-vs-warm persistent-THT-store runs over both the ``file://``
snapshot backend and a live ``tcp://`` cache shard, with a gated warm-run
hit rate and bit-identical-checksum gate; version 7 added the ``serving``
suite: multi-tenant gateway throughput, latency percentiles, and the gated
admission-fairness ratio; version 6 added the ``net_residency`` suite: the
iterative stale-bytes dispatch benchmark for the network backend; version 5
added ``micro.fault_recovery``; version 4 added the ``network_s`` /
``net_dispatch_overhead_ms_per_task`` columns to the backend rows):

.. code-block:: text

    {
      "schema_version": 8,
      "bench_id": <int>,              # PR generation number
      "created_unix": <float>,
      "host": {"python": ..., "numpy": ..., "platform": ..., "cpu_count": ...},
      "micro": {
        "keygen": {"cases": [...], "shuffle_memory": {...},
                    "headline_speedup": <float>},
        "tht_probe": {...},
        "dependences": {...},
        "submission": {"tasks": ..., "batch": ..., "cases": [...],
                        "batch_speedup": {...}, "best_tasks_per_sec": ...},
        "simulator": {...},
        "fault_recovery": {"healthy_wall_s": ..., "faulty_wall_s": ...,
                            "recovery_overhead_s": ..., "respawns": ...}
      },
      "endtoend": [ {per-run record, incl. output_checksum}, ... ],
      "process_backend": {   # serial/threaded/process/network comparison
        "workers": ..., "cpu_count": ..., "hardware_limited": ...,
        "rows": [ {benchmark, *_s walls, speedup_process_vs_threaded,
                    dispatch_overhead_ms_per_task,
                    net_dispatch_overhead_ms_per_task, checksums_match}, ... ]
      },
      "net_residency": {     # iterative stale-bytes dispatch benchmark
        "blocks": ..., "block_kib": ..., "drains": ..., "tcp": ...,
        "rows": [ {transport, residency, wall_s,
                    net_dispatch_overhead_ms_per_task, payload_bytes,
                    residency_hits, checksum_matches_serial}, ... ],
        "improvement_dispatch_overhead": ..., "payload_reduction": ...
      },
      "serving": {           # multi-tenant gateway front door
        "executor": ..., "workers": ..., "max_pending": ..., "quantum": ...,
        "throughput": {"gateway_tasks_per_sec": ...,
                        "latency_p50_s": ..., "latency_p99_s": ..., ...},
        "fairness": {"backlog_ratio": ..., "fairness_ratio": ..., ...},
        "overhead": {"gateway_overhead_ratio": ..., ...}
      },
      "tht_warm": {          # persistent THT store: cold vs warm starts
        "benchmarks": [...], "scale": ..., "tcp": ...,
        "rows": [ {benchmark, store, phase, tht_hits, tht_misses,
                    tht_hit_rate_percent, reuse_percent,
                    output_checksum, checksum_matches_serial, ...}, ... ],
        "warm_hit_rate_percent": ..., "cold_hit_rate_percent": ...,
        "warm_reuse_percent": ..., "checksums_identical": ...
      },
      "checks": {"keygen_speedup_multi_input": <float>,
                  "shuffle_memory_reduction": <float>,
                  "thresholds": {...}, "passed": <bool>}
    }

``check_report`` enforces the acceptance thresholds (keygen >= 3x on
multi-input tasks, shuffle memory >= 5x smaller than the seed, and — since
schema 3 — a submission-throughput floor on the ``dependences`` micro);
other wall-clock metrics — including the process-backend speedups, which
depend on physical core availability — are recorded for trend analysis but
deliberately not gated, because CI machines vary.  The submission floor is
the one deliberate exception to the no-wall-clock-gates policy (the PR-4
satellite asks for exactly this regression tripwire); it gates the
*slowest* submission-path case — per-task dependences micro and every
``submission``-suite shape, batched and facade included.  The gated micros
report min-of-samples (scheduler noise is strictly additive, so the
fastest observation estimates true cost best on loaded shared runners),
and the 30k tasks/sec floor sits >2x below the ~80-90k the slowest shape
(stencil, batch=1) measures on this container while a regression back
towards the pre-PR-4 17.5k tasks/sec still fails loudly.

``compare_to_baseline`` (schema 5) cross-checks a new report against the
previous ``BENCH_<n-1>.json``: end-to-end output checksums must be
bit-identical and the gated submission floor must hold within
``BASELINE_TOLERANCE`` of the baseline's measurement — the regression
tripwire proving the supervision layer costs nothing on the happy path.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

__all__ = [
    "build_report",
    "check_report",
    "compare_to_baseline",
    "write_report",
    "safe_ratio",
    "SCHEMA_VERSION",
]

#: Schema 8 adds the ``tht_warm`` suite (persistent THT store cold-vs-warm
#: runs over the ``file://`` and ``tcp://`` backends) with a gated warm-run
#: THT hit rate and a bit-identical-output gate.  Schema 7 added the
#: ``serving`` suite (multi-tenant gateway throughput, per-tenant latency
#: percentiles, and the gated admission-fairness ratio).  Schema 6 added
#: the ``net_residency`` suite (iterative stale-bytes dispatch on the
#: network backend) and its gated off/on dispatch-overhead improvement.
#: Schema 5 added ``micro.fault_recovery`` and the baseline comparison
#: gates (:func:`compare_to_baseline`: e2e checksums bit-identical,
#: submission throughput within tolerance of the previous BENCH report).
SCHEMA_VERSION = 8


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator`` guarded against empty/zero-task runs."""
    if not denominator:
        return default
    return numerator / denominator

#: Acceptance thresholds for the gated metrics.
THRESHOLDS = {
    "keygen_speedup_multi_input": 3.0,
    "shuffle_memory_reduction": 5.0,
    "submission_tasks_per_sec": 30_000.0,
    # Iterative network workload: residency must cut the per-task dispatch
    # overhead at least in half versus ship-everything (the byte volume is
    # what dominates, so the ratio is stable even on loaded runners; the
    # suite runs full-size in quick mode too — it costs ~2 s).
    "net_residency_improvement": 2.0,
    # Gateway admission fairness: a light tenant submitting a 1x share
    # behind a heavy tenant's 4x backlog (equal weights) must have its
    # completions within 2x of the heavy tenant's at its own barrier.
    # Pure FIFO admission measures ~0.25 at 4:1; weighted deficit
    # round-robin measures ~0.7-0.8 on this container — the ratio is a
    # policy property, not a wall-clock one, so it is stable enough to gate.
    "serving_fairness_ratio": 0.5,
    # Persistent THT store: a warm-started run replaying a workload it has
    # already seen must serve most of its table lookups from the restored
    # snapshot (measured on the WORST backend x benchmark combination; a
    # healthy warm start measures 100 %, the 50 % floor tolerates capacity
    # evictions at small geometries).  Gated on the hit rate over actual
    # lookups, not all-tasks reuse: stencils spend most tasks on
    # non-memoizable halo copies that never probe the table.
    "tht_warm_hit_rate_percent": 50.0,
    # Restored entries must serve bit-identical bytes: every cold and warm
    # run over every backend must checksum-match a store-less serial run
    # (1.0 = all matched, 0.0 = any mismatch).
    "tht_warm_checksums_identical": 1.0,
}


def build_report(bench_id: int = 1, quick: bool = False) -> dict:
    """Run the whole suite and assemble the report dict."""
    from repro.perf.endtoend import bench_end_to_end
    from repro.perf.fault_recovery import bench_fault_recovery
    from repro.perf.micro import (
        bench_dependences,
        bench_keygen,
        bench_simulator_drain,
        bench_submission,
        bench_tht_probe,
    )
    from repro.perf.net_residency import bench_net_residency
    from repro.perf.process_backend import bench_process_backend
    from repro.perf.serving import bench_serving
    from repro.perf.tht_warm import bench_tht_warm

    # Quick mode trims rounds, never input scale: small inputs make the cold
    # keygen cases Python-overhead-bound and the speedup gate unrepresentative.
    rounds = 10 if quick else 40
    keygen = bench_keygen(scale=1.0, rounds=rounds)
    micro = {
        "keygen": keygen,
        "tht_probe": bench_tht_probe(rounds=2000 if quick else 20000),
        "dependences": bench_dependences(tasks=200 if quick else 600),
        "submission": bench_submission(tasks=200 if quick else 600),
        "simulator": bench_simulator_drain(tasks=150 if quick else 400),
        "fault_recovery": bench_fault_recovery(
            workers=2, tasks=8 if quick else 12, rounds=2 if quick else 3
        ),
    }
    endtoend = bench_end_to_end()
    # Quick mode trims the backend comparison to the cheap task-churn case
    # (skipping the multi-second swaptions runs); the full report keeps both.
    if quick:
        process_backend = bench_process_backend(
            workers=2, cases=(("blackscholes", "tiny"),)
        )
    else:
        process_backend = bench_process_backend(workers=4)
    # Full-size in quick mode too: the gated off/on ratio needs the byte
    # volume to dominate wall noise, and the suite only costs ~2 s.
    net_residency = bench_net_residency(rounds=1 if quick else 2)
    serving = bench_serving(quick=quick)
    # Quick mode trims to one benchmark but keeps both store backends: the
    # tcp:// path is the one with real moving parts (sockets, shard state).
    tht_warm = bench_tht_warm(quick=quick)
    # Gate the *slowest* submission path: the per-task dependences micro and
    # every submission-suite shape (per-task and batched, including the
    # Session facade), so a regression confined to the batch protocol or the
    # facade cannot hide behind a healthy per-task number.
    submission_floor = min(
        micro["dependences"]["tasks_per_sec"],
        min(case["tasks_per_sec"] for case in micro["submission"]["cases"]),
    )
    checks = {
        "keygen_speedup_multi_input": keygen["headline_speedup"],
        "shuffle_memory_reduction": keygen["shuffle_memory"]["reduction"],
        "submission_tasks_per_sec": round(submission_floor, 1),
        "net_residency_improvement": net_residency[
            "improvement_dispatch_overhead"
        ],
        "net_residency_payload_reduction": net_residency["payload_reduction"],
        "serving_fairness_ratio": serving["fairness"]["fairness_ratio"],
        "serving_tasks_per_sec": serving["throughput"][
            "gateway_tasks_per_sec"
        ],
        "tht_warm_hit_rate_percent": tht_warm["warm_hit_rate_percent"],
        "tht_warm_checksums_identical": (
            1.0 if tht_warm["checksums_identical"] else 0.0
        ),
        "thresholds": dict(THRESHOLDS),
    }
    checks["passed"] = all(
        checks[name] >= threshold for name, threshold in THRESHOLDS.items()
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "bench_id": bench_id,
        "created_unix": time.time(),
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count() or 1,
        },
        "micro": micro,
        "endtoend": endtoend,
        "process_backend": process_backend,
        "net_residency": net_residency,
        "serving": serving,
        "tht_warm": tht_warm,
        "checks": checks,
    }


def check_report(report: dict) -> list[str]:
    """Return a list of human-readable threshold violations (empty = pass)."""
    failures = []
    checks = report.get("checks", {})
    for name, threshold in THRESHOLDS.items():
        value = checks.get(name)
        if value is None:
            failures.append(f"missing check metric {name!r}")
        elif value < threshold:
            failures.append(f"{name} = {value} below threshold {threshold}")
    return failures


#: Allowed happy-path submission-throughput drop against the previous
#: BENCH report (supervision must cost ~nothing when no task fails).
BASELINE_TOLERANCE = 0.95


def compare_to_baseline(report: dict, baseline: dict) -> list[str]:
    """Gate ``report`` against the previous BENCH generation.

    Two invariants the supervision layer must not break on the happy path:

    * every end-to-end ``output_checksum`` present in both reports is
      bit-identical (same benchmark, same mode);
    * the gated submission throughput stays within
      :data:`BASELINE_TOLERANCE` of the baseline value.
    """
    failures: list[str] = []
    base_runs = {
        (run["benchmark"], run["mode"]): run["output_checksum"]
        for run in baseline.get("endtoend", [])
    }
    for run in report.get("endtoend", []):
        key = (run["benchmark"], run["mode"])
        expected = base_runs.get(key)
        if expected is not None and run["output_checksum"] != expected:
            failures.append(
                f"e2e checksum changed for {key[0]}/{key[1]}: "
                f"{run['output_checksum']} != baseline {expected}"
            )
    base_submission = baseline.get("checks", {}).get("submission_tasks_per_sec")
    submission = report.get("checks", {}).get("submission_tasks_per_sec")
    if base_submission and submission is not None:
        floor = base_submission * BASELINE_TOLERANCE
        if submission < floor:
            failures.append(
                f"submission_tasks_per_sec = {submission} fell below "
                f"{BASELINE_TOLERANCE:.0%} of baseline {base_submission} "
                f"(floor {floor:.1f})"
            )
    return failures


def write_report(report: dict, path: "str | Path") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
