"""Performance harness: microbenchmarks, end-to-end runs and BENCH reports.

Every PR runs ``scripts/bench.py`` (or ``make bench``) to regenerate the
machine-readable ``BENCH_<n>.json`` at the repo root, giving the project a
perf trajectory to regress against.  See PERFORMANCE.md for the schema and
the hot-path inventory.
"""

from repro.perf.micro import (
    bench_dependences,
    bench_keygen,
    bench_simulator_drain,
    bench_tht_probe,
)
from repro.perf.endtoend import bench_end_to_end
from repro.perf.report import build_report, check_report, write_report

__all__ = [
    "bench_keygen",
    "bench_tht_probe",
    "bench_dependences",
    "bench_simulator_drain",
    "bench_end_to_end",
    "build_report",
    "check_report",
    "write_report",
]
