"""Serving-gateway benchmark suite (PR 8): throughput, latency, fairness.

Three phases, all against an in-process :class:`repro.serving.Gateway` on a
threaded pool (the serving deployment shape: one shared long-lived pool,
clients over real loopback TCP):

* **throughput** — one tenant replays a seeded open-loop traffic plan
  cycling the six evaluated applications (``repro.testing.traffic``) as
  fast as the gateway admits them; reports ``gateway_tasks_per_sec`` and
  the per-tenant completion-latency percentiles the gateway's ``stats``
  surface tracks.
* **fairness** — the admission-control headline: a heavy tenant pre-enqueues
  a 4x backlog of identical synthetic work before a light tenant submits
  its 1x share, equal weights.  ``fairness_ratio`` is
  ``light_completed / heavy_completed`` sampled the moment the light
  tenant's barrier resolves: pure FIFO admission would leave the light
  tenant waiting behind the whole backlog (ratio -> 0.25 at 4:1); weighted
  deficit round-robin interleaves admissions (ratio -> 1.0).  Gated
  >= 0.5 in the BENCH report (``serving_fairness_ratio``).
* **overhead** — the same six-app set through a local threaded Session
  versus through the gateway (TCP framing, arena copies, admission).
  Recorded for trend analysis, not gated: it is wall-clock on a shared
  runner.

Outputs are not re-checksummed here — the serving tests and
``scripts/serve_smoke.py`` pin bit-identity against serial Session runs;
the bench only reads counters the gateway already maintains.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.perf.report import safe_ratio
from repro.runtime.data import In, Out
from repro.runtime.task import TaskType
from repro.serving import Gateway, GatewayClient
from repro.session import ReproConfig, Session
from repro.testing.traffic import SERVED_APPS, burn_block, make_plan, replay

__all__ = ["bench_serving"]

#: Synthetic fairness workload: compute-dense, byte-light.  Each task burns
#: ``FAIR_PASSES`` sweeps over a small ``FAIR_BLOCK``-float64 block, so the
#: per-task cost (milliseconds) dwarfs both the light tenant's submission
#: latency and the barrier write-backs (a few hundred KiB per tenant) —
#: the measured ratio reflects admission policy, not TCP shipping.
FAIR_BLOCK = 32 * 1024
FAIR_PASSES = 256
#: Tasks per synthetic request (also the per-tenant write-chain width).
FAIR_WIDTH = 8
BURN_TYPE = TaskType("serving_burn", memoizable=False)


def _apps_throughput(port: int, requests: int) -> dict:
    plan = make_plan(requests, rate_hz=1000.0, seed=8, apps=SERVED_APPS)
    from repro.apps import make_benchmark

    with GatewayClient("127.0.0.1", port, tenant="bench-traffic") as client:
        t0 = time.perf_counter()

        def dispatch(request):
            make_benchmark(request.app, scale="tiny").build(client)

        replay(plan, dispatch, speed=1e6)  # open loop, as fast as admitted
        result = client.finish()
        wall = time.perf_counter() - t0
        stats = client.stats()
    entry = stats["tenants"]["bench-traffic"]
    return {
        "requests": requests,
        "apps": list(SERVED_APPS),
        "tasks_completed": result.tasks_completed,
        "wall_s": round(wall, 4),
        "gateway_tasks_per_sec": round(
            safe_ratio(result.tasks_completed, wall), 1
        ),
        "latency_p50_s": round(entry["latency_p50_s"], 6),
        "latency_p99_s": round(entry["latency_p99_s"], 6),
    }


def _submit_requests(client: GatewayClient, arrays, n_requests: int) -> int:
    """``n_requests`` x ``FAIR_WIDTH`` scale tasks; chains per dst array."""
    src, dsts = arrays
    specs = []
    for _ in range(n_requests):
        for dst in dsts:
            specs.append(
                (BURN_TYPE, burn_block, [In(src), Out(dst)],
                 (src, dst, FAIR_PASSES))
            )
    client.submit_batch(specs)
    return len(specs)


def _fairness(port: int, light_requests: int, backlog_ratio: int) -> dict:
    def tenant_arrays():
        rng = np.random.default_rng(8)
        src = rng.random(FAIR_BLOCK)
        return src, [np.zeros(FAIR_BLOCK) for _ in range(FAIR_WIDTH)]

    heavy = GatewayClient("127.0.0.1", port, tenant="bench-heavy")
    light = GatewayClient("127.0.0.1", port, tenant="bench-light")
    try:
        heavy_arrays = tenant_arrays()
        light_arrays = tenant_arrays()
        # Warm-up request per tenant: ships the arena buffers
        # outside the measured window, so the measured submissions below
        # carry only refs (milliseconds) and the ratio reflects admission
        # policy rather than TCP shipping latency.
        warmup = _submit_requests(heavy, heavy_arrays, 1)
        _submit_requests(light, light_arrays, 1)
        heavy.wait_all()
        light.wait_all()
        heavy_tasks = _submit_requests(
            heavy, heavy_arrays, light_requests * backlog_ratio
        )
        light_tasks = _submit_requests(light, light_arrays, light_requests)
        light_result = light.finish()  # blocks until the light share drains
        heavy_at_light_finish = (
            light.stats()["tenants"]["bench-heavy"]["completed"] - warmup
        )
        heavy_result = heavy.finish()
    finally:
        light.close()
        heavy.close()
    assert light_result.tasks_failed == 0 and heavy_result.tasks_failed == 0
    light_completed = light_result.tasks_completed - warmup
    ratio = safe_ratio(
        light_completed, heavy_at_light_finish, default=1.0
    )
    return {
        "backlog_ratio": backlog_ratio,
        "light_tasks": light_tasks,
        "heavy_tasks": heavy_tasks,
        "light_completed": light_completed,
        "heavy_completed_at_light_finish": heavy_at_light_finish,
        "fairness_ratio": round(ratio, 3),
    }


def _overhead(port: int) -> dict:
    from repro.apps import make_benchmark

    t0 = time.perf_counter()
    with Session(
        ReproConfig().with_overrides(
            runtime={"executor": "threaded", "num_threads": 2}
        )
    ) as session:
        for name in SERVED_APPS:
            make_benchmark(name, scale="tiny").build(session)
    session_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    with GatewayClient("127.0.0.1", port, tenant="bench-overhead") as client:
        for name in SERVED_APPS:
            make_benchmark(name, scale="tiny").build(client)
        client.finish()
    gateway_wall = time.perf_counter() - t0
    return {
        "session_wall_s": round(session_wall, 4),
        "gateway_wall_s": round(gateway_wall, 4),
        "gateway_overhead_ratio": round(
            safe_ratio(gateway_wall, session_wall, default=1.0), 3
        ),
    }


def bench_serving(quick: bool = False) -> dict:
    """Run the three serving phases against one in-process gateway."""
    cfg = ReproConfig().with_overrides(
        runtime={"executor": "threaded", "num_threads": 2},
        serving={"max_pending": 8, "quantum": 2},
    )
    requests = 6 if quick else 12
    light_requests = 4 if quick else 8
    with Gateway(cfg) as gateway:
        throughput = _apps_throughput(gateway.port, requests)
        fairness = _fairness(gateway.port, light_requests, backlog_ratio=4)
        overhead = _overhead(gateway.port)
    return {
        "executor": "threaded",
        "workers": 2,
        "max_pending": 8,
        "quantum": 2,
        "throughput": throughput,
        "fairness": fairness,
        "overhead": overhead,
    }
