"""Reproduction of *ATM: Approximate Task Memoization in the Runtime System*.

The package is organised in five layers, mirroring the system described in the
paper (Brumar et al., IPPS 2017):

``repro.common``
    Low-level substrates shared by everything else: a pure-Python Jenkins
    hashing implementation, the error metrics used by the paper (Chebyshev
    relative error, Euclidean relative error, the LU residual), typed data
    descriptors and configuration objects.

``repro.runtime``
    A task-based dataflow runtime system in the style of OmpSs / Nanos++:
    typed data regions, task and task-type abstractions, dependence analysis,
    a task dependence graph, ready queues, schedulers, a threaded executor and
    a deterministic discrete-event multicore simulator with tracing support.

``repro.atm``
    The paper's contribution: hash-key generation with sampled and type-aware
    input selection, the Task History Table (THT), the In-flight Key Table
    (IKT), the memoization engine, the Dynamic-ATM adaptive training algorithm
    and the Static/Dynamic/Oracle policies.

``repro.apps``
    The six evaluated applications written against the runtime API:
    Blackscholes, Gauss-Seidel, Jacobi, Kmeans, sparse LU and Swaptions,
    plus the workload registry describing the paper's configurations.

``repro.evaluation``
    The experiment harness that regenerates every table and figure of the
    paper's evaluation section.

``repro.session``
    The public front door: :class:`~repro.session.Session` assembles engine,
    policy, executor and graph from one declarative
    :class:`~repro.session.ReproConfig` tree and exposes the ``@s.task``
    programming model; pluggable name registries let new backends drop in
    (DESIGN.md §6).
"""

from repro._version import __version__
from repro.session import ReproConfig, Session
from repro.atm.policy import (
    ATMMode,
    ATMPolicy,
    DynamicATMPolicy,
    FixedPPolicy,
    NoATMPolicy,
    StaticATMPolicy,
)
from repro.atm.engine import ATMEngine
from repro.common.config import ATMConfig, RuntimeConfig, SimulationConfig

__all__ = [
    "__version__",
    "Session",
    "ReproConfig",
    "ATMMode",
    "ATMPolicy",
    "NoATMPolicy",
    "StaticATMPolicy",
    "DynamicATMPolicy",
    "FixedPPolicy",
    "ATMEngine",
    "ATMConfig",
    "RuntimeConfig",
    "SimulationConfig",
]
