"""Hash-key generation (paper Sections III-B and III-C), zero-copy pipeline.

For every *task type* the generator stores one shuffled vector of byte
indexes over the concatenated data inputs.  The shuffle is computed the first
time a task of that type (and input size) is seen and reused afterwards, just
as the paper stores the shuffled index vector in the runtime system.

Two shuffle flavours are supported:

* **plain** — a uniform random permutation of all input byte positions;
* **type-aware** — the most significant byte of every element (of every
  input) is shuffled first, then the next most significant byte, and so on
  (Section III-C), so small sampling fractions still cover sign/exponent
  bits.

Given a sampling fraction ``p``, the first ``ceil(N * p)`` indexes of the
stored vector select the bytes that are gathered and fed to the configured
hash function; the result is an 8-byte :class:`~repro.common.hashing.HashKey`.

Performance design (versus the seed implementation preserved in
:mod:`repro.atm.keygen_reference`):

* **No per-compute concatenation.**  The stored shuffle is split once per
  input structure into ``(owner input, local offset)`` pairs; sampled bytes
  are gathered per input directly into one padded hash buffer, at the exact
  interleaved positions the shuffle dictates, so keys stay bit-identical to
  the seed while never materialising the multi-megabyte concatenation.
* **Truncated, narrow shuffles.**  Only the prefix actually addressed by the
  largest sampling fraction seen so far is stored (``ceil(N * p_max)``
  entries), as ``uint32`` whenever ``N < 2**32`` — an 8-16x memory reduction
  against the seed's full ``int64`` permutation; ``p = 1.0`` needs no shuffle
  at all.  The prefix grows deterministically (same seeded permutation) when
  a larger ``p`` shows up.
* **Region-version digest caching.**  Every :class:`DataRegion` carries a
  monotonically increasing write-version (bumped by the runtime when write
  accesses commit); the generator caches, per ``(region, version, shuffle,
  count)``, the gathered sample bytes (``"exact"`` pipeline) or the 8-byte
  per-input digest (``"digest"`` pipeline) plus the final composite key.
  Iterative applications that keep re-hashing unchanged read-only regions
  (kmeans points blocks, stencil halos) hit the cache instead of re-gathering
  megabytes.
* **LRU bounds** on both the shuffle-record store and the digest cache, so
  neither can grow without bound (the seed leaked one full permutation per
  distinct input size forever).

The default ``"exact"`` pipeline is bit-identical to the seed for every
arity, sampling fraction and shuffle flavour.  The optional ``"digest"``
pipeline (``ATMConfig.key_pipeline = "digest"``) hashes each input's sampled
bytes independently and combines the digests with splitmix64 mixing: keys
remain order- and content-sensitive (and identical to the exact keys for
single-input tasks), and unchanged inputs of multi-input tasks are satisfied
by an 8-byte cached digest instead of re-hashed bytes.
"""

from __future__ import annotations

import itertools
import math
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.common.config import ATMConfig
from repro.common.dtypes import significance_order
from repro.common.hashing import (
    HASH_FUNCTIONS,
    HashKey,
    combine_digests,
    hash_padded_buffer,
    padded_sample_buffer,
)
from repro.common.rng import generator_for
from repro.runtime.task import Task

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (stats is light)
    from repro.atm.stats import ATMStats

__all__ = ["HashKeyGenerator", "ShuffleRecord"]

_record_uids = itertools.count()

#: Maximum number of per-count gather plans kept per shuffle record.
_MAX_PLANS_PER_RECORD = 32

#: Dense-sampling crossover: when the sample covers at least 1/16 of the
#: inputs, one sequential concatenation plus a single gather beats per-input
#: gather + scatter (which touches every sampled byte twice, randomly).  ATM
#: steady state lives far below this (p ~ 2^-15 .. 2^-5), where the
#: zero-copy path wins by a wide margin.
_DENSE_SAMPLE_DIVISOR = 16


def _index_dtype(total_bytes: int) -> np.dtype:
    """Narrowest index dtype able to address ``total_bytes`` positions."""
    return np.dtype(np.uint32) if total_bytes <= 0xFFFFFFFF else np.dtype(np.int64)


class ShuffleRecord:
    """The stored shuffle for one ``(task type, total input bytes)`` pair.

    Only the prefix of the (deterministic) full permutation addressed by the
    largest sampling fraction seen so far is stored, using the narrowest
    index dtype that fits.  Derived per-input-structure splits and per-count
    gather plans are cached on the record and accounted in :attr:`nbytes`.
    """

    __slots__ = (
        "task_type_name", "total_bytes", "indices", "uid", "_splits", "_plans",
        "_lock",
    )

    def __init__(self, task_type_name: str, total_bytes: int, indices: np.ndarray) -> None:
        self.task_type_name = task_type_name
        self.total_bytes = total_bytes
        self.indices = indices
        self.uid = next(_record_uids)
        # Guards the derived caches below; the generator's own lock protects
        # the record *store*, not per-record state.
        self._lock = threading.Lock()
        # input-sizes tuple -> (owner ordinal per slot, local offset per slot)
        self._splits: dict[tuple[int, ...], tuple[np.ndarray, np.ndarray]] = {}
        # (input-sizes tuple, count) -> [(ordinal, sample positions, local offsets)]
        self._plans: "OrderedDict[tuple, list[tuple[int, np.ndarray, np.ndarray]]]" = (
            OrderedDict()
        )

    @property
    def stored(self) -> int:
        """Number of shuffle slots currently stored (``ceil(N * p_max)``)."""
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        """Runtime-system memory consumed by the stored index vectors."""
        total = int(self.indices.nbytes)
        with self._lock:
            for owner, local in self._splits.values():
                total += int(owner.nbytes) + int(local.nbytes)
            for plan in self._plans.values():
                for _, positions, locals_ in plan:
                    total += int(positions.nbytes) + int(locals_.nbytes)
        return total

    def replace_indices(self, indices: np.ndarray) -> None:
        """Swap in a longer prefix of the same permutation (regrowth)."""
        with self._lock:
            self.indices = indices
            # Derived caches cover the old prefix only; rebuild lazily.  (Old
            # plans would still be prefix-valid, but their owner/local parents
            # are replaced wholesale, so drop everything for simplicity.)
            self._splits.clear()
            self._plans.clear()

    # -- derived gather structures -------------------------------------------
    def _split_locked(self, sizes: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
        split = self._splits.get(sizes)
        if split is not None:
            return split
        bounds = np.cumsum(np.asarray(sizes, dtype=np.int64))
        starts = bounds - np.asarray(sizes, dtype=np.int64)
        owner_dtype = np.uint16 if len(sizes) <= 0xFFFF else np.int64
        global_idx = self.indices.astype(np.int64, copy=False)
        owner = np.searchsorted(bounds, global_idx, side="right").astype(owner_dtype)
        local = (global_idx - starts[owner]).astype(self.indices.dtype)
        self._splits[sizes] = (owner, local)
        return owner, local

    def split_for(self, sizes: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
        """Map every stored slot to ``(owning input, local byte offset)``."""
        with self._lock:
            return self._split_locked(sizes)

    def plan_for(
        self, sizes: tuple[int, ...], count: int
    ) -> list[tuple[int, np.ndarray, np.ndarray]]:
        """Gather plan for ``count`` sampled bytes of a multi-input task.

        Returns ``(ordinal, positions, locals)`` triples: input ``ordinal``
        contributes its bytes at ``locals`` to the sample-stream positions
        ``positions``.  Plans are derived from prefixes of the stored split,
        so they stay valid across prefix growth.
        """
        key = (sizes, count)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                return plan
            owner, local = self._split_locked(sizes)
            owner_prefix = owner[:count]
            local_prefix = local[:count]
            pos_dtype = np.uint32 if count <= 0xFFFFFFFF else np.int64
            plan = []
            for ordinal in range(len(sizes)):
                positions = np.nonzero(owner_prefix == ordinal)[0]
                if positions.size:
                    plan.append(
                        (ordinal, positions.astype(pos_dtype), local_prefix[positions])
                    )
            self._plans[key] = plan
            while len(self._plans) > _MAX_PLANS_PER_RECORD:
                self._plans.popitem(last=False)
            return plan


class HashKeyGenerator:
    """Computes ATM hash keys for tasks, caching per-type shuffles.

    Parameters
    ----------
    config:
        The ATM configuration (shuffle flavour, hash function, pipeline and
        cache knobs).
    stats:
        Optional :class:`~repro.atm.stats.ATMStats` sink; cache hit/miss and
        shuffle-eviction counters are surfaced there when provided.
    """

    def __init__(self, config: ATMConfig, stats: "Optional[ATMStats]" = None) -> None:
        self.config = config
        self.stats = stats
        self._shuffles: "OrderedDict[tuple[str, int], ShuffleRecord]" = OrderedDict()
        self._lock = threading.Lock()
        self._hash = HASH_FUNCTIONS[config.hash_function]
        # One LRU holds whole-key entries (ints) and per-region sample bytes /
        # digests; values are (payload, accounted_bytes).
        self._cache: "OrderedDict[tuple, tuple[object, int]]" = OrderedDict()
        self._cache_bytes = 0
        # A single cache entry may not swallow more than 1/8 of the budget.
        self._cache_entry_cap = max(4096, config.key_cache_budget_bytes // 8)
        self.counters = {
            "key_cache_hits": 0,
            "key_cache_misses": 0,
            "digest_cache_hits": 0,
            "digest_cache_misses": 0,
            "shuffle_evictions": 0,
            "shuffle_regrowths": 0,
        }

    # -- shuffle management ----------------------------------------------------
    def _generate_prefix(self, task: Task, total_bytes: int, count: int) -> np.ndarray:
        """First ``count`` slots of the deterministic full permutation."""
        rng = generator_for(self.config.shuffle_seed, task.task_type.name, total_bytes)
        if self.config.type_aware:
            descriptors = [
                (access.region.descriptor, access.nbytes) for access in task.inputs
            ]
            full = significance_order(descriptors, rng)
        else:
            full = rng.permutation(total_bytes)
        return np.ascontiguousarray(full[:count]).astype(
            _index_dtype(total_bytes), copy=False
        )

    def _shuffle_for(self, task: Task, total_bytes: int, count: int) -> ShuffleRecord:
        key = (task.task_type.name, total_bytes)
        with self._lock:
            record = self._shuffles.get(key)
            if record is not None:
                self._shuffles.move_to_end(key)
                if record.stored >= count:
                    return record
        # (Re)generate outside the lock: permutation generation is the
        # expensive part and is deterministic, so a racing duplicate is
        # identical and harmless.
        indices = self._generate_prefix(task, total_bytes, count)
        with self._lock:
            record = self._shuffles.get(key)
            if record is not None and record.stored >= count:
                return record
            if record is not None:
                # Grow in place: same permutation, longer prefix.
                record.replace_indices(indices)
                self.counters["shuffle_regrowths"] += 1
            else:
                record = ShuffleRecord(task.task_type.name, total_bytes, indices)
                self._shuffles[key] = record
                self._shuffles.move_to_end(key)
            while len(self._shuffles) > self.config.shuffle_cache_entries:
                self._shuffles.popitem(last=False)
                self.counters["shuffle_evictions"] += 1
                if self.stats is not None:
                    self.stats.record_shuffle_eviction()
            return record

    def shuffle_memory_bytes(self) -> int:
        """Total memory used by stored shuffles (part of the ATM overhead)."""
        with self._lock:
            return sum(record.nbytes for record in self._shuffles.values())

    def shuffle_record_count(self) -> int:
        with self._lock:
            return len(self._shuffles)

    # -- digest / key cache ----------------------------------------------------
    def _cache_get(self, key: tuple) -> object | None:
        with self._lock:
            entry = self._cache.get(key)
            if entry is None:
                return None
            self._cache.move_to_end(key)
            return entry[0]

    def _cache_put(self, key: tuple, payload: object, nbytes: int) -> None:
        if nbytes > self._cache_entry_cap:
            return
        with self._lock:
            old = self._cache.pop(key, None)
            if old is not None:
                self._cache_bytes -= old[1]
            self._cache[key] = (payload, nbytes)
            self._cache_bytes += nbytes
            while self._cache_bytes > self.config.key_cache_budget_bytes and self._cache:
                _, (_, dropped) = self._cache.popitem(last=False)
                self._cache_bytes -= dropped

    def cache_info(self) -> dict:
        """Cache effectiveness and footprint (surfaced in ATM memory stats)."""
        with self._lock:
            info = dict(self.counters)
            info["cache_entries"] = len(self._cache)
            info["cache_bytes"] = self._cache_bytes
            info["shuffle_records"] = len(self._shuffles)
        info["shuffle_bytes"] = self.shuffle_memory_bytes()
        return info

    def _count_key_cache(self, hit: bool) -> None:
        self.counters["key_cache_hits" if hit else "key_cache_misses"] += 1
        if self.stats is not None:
            self.stats.record_key_cache(hit)

    def _count_digest_cache(self, hit: bool) -> None:
        self.counters["digest_cache_hits" if hit else "digest_cache_misses"] += 1
        if self.stats is not None:
            self.stats.record_digest_cache(hit)

    # -- key computation ---------------------------------------------------------
    def selected_byte_count(self, total_bytes: int, p: float) -> int:
        """How many bytes a fraction ``p`` selects (at least 1 for p > 0)."""
        if total_bytes == 0:
            return 0
        return max(1, min(total_bytes, math.ceil(total_bytes * p)))

    def compute(self, task: Task, p: float) -> HashKey:
        """Compute the hash key of ``task`` using a sampling fraction ``p``."""
        inputs = task.inputs
        total_bytes = sum(access.nbytes for access in inputs)
        if total_bytes == 0:
            # Keyed only by the task type: tasks without inputs are redundant
            # with each other by definition.
            value = self._hash(task.task_type.name.encode("utf-8"), self.config.hash_seed)
            return HashKey(value=value, p=p, sampled_bytes=0, total_bytes=0)
        count = self.selected_byte_count(total_bytes, p)

        tokens: Optional[tuple] = None
        whole_key: Optional[tuple] = None
        if self.config.key_cache:
            tokens = tuple(access.region.version_token for access in inputs)
            whole_key = ("K", task.task_type.name, total_bytes, count, tokens)
            cached = self._cache_get(whole_key)
            if cached is not None:
                self._count_key_cache(True)
                return HashKey(
                    value=cached, p=p, sampled_bytes=int(count),
                    total_bytes=int(total_bytes),
                )
            self._count_key_cache(False)

        if count >= total_bytes:
            # Full sampling: every byte is read in input order; no shuffle is
            # stored or needed (the seed allocated a full permutation here and
            # never used it).
            views = [access.region.to_bytes_view() for access in inputs]
            data = views[0] if len(views) == 1 else np.concatenate(views)
            value = self._hash(data, self.config.hash_seed)
        else:
            record = self._shuffle_for(task, total_bytes, count)
            sizes = tuple(access.nbytes for access in inputs)
            if self.config.key_pipeline == "digest" and len(inputs) > 1:
                value = self._compute_digest(task, record, sizes, count, tokens)
            else:
                value = self._compute_exact(task, record, sizes, count, tokens)

        if whole_key is not None:
            self._cache_put(whole_key, value, nbytes=64)
        return HashKey(
            value=value, p=p, sampled_bytes=int(count), total_bytes=int(total_bytes)
        )

    # -- pipelines ---------------------------------------------------------------
    def _sampled_segment(
        self,
        view: np.ndarray,
        locals_: np.ndarray,
        record: ShuffleRecord,
        sizes: tuple[int, ...],
        count: int,
        ordinal: int,
        token: Optional[tuple],
    ) -> np.ndarray:
        """This input's sampled bytes, served from the version cache if clean.

        ``sizes`` (the per-input byte layout) is part of the key: two tasks of
        the same type and total size may split those bytes differently, and
        the same region then contributes different local offsets per layout.
        """
        if token is None:
            return view[locals_]
        cache_key = ("S", record.uid, sizes, count, ordinal, token)
        segment = self._cache_get(cache_key)
        if segment is not None:
            self._count_digest_cache(True)
            return segment
        self._count_digest_cache(False)
        segment = np.take(view, locals_)
        self._cache_put(cache_key, segment, nbytes=int(segment.nbytes) + 64)
        return segment

    def _compute_exact(
        self,
        task: Task,
        record: ShuffleRecord,
        sizes: tuple[int, ...],
        count: int,
        tokens: Optional[tuple],
    ) -> int:
        """Seed-identical key: hash the interleaved sampled byte stream.

        Sampled bytes are gathered per input straight into their interleaved
        positions of one padded hash buffer — bit-identical to the seed's
        ``concatenate-then-gather`` without ever building the concatenation.
        """
        inputs = task.inputs
        buf = padded_sample_buffer(count)
        body = buf[:count]
        if len(inputs) == 1:
            view = inputs[0].region.to_bytes_view()
            locals_ = record.indices[:count]
            if tokens is None:
                np.take(view, locals_, out=body)
            else:
                body[:] = self._sampled_segment(
                    view, locals_, record, sizes, count, 0, tokens[0]
                )
        elif count * _DENSE_SAMPLE_DIVISOR >= record.total_bytes:
            # Dense sample: a sequential concatenation plus one gather moves
            # fewer random bytes than per-input gather + scatter.
            concatenated = np.concatenate(
                [access.region.to_bytes_view() for access in inputs]
            )
            np.take(concatenated, record.indices[:count], out=body)
        else:
            views = [access.region.to_bytes_view() for access in inputs]
            for ordinal, positions, locals_ in record.plan_for(sizes, count):
                segment = self._sampled_segment(
                    views[ordinal], locals_, record, sizes, count, ordinal,
                    tokens[ordinal] if tokens is not None else None,
                )
                body[positions] = segment
        return hash_padded_buffer(
            buf, count, self.config.hash_seed, self.config.hash_function
        )

    def _compute_digest(
        self,
        task: Task,
        record: ShuffleRecord,
        sizes: tuple[int, ...],
        count: int,
        tokens: Optional[tuple],
    ) -> int:
        """Digest pipeline: per-input digests combined with splitmix64.

        Each input's sampled bytes (in shuffle order within the input) are
        hashed independently; unchanged inputs are satisfied by an 8-byte
        cached digest.  The composite mixes the digests in input order, so it
        stays order- and content-sensitive; single-input tasks never reach
        this path (their composite equals the exact key).
        """
        inputs = task.inputs
        plan = {
            ordinal: locals_
            for ordinal, _, locals_ in record.plan_for(sizes, count)
        }
        digests: list[int] = []
        empty = np.empty(0, dtype=np.uint8)
        for ordinal, access in enumerate(inputs):
            token = tokens[ordinal] if tokens is not None else None
            cache_key = ("D", record.uid, sizes, count, ordinal, token)
            digest = self._cache_get(cache_key) if token is not None else None
            if digest is None:
                if token is not None:
                    self._count_digest_cache(False)
                locals_ = plan.get(ordinal)
                sampled = (
                    access.region.to_bytes_view()[locals_]
                    if locals_ is not None
                    else empty
                )
                digest = self._hash(sampled, self.config.hash_seed)
                if token is not None:
                    self._cache_put(cache_key, digest, nbytes=72)
            else:
                self._count_digest_cache(True)
            digests.append(digest)
        return combine_digests(digests, self.config.hash_seed)
