"""Hash-key generation (paper Sections III-B and III-C).

For every *task type* the generator stores one shuffled vector of byte
indexes over the concatenated data inputs.  The shuffle is computed the first
time a task of that type (and input size) is seen and reused afterwards, just
as the paper stores the shuffled index vector in the runtime system.

Two shuffle flavours are supported:

* **plain** — a uniform random permutation of all input byte positions;
* **type-aware** — the most significant byte of every element (of every
  input) is shuffled first, then the next most significant byte, and so on
  (Section III-C), so small sampling fractions still cover sign/exponent
  bits.

Given a sampling fraction ``p``, the first ``ceil(N * p)`` indexes of the
stored vector select the bytes that are gathered and fed to the configured
hash function; the result is an 8-byte :class:`~repro.common.hashing.HashKey`.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

from repro.common.config import ATMConfig
from repro.common.dtypes import significance_order
from repro.common.hashing import HASH_FUNCTIONS, HashKey
from repro.common.rng import generator_for
from repro.runtime.task import Task

__all__ = ["HashKeyGenerator", "ShuffleRecord"]


@dataclass
class ShuffleRecord:
    """The per-task-type stored shuffle (one per distinct total input size)."""

    task_type_name: str
    total_bytes: int
    indices: np.ndarray

    @property
    def nbytes(self) -> int:
        """Runtime-system memory consumed by the stored index vector."""
        return int(self.indices.nbytes)


class HashKeyGenerator:
    """Computes ATM hash keys for tasks, caching per-type shuffles."""

    def __init__(self, config: ATMConfig) -> None:
        self.config = config
        self._shuffles: dict[tuple[str, int], ShuffleRecord] = {}
        self._lock = threading.Lock()
        self._hash = HASH_FUNCTIONS[config.hash_function]

    # -- shuffle management ----------------------------------------------------
    def _shuffle_for(self, task: Task, total_bytes: int) -> ShuffleRecord:
        key = (task.task_type.name, total_bytes)
        with self._lock:
            record = self._shuffles.get(key)
            if record is not None:
                return record
            rng = generator_for(self.config.shuffle_seed, task.task_type.name, total_bytes)
            if self.config.type_aware:
                descriptors = [
                    (access.region.descriptor, access.nbytes) for access in task.inputs
                ]
                indices = significance_order(descriptors, rng)
            else:
                indices = rng.permutation(total_bytes).astype(np.int64)
            record = ShuffleRecord(task.task_type.name, total_bytes, indices)
            self._shuffles[key] = record
            return record

    def shuffle_memory_bytes(self) -> int:
        """Total memory used by stored shuffles (part of the ATM overhead)."""
        with self._lock:
            return sum(record.nbytes for record in self._shuffles.values())

    # -- key computation ---------------------------------------------------------
    def selected_byte_count(self, total_bytes: int, p: float) -> int:
        """How many bytes a fraction ``p`` selects (at least 1 for p > 0)."""
        if total_bytes == 0:
            return 0
        return max(1, min(total_bytes, math.ceil(total_bytes * p)))

    def compute(self, task: Task, p: float) -> HashKey:
        """Compute the hash key of ``task`` using a sampling fraction ``p``."""
        inputs = task.inputs
        total_bytes = sum(access.nbytes for access in inputs)
        if total_bytes == 0:
            # Keyed only by the task type: tasks without inputs are redundant
            # with each other by definition.
            value = self._hash(task.task_type.name.encode("utf-8"), self.config.hash_seed)
            return HashKey(value=value, p=p, sampled_bytes=0, total_bytes=0)
        concatenated = (
            inputs[0].region.to_bytes_view()
            if len(inputs) == 1
            else np.concatenate([access.region.to_bytes_view() for access in inputs])
        )
        record = self._shuffle_for(task, total_bytes)
        count = self.selected_byte_count(total_bytes, p)
        if count >= total_bytes:
            sampled = concatenated
        else:
            sampled = concatenated[record.indices[:count]]
        value = self._hash(sampled, self.config.hash_seed)
        return HashKey(
            value=value, p=p, sampled_bytes=int(count), total_bytes=int(total_bytes)
        )
