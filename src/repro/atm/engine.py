"""The ATM memoization engine (paper Figure 1).

The engine implements the runtime's
:class:`~repro.runtime.atm_protocol.MemoizationEngineProtocol`:

``task_ready``
    Invoked when a worker pulls a task from the ready queue.  The engine
    computes the hash key from the (sampled) inputs, probes the THT, then the
    IKT, and tells the executor whether to execute, skip (outputs already
    copied from the THT) or defer (an identical task is in flight).

``task_finished``
    Invoked when the task's processing completes.  Executed tasks commit
    their outputs to the THT, retire their IKT entry and satisfy any
    postponed output-copy petitions registered by deferred consumers.
    Training hits additionally measure the Chebyshev error against the stored
    outputs and feed it to the Dynamic-ATM trainer.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

import numpy as np

from repro.common.config import ATMConfig
from repro.common.errors import combined_chebyshev_error
from repro.common.exceptions import MemoizationError
from repro.atm.ikt import InFlightKeyTable
from repro.atm.keygen import HashKeyGenerator
from repro.atm.policy import ATMPolicy, StaticATMPolicy
from repro.atm.stats import ATMStats
from repro.atm.tht import TaskHistoryTable, THTEntry
from repro.runtime.atm_protocol import ATMAction, ATMCommitInfo, ATMDecision
from repro.runtime.task import Task

__all__ = ["ATMEngine"]


class ATMEngine:
    """Approximate Task Memoization engine."""

    def __init__(
        self,
        config: Optional[ATMConfig] = None,
        policy: Optional[ATMPolicy] = None,
        num_threads: int = 8,
    ) -> None:
        self.config = config or ATMConfig()
        self.policy = policy or StaticATMPolicy(self.config)
        self.stats = ATMStats()
        # Policies carry their own (possibly overridden) config copy; the THT
        # geometry always comes from the engine-level config.
        self.keygen = HashKeyGenerator(self.policy.config, stats=self.stats)
        self.tht = TaskHistoryTable(self.config)
        self.ikt = InFlightKeyTable(max_entries=max(num_threads, 1)) if self.config.use_ikt else None
        self._petitions: dict[int, list[Task]] = {}
        self._petition_lock = threading.Lock()
        self._deferred_callback: Optional[Callable[[Task, int], None]] = None

    # -- protocol: callbacks -----------------------------------------------------
    def set_deferred_completion_callback(
        self, callback: Optional[Callable[[Task, int], None]]
    ) -> None:
        self._deferred_callback = callback

    # -- protocol: lookup ----------------------------------------------------------
    def task_ready(self, task: Task, worker_id: int = 0) -> ATMDecision:
        eligible = task.task_type.atm_eligible
        self.stats.record_seen(task.task_type.name, eligible)
        if not eligible:
            return ATMDecision(action=ATMAction.EXECUTE, atm_handled=False)
        if self.policy.is_blacklisted(task):
            self.stats.record_blacklisted(task.task_type.name)
            return ATMDecision(action=ATMAction.EXECUTE, atm_handled=False)

        p = self.policy.sampling_fraction(task)
        key = self.keygen.compute(task, p)
        self.stats.record_hash(key.sampled_bytes)
        training = self.policy.is_training(task)

        entry = self.tht.lookup(key, task.task_type.name)
        if entry is not None:
            if training:
                # Run the task anyway; the error is measured at task_finished.
                return ATMDecision(
                    action=ATMAction.EXECUTE_AND_TRAIN,
                    hashed_bytes=key.sampled_bytes,
                    p=p,
                    atm_handled=True,
                    payload={"key": key, "entry": entry, "ikt_registered": False},
                )
            copied = self._copy_outputs_from_entry(task, entry)
            self.stats.record_tht_hit(
                task.task_type.name, entry.producer_index, task.creation_index, copied
            )
            return ATMDecision(
                action=ATMAction.SKIP,
                hashed_bytes=key.sampled_bytes,
                copied_bytes=copied,
                p=p,
                atm_handled=True,
                payload={"key": key},
            )

        if self.ikt is not None and not training:
            producer = self.ikt.lookup(key, task.task_type.name)
            if producer is not None and producer is not task:
                with self._petition_lock:
                    self._petitions.setdefault(producer.task_id, []).append(task)
                self.stats.record_ikt_hit(
                    task.task_type.name,
                    producer.creation_index,
                    task.creation_index,
                    task.output_bytes,
                )
                return ATMDecision(
                    action=ATMAction.DEFER,
                    hashed_bytes=key.sampled_bytes,
                    copied_bytes=task.output_bytes,
                    p=p,
                    waiting_on=producer,
                    atm_handled=True,
                    payload={"key": key},
                )

        # Full miss: the task will execute; register it as in flight.
        self.stats.record_miss(task.task_type.name)
        registered = False
        if self.ikt is not None:
            registered = self.ikt.register(key, task.task_type.name, task)
        return ATMDecision(
            action=ATMAction.EXECUTE,
            hashed_bytes=key.sampled_bytes,
            p=p,
            atm_handled=True,
            payload={"key": key, "ikt_registered": registered},
        )

    # -- protocol: commit ----------------------------------------------------------
    def task_finished(
        self, task: Task, decision: ATMDecision, executed: bool, worker_id: int = 0
    ) -> ATMCommitInfo:
        if not decision.atm_handled:
            return ATMCommitInfo()
        action = decision.action
        if action == ATMAction.SKIP or action == ATMAction.DEFER:
            # SKIP already copied outputs in task_ready; DEFER completion is
            # handled when the producer commits.
            return ATMCommitInfo()
        if not executed:
            raise MemoizationError(
                f"task {task.label} reported as not executed but decision was {action}"
            )

        key = decision.payload.get("key")
        if key is None:
            raise MemoizationError(f"missing hash key for task {task.label}")

        if action == ATMAction.EXECUTE_AND_TRAIN:
            entry: THTEntry = decision.payload["entry"]
            tau = self._measure_training_error(task, entry)
            self.stats.record_training_hit(task.task_type.name, tau)
            self.policy.record_training_outcome(task, tau)

        # Commit the (fresh) outputs to the THT.
        snapshots = [access.region.snapshot() for access in task.outputs]
        committed = self.tht.insert(
            key, task.task_type.name, snapshots, producer_index=task.creation_index
        )
        self.stats.record_commit(committed.stored_bytes)

        # Retire the in-flight entry and satisfy postponed consumers.
        forwarded = 0
        completed = 0
        if decision.payload.get("ikt_registered") and self.ikt is not None:
            self.ikt.retire(key, task.task_type.name, task)
        with self._petition_lock:
            waiters = self._petitions.pop(task.task_id, [])
        for waiter in waiters:
            copied = self._copy_outputs_from_entry(waiter, committed)
            forwarded += copied
            completed += 1
            if self._deferred_callback is not None:
                self._deferred_callback(waiter, copied)
        return ATMCommitInfo(
            stored_bytes=committed.stored_bytes,
            forwarded_bytes=forwarded,
            deferred_completed=completed,
        )

    def task_abandoned(self, task: Task, decision: ATMDecision) -> list[Task]:
        """Release engine state for a task that will never commit.

        Called by executor supervision when a task fails terminally (see
        DESIGN.md §7): retires the in-flight IKT registration so future
        identical tasks do not defer on a dead producer, and returns any
        already-deferred consumers — the outputs they were waiting for will
        never be produced, so the executor re-executes them directly.
        """
        if not decision.atm_handled:
            return []
        key = decision.payload.get("key")
        if (
            key is not None
            and decision.payload.get("ikt_registered")
            and self.ikt is not None
        ):
            self.ikt.retire(key, task.task_type.name, task)
        with self._petition_lock:
            return self._petitions.pop(task.task_id, [])

    # -- helpers ---------------------------------------------------------------------
    @staticmethod
    def _copy_outputs_from_entry(task: Task, entry: THTEntry) -> int:
        """``copyOuts()``: overwrite the task outputs with the stored ones."""
        outputs = task.outputs
        if len(outputs) != len(entry.outputs):
            raise MemoizationError(
                f"output arity mismatch for {task.label}: task has {len(outputs)} "
                f"outputs, THT entry has {len(entry.outputs)}"
            )
        copied = 0
        for access, stored in zip(outputs, entry.outputs):
            if access.region.array.size != stored.size:
                raise MemoizationError(
                    f"output size mismatch for {task.label}: {access.region.shape} "
                    f"vs stored {stored.shape}"
                )
            access.region.copy_from(stored)
            copied += int(stored.nbytes)
        return copied

    @staticmethod
    def _measure_training_error(task: Task, entry: THTEntry) -> float:
        """Chebyshev error between the freshly computed and stored outputs."""
        pairs = []
        for access, stored in zip(task.outputs, entry.outputs):
            fresh = np.asarray(access.region.array)
            pairs.append((fresh, stored.reshape(fresh.shape)))
        return combined_chebyshev_error(pairs)

    # -- cross-process deltas -----------------------------------------------------------
    def enable_delta_snapshots(self) -> None:
        """Journal THT commits so :meth:`snapshot` ships incremental deltas.

        Process-backend workers call this once at startup; each drain-barrier
        ``snapshot(reset=True)`` then contains only the work done since the
        previous barrier, making :meth:`merge` on the parent idempotent-safe.
        """
        self.tht.enable_journal()

    def snapshot(self, reset: bool = False) -> dict:
        """Serializable engine state delta: statistics + THT commits."""
        return {
            "stats": self.stats.snapshot(reset=reset),
            "tht": self.tht.snapshot(reset=reset),
        }

    def merge(self, delta: dict) -> None:
        """Fold a peer engine's :meth:`snapshot` into this engine.

        The parent process uses this to consolidate per-worker engines after
        a process-backend drain: statistics counters and reuse events are
        accumulated, THT entries are inserted with refresh/FIFO semantics.
        IKT state is never merged — in-flight keys are meaningless across
        process boundaries once a drain barrier has completed.
        """
        if not delta:
            return
        self.stats.merge(delta.get("stats", {}))
        self.tht.merge(delta.get("tht", {}))

    # -- reporting -------------------------------------------------------------------
    def memory_bytes(self) -> dict[str, int]:
        """ATM memory footprint breakdown (Table III)."""
        tht_bytes = self.tht.memory_bytes()
        ikt_bytes = self.ikt.memory_bytes() if self.ikt is not None else 0
        shuffle_bytes = self.keygen.shuffle_memory_bytes()
        key_cache_bytes = self.keygen.cache_info()["cache_bytes"]
        return {
            "tht": tht_bytes,
            "ikt": ikt_bytes,
            "shuffles": shuffle_bytes,
            "key_cache": key_cache_bytes,
            "total": tht_bytes + ikt_bytes + shuffle_bytes + key_cache_bytes,
        }

    def memory_overhead_percent(self, application_bytes: int) -> float:
        parts = self.memory_bytes()
        return self.stats.memory_overhead_percent(
            application_bytes, parts["tht"], parts["ikt"], parts["shuffles"]
        )

    def describe(self) -> str:
        return (
            f"ATMEngine(policy={self.policy.describe()}, "
            f"buckets=2^{self.config.tht_bucket_bits}, M={self.config.tht_bucket_capacity}, "
            f"ikt={'on' if self.ikt is not None else 'off'})"
        )
