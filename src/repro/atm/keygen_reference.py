"""Reference (seed) hash-key generator, kept verbatim for equivalence proofs.

This module preserves the original, unoptimised key-generation algorithm the
reproduction shipped with: concatenate all input bytes on every lookup, store
one full ``int64`` permutation per ``(task type, total bytes)`` and gather the
first ``ceil(N * p)`` shuffled positions.  The optimised generator in
:mod:`repro.atm.keygen` must produce **bit-identical** ``HashKey.value``
results (its default ``"exact"`` pipeline) — the equivalence test-suite in
``tests/atm/test_keygen_equivalence.py`` and the microbenchmarks in
:mod:`repro.perf.micro` both compare against this implementation.

Do not optimise this module; it is the fixed point the fast path is measured
and verified against.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

from repro.common.config import ATMConfig
from repro.common.dtypes import significance_order
from repro.common.hashing import HASH_FUNCTIONS, HashKey
from repro.common.rng import generator_for
from repro.runtime.task import Task

__all__ = ["ReferenceKeyGenerator", "ReferenceShuffleRecord"]


@dataclass
class ReferenceShuffleRecord:
    """The seed's stored shuffle: a full permutation, one int64 per byte."""

    task_type_name: str
    total_bytes: int
    indices: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.indices.nbytes)


class ReferenceKeyGenerator:
    """The seed implementation of :class:`repro.atm.keygen.HashKeyGenerator`."""

    def __init__(self, config: ATMConfig) -> None:
        self.config = config
        self._shuffles: dict[tuple[str, int], ReferenceShuffleRecord] = {}
        self._lock = threading.Lock()
        self._hash = HASH_FUNCTIONS[config.hash_function]

    # -- shuffle management ----------------------------------------------------
    def _shuffle_for(self, task: Task, total_bytes: int) -> ReferenceShuffleRecord:
        key = (task.task_type.name, total_bytes)
        with self._lock:
            record = self._shuffles.get(key)
            if record is not None:
                return record
            rng = generator_for(self.config.shuffle_seed, task.task_type.name, total_bytes)
            if self.config.type_aware:
                descriptors = [
                    (access.region.descriptor, access.nbytes) for access in task.inputs
                ]
                indices = significance_order(descriptors, rng)
            else:
                indices = rng.permutation(total_bytes).astype(np.int64)
            record = ReferenceShuffleRecord(task.task_type.name, total_bytes, indices)
            self._shuffles[key] = record
            return record

    def shuffle_memory_bytes(self) -> int:
        with self._lock:
            return sum(record.nbytes for record in self._shuffles.values())

    # -- key computation ---------------------------------------------------------
    def selected_byte_count(self, total_bytes: int, p: float) -> int:
        if total_bytes == 0:
            return 0
        return max(1, min(total_bytes, math.ceil(total_bytes * p)))

    def compute(self, task: Task, p: float) -> HashKey:
        inputs = task.inputs
        total_bytes = sum(access.nbytes for access in inputs)
        if total_bytes == 0:
            value = self._hash(task.task_type.name.encode("utf-8"), self.config.hash_seed)
            return HashKey(value=value, p=p, sampled_bytes=0, total_bytes=0)
        concatenated = (
            inputs[0].region.to_bytes_view()
            if len(inputs) == 1
            else np.concatenate([access.region.to_bytes_view() for access in inputs])
        )
        record = self._shuffle_for(task, total_bytes)
        count = self.selected_byte_count(total_bytes, p)
        if count >= total_bytes:
            sampled = concatenated
        else:
            sampled = concatenated[record.indices[:count]]
        value = self._hash(sampled, self.config.hash_seed)
        return HashKey(
            value=value, p=p, sampled_bytes=int(count), total_bytes=int(total_bytes)
        )
