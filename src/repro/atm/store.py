"""Persistent, shared THT stores (DESIGN.md §9).

The THT's ``snapshot(reset)/merge`` delta protocol (process backend PR 2,
network backend PR 5, serving merge pump PR 8) already defines the unit of
exchange: a picklable ``{"entries": [THTEntry, ...], "counters": {...}}``
dict.  This module gives those deltas a life beyond the ``Session`` — two
backends behind one tiny interface, selected by the ``atm.tht_store`` URL:

* :class:`FileTHTStore` (``file://<path>``) — a versioned snapshot file.
  The format reuses the :mod:`repro.runtime.net_wire` framing (magic +
  length + CRC32 per frame, so corruption and truncation are detected
  deterministically): one header frame ``("tht_store", {schema, geometry})``
  followed by any number of delta frames ``("tht_delta", delta)``.  Flushes
  *append* one delta frame (a single ``write`` on an ``O_APPEND`` handle);
  when the file accumulates more than ``tht_store_compact_frames`` deltas it
  is rewritten as one consolidated snapshot via a temp file and an atomic
  ``os.replace`` — readers never observe a half-written store.

* :class:`ShardTHTStore` (``tcp://<host>:<port>``) — a client of the
  standalone cache-shard daemon (``scripts/tht_shard.py``), speaking
  net_wire frames: ``hello``/``hello_ack`` (protocol handshake), ``fetch``
  (download the shard's table as one delta), ``publish`` (upload a delta),
  ``stats``.  Many sessions and gateways attach to one shard and share a
  warm tier without drain barriers: publishes are incremental merges on the
  shard, fetches are whole-table snapshots.

Failure semantics: a store that cannot be read raises
:class:`~repro.common.exceptions.THTStoreCorruptError` (bad frame, bad
header, schema mismatch) or
:class:`~repro.common.exceptions.THTStoreUnavailableError` (shard
unreachable) — never silently-garbage entries.  The Session catches both on
warm-start and falls back to a cold table; see
:meth:`repro.session.Session` wiring.
"""

from __future__ import annotations

import os
import socket
import tempfile
import threading
from pathlib import Path
from typing import Any, Optional

from repro.common.config import ATMConfig
from repro.common.exceptions import (
    THTStoreCorruptError,
    THTStoreError,
    THTStoreUnavailableError,
    WireProtocolError,
)
from repro.runtime.net_wire import (
    encode_frame,
    iter_frames,
    read_frame,
    write_frame,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "SHARD_PROTOCOL_VERSION",
    "FileTHTStore",
    "ShardTHTStore",
    "open_store",
    "parse_store_url",
    "merge_deltas",
    "serve_shard_connection",
    "ShardState",
]

#: Bumped on any incompatible change to the store file layout.  A file with
#: a different schema raises :class:`THTStoreCorruptError` (cold start)
#: rather than being guessed at.
STORE_SCHEMA_VERSION = 1

#: Handshake version of the cache-shard wire vocabulary.
SHARD_PROTOCOL_VERSION = 1

_HEADER_KIND = "tht_store"
_DELTA_KIND = "tht_delta"

#: Socket timeout of shard client operations (connect and per-reply).
_SHARD_TIMEOUT_S = 10.0


def _entry_key(entry) -> tuple:
    """Identity of one THT entry for later-wins dedup across deltas."""
    return (entry.key_value, entry.task_type_name, entry.p_canonical)


def merge_deltas(deltas: "list[dict]") -> dict:
    """Fold an ordered delta sequence into one: later entries win.

    This is the pure-data analogue of replaying ``THT.merge`` per delta —
    used to consolidate a store file's appended frames into a single
    snapshot and to aggregate what :meth:`FileTHTStore.load` returns.
    Counters are summed (they are cumulative event counts).
    """
    entries: dict[tuple, Any] = {}
    counters = {"hits": 0, "misses": 0, "insertions": 0, "evictions": 0}
    for delta in deltas:
        for entry in delta.get("entries", []):
            entries[_entry_key(entry)] = entry
        for name in counters:
            counters[name] += int(delta.get("counters", {}).get(name, 0))
    return {"entries": list(entries.values()), "counters": counters}


def parse_store_url(url: str) -> tuple[str, Any]:
    """Split a ``tht_store`` URL into ``("file", Path)`` or ``("tcp", (host, port))``."""
    url = url.strip()
    if url.startswith("file://"):
        path = url[len("file://"):]
        if not path:
            raise THTStoreError("tht_store file:// URL names no path")
        return "file", Path(path)
    if url.startswith("tcp://"):
        address = url[len("tcp://"):]
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise THTStoreError(
                f"tht_store tcp:// URL must be tcp://host:port, got {url!r}"
            )
        return "tcp", (host, int(port))
    raise THTStoreError(
        f"tht_store must be a file:// or tcp:// URL, got {url!r}"
    )


def open_store(url: str, atm_config: Optional[ATMConfig] = None):
    """Open the store named by a ``file://`` / ``tcp://`` URL."""
    kind, target = parse_store_url(url)
    config = atm_config or ATMConfig()
    if kind == "file":
        return FileTHTStore(target, atm_config=config)
    host, port = target
    return ShardTHTStore(host, port, atm_config=config)


# -- file backend ---------------------------------------------------------------------
class FileTHTStore:
    """Warm-start snapshot file: header frame + appended delta frames."""

    def __init__(self, path: "Path | str", atm_config: Optional[ATMConfig] = None) -> None:
        self.path = Path(path)
        self.config = atm_config or ATMConfig()
        self.url = f"file://{self.path}"
        self._lock = threading.Lock()

    # -- framing ------------------------------------------------------------------
    def _header_frame(self) -> bytes:
        return encode_frame(
            (
                _HEADER_KIND,
                {
                    "schema": STORE_SCHEMA_VERSION,
                    "tht_bucket_bits": self.config.tht_bucket_bits,
                    "tht_bucket_capacity": self.config.tht_bucket_capacity,
                },
            )
        )

    def _read_frames(self) -> list:
        """Decode every frame of the file; raise the named error on damage."""
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise THTStoreError(f"cannot read THT store {self.path}: {exc}") from exc
        try:
            frames = list(iter_frames(raw))
        except WireProtocolError as exc:
            raise THTStoreCorruptError(
                f"THT store {self.path} is corrupt or truncated: {exc}"
            ) from exc
        if not frames:
            raise THTStoreCorruptError(f"THT store {self.path} is empty (no header)")
        header = frames[0]
        if (
            not isinstance(header, tuple)
            or len(header) != 2
            or header[0] != _HEADER_KIND
            or not isinstance(header[1], dict)
        ):
            raise THTStoreCorruptError(
                f"THT store {self.path} does not start with a {_HEADER_KIND!r} header"
            )
        schema = header[1].get("schema")
        if schema != STORE_SCHEMA_VERSION:
            raise THTStoreCorruptError(
                f"THT store {self.path} has schema {schema!r}; this build "
                f"reads schema {STORE_SCHEMA_VERSION}"
            )
        for frame in frames[1:]:
            if (
                not isinstance(frame, tuple)
                or len(frame) != 2
                or frame[0] != _DELTA_KIND
                or not isinstance(frame[1], dict)
            ):
                raise THTStoreCorruptError(
                    f"THT store {self.path} contains a non-delta frame "
                    f"{frame[0] if isinstance(frame, tuple) and frame else frame!r}"
                )
        return frames

    # -- store interface ----------------------------------------------------------
    def load(self) -> dict:
        """Aggregated content of the store (empty delta for a missing file)."""
        with self._lock:
            frames = self._read_frames()
        return merge_deltas([frame[1] for frame in frames[1:]])

    def publish(self, delta: dict) -> int:
        """Append one delta frame (then compact when the file has grown).

        The append is a single ``write`` on an append-mode handle, fsynced,
        so concurrent publishers interleave whole frames; compaction
        rewrites through a temp file + atomic ``os.replace``.
        """
        entries = delta.get("entries", [])
        if not entries:
            return 0
        frame = encode_frame((_DELTA_KIND, delta))
        compact_after = False
        with self._lock:
            try:
                existing = self._read_frames()
            except THTStoreCorruptError:
                # Self-heal: a damaged store is replaced by this snapshot
                # instead of having good frames appended after bad bytes.
                existing = []
            if not existing:
                self._write_atomic([frame])
            else:
                with open(self.path, "ab") as handle:
                    handle.write(frame)
                    handle.flush()
                    os.fsync(handle.fileno())
                compact_after = len(existing) > self.config.tht_store_compact_frames
        if compact_after:
            self.compact()
        return len(entries)

    def compact(self) -> None:
        """Rewrite the file as header + one consolidated delta frame."""
        with self._lock:
            frames = self._read_frames()
            if not frames:
                return
            merged = merge_deltas([frame[1] for frame in frames[1:]])
            self._write_atomic([encode_frame((_DELTA_KIND, merged))])

    def _write_atomic(self, delta_frames: list) -> None:
        """Write header + frames to a temp file and atomically replace."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=self.path.name + ".", suffix=".tmp", dir=self.path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(self._header_frame())
                for frame in delta_frames:
                    handle.write(frame)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def stats(self) -> dict:
        with self._lock:
            try:
                frames = self._read_frames()
            except THTStoreError:
                frames = []
        merged = merge_deltas([frame[1] for frame in frames[1:]])
        return {
            "backend": "file",
            "path": str(self.path),
            "delta_frames": max(len(frames) - 1, 0),
            "entries": len(merged["entries"]),
            "bytes": self.path.stat().st_size if self.path.exists() else 0,
        }

    def close(self) -> None:
        """Nothing to release: every publish is already durable."""

    def __enter__(self) -> "FileTHTStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- tcp shard backend ---------------------------------------------------------------
class ShardTHTStore:
    """Client of one ``scripts/tht_shard.py`` cache-shard daemon."""

    def __init__(
        self,
        host: str,
        port: int,
        atm_config: Optional[ATMConfig] = None,
        timeout_s: float = _SHARD_TIMEOUT_S,
    ) -> None:
        self.host = host
        self.port = port
        self.config = atm_config or ATMConfig()
        self.url = f"tcp://{host}:{port}"
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout_s)
            self._sock.settimeout(timeout_s)
            hello = self._request(("hello", {"protocol": SHARD_PROTOCOL_VERSION}))
        except OSError as exc:
            self.close()
            raise THTStoreUnavailableError(
                f"THT shard {self.url} unreachable: {exc}"
            ) from exc
        except THTStoreError:
            self.close()
            raise
        if hello.get("protocol") != SHARD_PROTOCOL_VERSION:
            self.close()
            raise THTStoreUnavailableError(
                f"THT shard {self.url} speaks protocol "
                f"{hello.get('protocol')!r}, this client speaks "
                f"{SHARD_PROTOCOL_VERSION}"
            )

    def _request(self, message: tuple) -> Any:
        """One request/reply round-trip; maps transport errors to the taxonomy."""
        expected = {
            "hello": "hello_ack",
            "fetch": "fetch_result",
            "publish": "publish_ack",
            "stats": "stats_reply",
        }[message[0]]
        with self._lock:
            if self._sock is None:
                raise THTStoreUnavailableError(
                    f"THT shard connection {self.url} is closed"
                )
            try:
                write_frame(self._sock, message)
                reply = read_frame(self._sock)
            except WireProtocolError as exc:
                raise THTStoreCorruptError(
                    f"THT shard {self.url} sent a malformed reply: {exc}"
                ) from exc
            except (OSError, EOFError) as exc:
                raise THTStoreUnavailableError(
                    f"THT shard {self.url} unreachable: {exc}"
                ) from exc
        if not isinstance(reply, tuple) or not reply:
            raise THTStoreCorruptError(
                f"THT shard {self.url} sent a non-tuple reply"
            )
        if reply[0] == "error":
            raise THTStoreError(
                f"THT shard {self.url} refused {message[0]!r}: {reply[1:]}"
            )
        if reply[0] != expected or len(reply) < 2:
            raise THTStoreCorruptError(
                f"THT shard {self.url} answered {message[0]!r} with "
                f"{reply[0]!r} (expected {expected!r})"
            )
        return reply[1]

    # -- store interface ----------------------------------------------------------
    def load(self) -> dict:
        """Download the shard's whole table as one delta."""
        delta = self._request(("fetch",))
        if not isinstance(delta, dict):
            raise THTStoreCorruptError(
                f"THT shard {self.url} fetch_result carries no delta dict"
            )
        return delta

    def publish(self, delta: dict) -> int:
        """Upload one delta; the shard merges it incrementally."""
        if not delta.get("entries") and not delta.get("counters"):
            return 0
        return int(self._request(("publish", delta)))

    def stats(self) -> dict:
        return dict(self._request(("stats",)))

    def close(self) -> None:
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ShardTHTStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- shard server side ---------------------------------------------------------------
class ShardState:
    """The daemon's shared state: one THT plus service counters.

    The table itself is thread-safe (per-bucket locks; ``merge``/``snapshot``
    coordinate through the journal lock when enabled), so concurrent client
    connections need no global table lock — only the service counters are
    guarded here.
    """

    def __init__(
        self,
        atm_config: Optional[ATMConfig] = None,
        backing: Optional[FileTHTStore] = None,
    ) -> None:
        from repro.atm.tht import TaskHistoryTable

        self.config = atm_config or ATMConfig()
        self.table = TaskHistoryTable(self.config)
        self.backing = backing
        self._lock = threading.Lock()
        self.publishes = 0
        self.fetches = 0
        self.entries_received = 0
        if backing is not None:
            # Warm the shard itself from its backing file; a corrupt file
            # cold-starts the shard exactly like it cold-starts a Session.
            try:
                self.table.merge(backing.load(), journal=False)
            except THTStoreError:
                pass

    def handle(self, message: Any) -> tuple:
        """Serve one shard request; returns the reply frame message."""
        if not isinstance(message, tuple) or not message:
            return ("error", "THTStoreError", "requests are non-empty tuples")
        kind = message[0]
        if kind == "hello":
            info = message[1] if len(message) > 1 else {}
            if info.get("protocol") != SHARD_PROTOCOL_VERSION:
                return (
                    "error",
                    "THTStoreUnavailableError",
                    f"shard speaks protocol {SHARD_PROTOCOL_VERSION}, "
                    f"client spoke {info.get('protocol')!r}",
                )
            return (
                "hello_ack",
                {
                    "protocol": SHARD_PROTOCOL_VERSION,
                    "schema": STORE_SCHEMA_VERSION,
                    "entries": len(self.table),
                },
            )
        if kind == "fetch":
            with self._lock:
                self.fetches += 1
            return ("fetch_result", self.table.snapshot())
        if kind == "publish":
            delta = message[1] if len(message) > 1 else {}
            if not isinstance(delta, dict):
                return ("error", "THTStoreError", "publish carries no delta dict")
            self.table.merge(delta)
            received = len(delta.get("entries", []))
            with self._lock:
                self.publishes += 1
                self.entries_received += received
            return ("publish_ack", received)
        if kind == "stats":
            with self._lock:
                publishes, fetches = self.publishes, self.fetches
                received = self.entries_received
            return (
                "stats_reply",
                {
                    "backend": "shard",
                    "entries": len(self.table),
                    "hits": self.table.hits,
                    "misses": self.table.misses,
                    "insertions": self.table.insertions,
                    "evictions": self.table.evictions,
                    "publishes": publishes,
                    "fetches": fetches,
                    "entries_received": received,
                },
            )
        return ("error", "THTStoreError", f"unknown request {kind!r}")

    def flush(self) -> None:
        """Persist the shard's table into its backing file (if any)."""
        if self.backing is not None:
            snapshot = self.table.snapshot()
            if snapshot["entries"]:
                self.backing.publish(snapshot)
                self.backing.compact()


def serve_shard_connection(sock: socket.socket, state: ShardState) -> None:
    """Blocking service loop for one shard client connection.

    Runs until the peer disconnects (clean EOF) or sends garbage (the
    connection is dropped; the shard's table is untouched — publishes are
    atomic merges that either happened or did not).
    """
    try:
        while True:
            try:
                message = read_frame(sock)
            except (WireProtocolError, OSError):
                return
            if isinstance(message, tuple) and message and message[0] == "bye":
                return
            reply = state.handle(message)
            try:
                write_frame(sock, reply)
            except OSError:
                return
    finally:
        try:
            sock.close()
        except OSError:
            pass
