"""In-flight Key Table (paper Section III-A).

The IKT maps the hash keys of tasks that are *currently executing* to the
executing task, so that an identical ready task does not miss the reuse
opportunity merely because the producer has not yet committed its outputs to
the THT.  The table holds at most one entry per worker thread (a worker
executes one task at a time) and, because lookups never copy outputs, a
single lock protects it — exactly the design the paper motivates.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.common.hashing import HashKey
from repro.runtime.task import Task

__all__ = ["InFlightKeyTable"]


class InFlightKeyTable:
    """Single-lock table of the keys of in-flight tasks."""

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self._entries: dict[tuple[int, float, str], Task] = {}
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.registrations = 0
        self.rejected_registrations = 0

    @staticmethod
    def _key(key: HashKey, task_type_name: str) -> tuple[int, float, str]:
        return (key.value, key.p, task_type_name)

    def lookup(self, key: HashKey, task_type_name: str) -> Optional[Task]:
        """Return the in-flight producer with this key, if any."""
        with self._lock:
            producer = self._entries.get(self._key(key, task_type_name))
            if producer is None:
                self.misses += 1
            else:
                self.hits += 1
            return producer

    def register(self, key: HashKey, task_type_name: str, task: Task) -> bool:
        """Record that ``task`` is now executing under ``key``.

        Returns ``False`` (and records the rejection) if the table is full,
        which can only happen when it is sized below the number of workers.
        """
        with self._lock:
            if self.max_entries is not None and len(self._entries) >= self.max_entries:
                self.rejected_registrations += 1
                return False
            self._entries[self._key(key, task_type_name)] = task
            self.registrations += 1
            return True

    def retire(self, key: HashKey, task_type_name: str, task: Task) -> bool:
        """Remove the entry when the producer finishes."""
        with self._lock:
            stored = self._entries.get(self._key(key, task_type_name))
            if stored is task:
                del self._entries[self._key(key, task_type_name)]
                return True
            return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def memory_bytes(self) -> int:
        """IKT footprint: 8-byte key + 8-byte p + pointer per entry slot."""
        slots = self.max_entries if self.max_entries is not None else len(self)
        return 24 * max(slots, len(self))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = 0
            self.registrations = self.rejected_registrations = 0
