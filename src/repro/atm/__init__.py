"""Approximate Task Memoization (ATM) — the paper's core contribution.

Subcomponents (Section III of the paper):

* :mod:`repro.atm.keygen` — hash-key generation from (sampled, type-aware)
  task input bytes;
* :mod:`repro.atm.tht` — the Task History Table;
* :mod:`repro.atm.ikt` — the In-flight Key Table;
* :mod:`repro.atm.adaptive` — the Dynamic-ATM training algorithm;
* :mod:`repro.atm.policy` — Static / Dynamic / fixed-p / Oracle policies;
* :mod:`repro.atm.engine` — the memoization engine wired into the runtime;
* :mod:`repro.atm.stats` — reuse, memory-overhead and provenance statistics.
"""

from repro.atm.engine import ATMEngine
from repro.atm.policy import (
    ATMMode,
    ATMPolicy,
    DynamicATMPolicy,
    FixedPPolicy,
    NoATMPolicy,
    StaticATMPolicy,
    make_policy,
)
from repro.atm.stats import ATMStats
from repro.atm.tht import TaskHistoryTable, THTEntry
from repro.atm.ikt import InFlightKeyTable
from repro.atm.keygen import HashKeyGenerator
from repro.atm.adaptive import DynamicATMTrainer, TrainingPhase

__all__ = [
    "ATMEngine",
    "ATMMode",
    "ATMPolicy",
    "NoATMPolicy",
    "StaticATMPolicy",
    "DynamicATMPolicy",
    "FixedPPolicy",
    "make_policy",
    "ATMStats",
    "TaskHistoryTable",
    "THTEntry",
    "InFlightKeyTable",
    "HashKeyGenerator",
    "DynamicATMTrainer",
    "TrainingPhase",
]
