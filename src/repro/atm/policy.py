"""ATM operating policies.

The policy decides, per task, which sampling fraction ``p`` to use and
whether THT hits should still execute (training).  Four policies cover the
paper's configurations:

* :class:`NoATMPolicy` — the baseline (the engine is simply not installed);
* :class:`StaticATMPolicy` — exact memoization, ``p = 100 %`` (Section V
  "Static ATM");
* :class:`FixedPPolicy` — a constant ``p`` chosen externally; used for the
  Figure 5 sensitivity sweep and for the Oracle configurations, whose ``p``
  is found by offline profiling (:mod:`repro.evaluation.oracle`);
* :class:`DynamicATMPolicy` — the adaptive algorithm of Section III-D.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.common.config import ATMConfig
from repro.common.registry import POLICIES
from repro.atm.adaptive import DynamicATMTrainer
from repro.runtime.task import Task

__all__ = [
    "ATMMode",
    "ATMPolicy",
    "NoATMPolicy",
    "StaticATMPolicy",
    "FixedPPolicy",
    "DynamicATMPolicy",
    "make_policy",
]


class ATMMode(enum.Enum):
    """Named ATM configurations, as used throughout the evaluation."""

    NONE = "none"
    STATIC = "static"
    DYNAMIC = "dynamic"
    FIXED_P = "fixed_p"


class ATMPolicy:
    """Base policy: exact memoization with the configured ``p``."""

    mode = ATMMode.STATIC

    def __init__(self, config: Optional[ATMConfig] = None) -> None:
        self.config = config or ATMConfig()

    def sampling_fraction(self, task: Task) -> float:
        """The fraction of input bytes to hash for this task."""
        return self.config.p

    def is_training(self, task: Task) -> bool:
        """Whether a THT hit must still execute to measure its error."""
        return False

    def is_blacklisted(self, task: Task) -> bool:
        """Whether ATM must not touch this task at all."""
        return False

    def record_training_outcome(self, task: Task, tau: float) -> None:
        """Feed a training-phase error measurement back into the policy."""

    def chosen_p(self, task_type_name: str) -> Optional[float]:
        """The steady-state ``p`` for reporting (Figure 5 star markers)."""
        return self.config.p

    def describe(self) -> str:
        return f"{self.mode.value}(p={self.config.p:g})"


class NoATMPolicy(ATMPolicy):
    """Baseline marker policy; runs never install an engine with it."""

    mode = ATMMode.NONE

    def describe(self) -> str:
        return "no-atm"


class StaticATMPolicy(ATMPolicy):
    """Exact memoization: hash all input bytes (``p = 100 %``)."""

    mode = ATMMode.STATIC

    def __init__(self, config: Optional[ATMConfig] = None) -> None:
        config = (config or ATMConfig()).with_overrides(p=1.0)
        super().__init__(config)

    def describe(self) -> str:
        return "static"


class FixedPPolicy(ATMPolicy):
    """Constant, externally chosen sampling fraction (sweeps and Oracles)."""

    mode = ATMMode.FIXED_P

    def __init__(self, p: float, config: Optional[ATMConfig] = None) -> None:
        config = (config or ATMConfig()).with_overrides(p=p)
        super().__init__(config)

    def describe(self) -> str:
        return f"fixed-p(p={self.config.p:g})"


class DynamicATMPolicy(ATMPolicy):
    """The adaptive training policy of Section III-D."""

    mode = ATMMode.DYNAMIC

    def __init__(self, config: Optional[ATMConfig] = None) -> None:
        super().__init__(config or ATMConfig())
        self.trainer = DynamicATMTrainer(self.config)

    def sampling_fraction(self, task: Task) -> float:
        return self.trainer.current_p(task)

    def is_training(self, task: Task) -> bool:
        return self.trainer.is_training(task)

    def is_blacklisted(self, task: Task) -> bool:
        # Unstable outputs are only excluded during the steady-state phase;
        # during training they must keep being measured.
        if self.trainer.is_training(task):
            return False
        return self.trainer.is_output_blacklisted(task)

    def record_training_outcome(self, task: Task, tau: float) -> None:
        self.trainer.record_training_outcome(task, tau)

    def chosen_p(self, task_type_name: str) -> Optional[float]:
        return self.trainer.chosen_p(task_type_name)

    def describe(self) -> str:
        return "dynamic"


def _make_fixed_p(config: Optional[ATMConfig], p: Optional[float]) -> ATMPolicy:
    if p is None:
        raise ValueError("FIXED_P policy requires an explicit p")
    return FixedPPolicy(p, config)


# Builtin policies resolved by name through the policy registry; plugins add
# their own with repro.session.register_policy(name, factory) and the name
# becomes a valid ``ATMConfig.mode`` / ``Session(policy=...)`` value.
POLICIES.register("none", lambda config, p: NoATMPolicy(config), replace=True)
POLICIES.register("static", lambda config, p: StaticATMPolicy(config), replace=True)
POLICIES.register("dynamic", lambda config, p: DynamicATMPolicy(config), replace=True)
POLICIES.register("fixed_p", _make_fixed_p, replace=True)


def make_policy(
    mode: ATMMode | str,
    config: Optional[ATMConfig] = None,
    p: Optional[float] = None,
) -> ATMPolicy:
    """Factory used by the harness: build a policy from a mode name.

    Any name registered through :func:`repro.session.register_policy` is
    accepted alongside the four builtin modes.
    """
    name = mode.value if isinstance(mode, ATMMode) else str(mode)
    if name not in POLICIES:
        raise ValueError(f"unknown ATM mode {name!r}")
    policy = POLICIES.factory(name)(config, p)
    # Record the registry identity on the instance: the process backend ships
    # it to workers so they rebuild *this* policy, not whatever builtin the
    # policy class happens to subclass.
    policy.registry_name = name
    return policy
