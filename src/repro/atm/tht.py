"""Task History Table (paper Section III-A, Figure 1).

The THT stores, for previously executed tasks, the 8-byte hash key of their
(sampled) inputs together with a full copy of their outputs.  It is organised
as ``2^N`` buckets of at most ``M`` entries; the lower ``N`` bits of the key
select the bucket; entries are evicted first-in-first-out when a bucket is
full.  Each bucket has its own lock so concurrent workers rarely contend
(Section IV-B reports that ``N = 8`` removes lock contention).

Keys computed with different sampling fractions ``p`` or for different task
types are never considered equal — Dynamic ATM stores ``p`` alongside the key
exactly for this reason.  ``p`` is compared through its canonical quantized
representation (:func:`repro.common.hashing.canonical_p`), stored at insert
time, so an entry still matches when the policy later recomputes the same
fraction through a different floating-point path.

Hit/miss/insertion/eviction statistics are kept per bucket, under the bucket
lock that the operation already holds, and aggregated on read — the seed's
single global counter lock serialised every probe of every worker.

Lock ordering: when the insertion journal is enabled, writers (``insert``,
``merge``) take ``_journal_lock`` *before* any bucket lock, and ``snapshot``
holds ``_journal_lock`` across its whole capture.  That single ordering rule
is what makes a ``snapshot(reset=True)`` delta consistent: no journaled
commit can land between the entry capture and the counter capture/reset, so
every counted insertion is shipped by exactly one snapshot.  ``lookup``
never touches the journal lock — probes stay per-bucket concurrent.
``enable_journal`` must therefore be called before concurrent writers start
(session open, worker startup), which every caller already does.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.common.config import ATMConfig
from repro.common.hashing import HashKey, bucket_of_value, canonical_p

__all__ = ["THTEntry", "TaskHistoryTable"]


@dataclass
class THTEntry:
    """One memoized task: its key, the sampling fraction and its outputs."""

    key_value: int
    p: float
    task_type_name: str
    outputs: list[np.ndarray]
    producer_index: int
    stored_bytes: int = field(init=False)
    p_canonical: int = field(init=False)

    def __post_init__(self) -> None:
        self.stored_bytes = int(sum(o.nbytes for o in self.outputs))
        self.p_canonical = canonical_p(self.p)

    def matches(self, key: HashKey, task_type_name: str) -> bool:
        return (
            self.key_value == key.value
            and self.task_type_name == task_type_name
            and self.p_canonical == canonical_p(key.p)
        )

    @property
    def memory_bytes(self) -> int:
        """Entry footprint: stored outputs + 8-byte key + 8-byte p + metadata."""
        return self.stored_bytes + 8 + 8 + 8


class _BucketCounters:
    """Per-bucket statistics, mutated under the bucket's own lock."""

    __slots__ = ("hits", "misses", "insertions", "evictions")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0


class TaskHistoryTable:
    """Bucketed, bounded, FIFO-evicting history of task executions."""

    def __init__(self, config: ATMConfig) -> None:
        self.config = config
        self.n_buckets = config.n_buckets
        self.capacity = config.tht_bucket_capacity
        self._buckets: list[deque[THTEntry]] = [deque() for _ in range(self.n_buckets)]
        self._locks = [threading.Lock() for _ in range(self.n_buckets)]
        self._counters = [_BucketCounters() for _ in range(self.n_buckets)]
        # Counters folded in from merged peer tables (process-backend workers).
        self._foreign = _BucketCounters()
        # Optional insertion journal so snapshot(reset=True) ships only the
        # entries committed since the previous snapshot.
        self._journal: Optional[list[THTEntry]] = None
        self._journal_lock = threading.Lock()

    # -- bucket selection --------------------------------------------------------
    def bucket_index(self, key: HashKey) -> int:
        return key.bucket(self.config.tht_bucket_bits)

    # -- operations ----------------------------------------------------------------
    def lookup(self, key: HashKey, task_type_name: str) -> Optional[THTEntry]:
        """Return the matching entry, or ``None`` (recording hit/miss stats)."""
        index = self.bucket_index(key)
        with self._locks[index]:
            for entry in self._buckets[index]:
                if entry.matches(key, task_type_name):
                    self._counters[index].hits += 1
                    return entry
            self._counters[index].misses += 1
        return None

    def insert(
        self,
        key: HashKey,
        task_type_name: str,
        outputs: list[np.ndarray],
        producer_index: int,
    ) -> THTEntry:
        """Store a finished task's outputs, FIFO-evicting if the bucket is full.

        If an entry with the same key already exists it is refreshed in place
        (newest outputs win), which matches the paper's observation that the
        THT must be continuously updated because redundancy appears throughout
        the execution.
        """
        entry = THTEntry(
            key_value=key.value,
            p=key.p,
            task_type_name=task_type_name,
            outputs=outputs,
            producer_index=producer_index,
        )
        if self._journal is not None:
            # Journal-lock-first ordering (see module docstring): the commit
            # and its journal record are one atomic step with respect to
            # snapshot(reset=True).
            with self._journal_lock:
                self._store(entry, local=True)
                if self._journal is not None:
                    self._journal.append(entry)
        else:
            self._store(entry, local=True)
        return entry

    def _store(self, entry: THTEntry, local: bool) -> None:
        """Place one entry into its bucket with refresh/FIFO-evict semantics.

        ``local`` commits (this table's own insertions) bump the bucket's
        insertion/eviction counters; foreign commits (merged peer entries)
        only record evictions, in the foreign fold, because the peer already
        counted the insertion.
        """
        index = bucket_of_value(entry.key_value, self.config.tht_bucket_bits)
        with self._locks[index]:
            bucket = self._buckets[index]
            counters = self._counters[index]
            for position, existing in enumerate(bucket):
                if (
                    existing.key_value == entry.key_value
                    and existing.task_type_name == entry.task_type_name
                    and existing.p_canonical == entry.p_canonical
                ):
                    bucket[position] = entry
                    if local:
                        counters.insertions += 1
                    return
            if len(bucket) >= self.capacity:
                bucket.popleft()
                if local:
                    counters.evictions += 1
                else:
                    self._foreign.evictions += 1
            bucket.append(entry)
            if local:
                counters.insertions += 1

    # -- cross-process deltas ----------------------------------------------------
    def enable_journal(self) -> None:
        """Record every insertion so snapshots can ship incremental deltas."""
        with self._journal_lock:
            if self._journal is None:
                self._journal = []

    def _sweep_counters(self, reset: bool, collect_entries: bool) -> tuple[list[THTEntry], dict]:
        """Capture (and optionally reset) all counters in per-bucket passes.

        Each bucket's entries and counters are read — and, with ``reset``,
        zeroed — inside one critical section, so no probe or commit can slip
        between a bucket's capture and its reset: a counted event is reported
        by exactly one snapshot.
        """
        entries: list[THTEntry] = []
        totals = {"hits": 0, "misses": 0, "insertions": 0, "evictions": 0}
        for index in range(self.n_buckets):
            with self._locks[index]:
                if collect_entries:
                    entries.extend(self._buckets[index])
                counters = self._counters[index]
                totals["hits"] += counters.hits
                totals["misses"] += counters.misses
                totals["insertions"] += counters.insertions
                totals["evictions"] += counters.evictions
                if reset:
                    counters.reset()
        totals["hits"] += self._foreign.hits
        totals["misses"] += self._foreign.misses
        totals["insertions"] += self._foreign.insertions
        totals["evictions"] += self._foreign.evictions
        if reset:
            self._foreign.reset()
        return entries, totals

    def snapshot(self, reset: bool = False) -> dict:
        """Serializable view of the table: entries + aggregated counters.

        With the journal enabled, ``entries`` contains only the commits
        (insertions *and* merged-in peer entries) since the previous
        ``reset=True`` snapshot; otherwise the full table content is
        shipped.  ``reset=True`` also zeroes the counters so the snapshot
        acts as a delta (process-backend workers call it once per drain
        barrier, the serving merge pump and the persistent store
        continuously).

        Entries and counters are captured under one consistent pass: the
        journal lock blocks journaled commits for the duration, and each
        bucket's counters are read and reset inside a single critical
        section, so ``reset=True`` never zeroes counts for commits the
        snapshot did not ship.
        """
        if self._journal is not None:
            with self._journal_lock:
                entries = list(self._journal)
                if reset:
                    self._journal.clear()
                _, counters = self._sweep_counters(reset, collect_entries=False)
        else:
            entries, counters = self._sweep_counters(reset, collect_entries=True)
        return {"entries": entries, "counters": counters}

    def merge(self, delta: dict, journal: bool = True) -> None:
        """Fold a peer table's :meth:`snapshot` into this one.

        Entries are inserted with the usual refresh/FIFO-evict semantics but
        without touching the probe counters (no lookup happened *here*); the
        peer's counters are accumulated separately so aggregate hit/miss
        totals reflect the union of all processes.

        With the journal enabled, merged entries are journaled exactly like
        local insertions so downstream consumers (the serving merge pump,
        the persistent store) see them in the next ``snapshot(reset=True)``
        delta.  Pass ``journal=False`` for deltas that came *from* the
        downstream consumer — a warm-start restore must not re-publish the
        entries it just loaded.
        """
        entries = delta.get("entries", [])
        if self._journal is not None:
            with self._journal_lock:
                for entry in entries:
                    self._store(entry, local=False)
                if journal and self._journal is not None:
                    self._journal.extend(entries)
                self._fold_foreign(delta.get("counters", {}))
        else:
            for entry in entries:
                self._store(entry, local=False)
            self._fold_foreign(delta.get("counters", {}))

    def _fold_foreign(self, counters: dict) -> None:
        self._foreign.hits += int(counters.get("hits", 0))
        self._foreign.misses += int(counters.get("misses", 0))
        self._foreign.insertions += int(counters.get("insertions", 0))
        self._foreign.evictions += int(counters.get("evictions", 0))

    # -- statistics -------------------------------------------------------------
    @property
    def hits(self) -> int:
        return sum(c.hits for c in self._counters) + self._foreign.hits

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self._counters) + self._foreign.misses

    @property
    def insertions(self) -> int:
        return sum(c.insertions for c in self._counters) + self._foreign.insertions

    @property
    def evictions(self) -> int:
        return sum(c.evictions for c in self._counters) + self._foreign.evictions

    # -- introspection ----------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets)

    @property
    def hit_rate(self) -> float:
        hits = self.hits
        total = hits + self.misses
        return hits / total if total else 0.0

    def memory_bytes(self) -> int:
        """Total memory held by the table (Table III accounting)."""
        total = 0
        for index, bucket in enumerate(self._buckets):
            with self._locks[index]:
                total += sum(entry.memory_bytes for entry in bucket)
        # Bucket headers: one pointer-sized slot per bucket.
        total += 8 * self.n_buckets
        return total

    def occupancy_histogram(self) -> list[int]:
        """Entries per bucket (used by the sizing ablation)."""
        return [len(bucket) for bucket in self._buckets]

    def clear(self) -> None:
        for index in range(self.n_buckets):
            with self._locks[index]:
                self._buckets[index].clear()
                self._counters[index].reset()
        self._foreign.reset()
        with self._journal_lock:
            if self._journal is not None:
                self._journal.clear()
