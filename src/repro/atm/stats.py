"""ATM statistics: reuse, provenance, memory overhead.

The paper reports three derived quantities this module supports:

* **Reuse** — the percentage of memoized tasks (Section IV-C), broken down by
  how they were satisfied (THT hit, IKT hit, training hit).
* **Redundancy provenance** — for every reuse event, which producer task
  generated the reused result; the cumulative distribution over normalized
  producer task ids is Figure 9.
* **Memory overhead** — THT + IKT + stored shuffles relative to the
  application footprint (Table III).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ATMStats", "ReuseEvent"]


@dataclass(frozen=True)
class ReuseEvent:
    """One memoized task: who produced the reused entry and who consumed it."""

    producer_index: int
    consumer_index: int
    source: str  # "tht", "ikt" or "training"
    task_type: str


@dataclass
class ATMStats:
    """Thread-safe counters and event log for one engine instance."""

    tasks_seen: int = 0
    eligible_tasks: int = 0
    tht_hits: int = 0
    ikt_hits: int = 0
    misses: int = 0
    training_hits: int = 0
    blacklisted_skips: int = 0
    commits: int = 0
    hashed_bytes: int = 0
    copied_bytes: int = 0
    stored_bytes: int = 0
    key_cache_hits: int = 0
    key_cache_misses: int = 0
    digest_cache_hits: int = 0
    digest_cache_misses: int = 0
    shuffle_evictions: int = 0
    reuse_events: list[ReuseEvent] = field(default_factory=list)
    training_errors: list[float] = field(default_factory=list)
    per_type: dict[str, dict[str, int]] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # -- recording -----------------------------------------------------------
    def _type_bucket(self, task_type: str) -> dict[str, int]:
        bucket = self.per_type.get(task_type)
        if bucket is None:
            bucket = {"seen": 0, "tht_hits": 0, "ikt_hits": 0, "misses": 0,
                      "training_hits": 0, "blacklisted": 0}
            self.per_type[task_type] = bucket
        return bucket

    def record_seen(self, task_type: str, eligible: bool) -> None:
        with self._lock:
            self.tasks_seen += 1
            if eligible:
                self.eligible_tasks += 1
            self._type_bucket(task_type)["seen"] += 1

    def record_blacklisted(self, task_type: str) -> None:
        with self._lock:
            self.blacklisted_skips += 1
            self._type_bucket(task_type)["blacklisted"] += 1

    def record_hash(self, nbytes: int) -> None:
        with self._lock:
            self.hashed_bytes += nbytes

    def record_tht_hit(
        self, task_type: str, producer_index: int, consumer_index: int, copied: int
    ) -> None:
        with self._lock:
            self.tht_hits += 1
            self.copied_bytes += copied
            self._type_bucket(task_type)["tht_hits"] += 1
            self.reuse_events.append(
                ReuseEvent(producer_index, consumer_index, "tht", task_type)
            )

    def record_ikt_hit(
        self, task_type: str, producer_index: int, consumer_index: int, copied: int
    ) -> None:
        with self._lock:
            self.ikt_hits += 1
            self.copied_bytes += copied
            self._type_bucket(task_type)["ikt_hits"] += 1
            self.reuse_events.append(
                ReuseEvent(producer_index, consumer_index, "ikt", task_type)
            )

    def record_miss(self, task_type: str) -> None:
        with self._lock:
            self.misses += 1
            self._type_bucket(task_type)["misses"] += 1

    def record_training_hit(self, task_type: str, tau: float) -> None:
        with self._lock:
            self.training_hits += 1
            self.training_errors.append(tau)
            self._type_bucket(task_type)["training_hits"] += 1

    def record_commit(self, stored: int) -> None:
        with self._lock:
            self.commits += 1
            self.stored_bytes += stored

    def record_key_cache(self, hit: bool) -> None:
        """Whole-key cache outcome of one key computation."""
        with self._lock:
            if hit:
                self.key_cache_hits += 1
            else:
                self.key_cache_misses += 1

    def record_digest_cache(self, hit: bool) -> None:
        """Per-region sample/digest cache outcome inside one key computation."""
        with self._lock:
            if hit:
                self.digest_cache_hits += 1
            else:
                self.digest_cache_misses += 1

    def record_shuffle_eviction(self) -> None:
        """One shuffle record dropped by the keygen LRU bound."""
        with self._lock:
            self.shuffle_evictions += 1

    # -- derived quantities ----------------------------------------------------
    @property
    def memoized_tasks(self) -> int:
        """Tasks whose execution was avoided (THT + IKT hits)."""
        return self.tht_hits + self.ikt_hits

    def reuse_percentage(self, total_tasks: int | None = None) -> float:
        """Percentage of memoized tasks over ``total_tasks`` (default: seen)."""
        denominator = total_tasks if total_tasks else self.tasks_seen
        if not denominator:
            return 0.0
        return 100.0 * self.memoized_tasks / denominator

    def cumulative_reuse_curve(self, total_tasks: int) -> tuple[np.ndarray, np.ndarray]:
        """Figure 9 series: normalized producer id vs cumulative reuse fraction.

        Returns two arrays ``(x, y)`` where ``x[i]`` is the normalized creation
        index of the i-th reuse-generating producer (sorted) and ``y[i]`` the
        cumulative fraction of all reuse generated by producers up to it.
        """
        with self._lock:
            producers = sorted(event.producer_index for event in self.reuse_events)
        if not producers or total_tasks <= 0:
            return np.empty(0), np.empty(0)
        x = np.asarray(producers, dtype=np.float64) / max(1, total_tasks - 1)
        y = np.arange(1, len(producers) + 1, dtype=np.float64) / len(producers)
        return x, y

    def memory_overhead_bytes(self, tht_bytes: int, ikt_bytes: int, shuffle_bytes: int) -> int:
        return tht_bytes + ikt_bytes + shuffle_bytes

    def memory_overhead_percent(
        self, application_bytes: int, tht_bytes: int, ikt_bytes: int, shuffle_bytes: int
    ) -> float:
        """Table III: ATM memory relative to the application footprint."""
        if application_bytes <= 0:
            return 0.0
        total = self.memory_overhead_bytes(tht_bytes, ikt_bytes, shuffle_bytes)
        return 100.0 * total / application_bytes

    def snapshot(self, reset: bool = False) -> dict:
        """Plain-dict summary used by the harness and by tests.

        With ``reset=True`` the counters, events and per-type buckets are
        zeroed after being read, turning the snapshot into a *delta* since
        the previous reset — the process backend uses this so merging one
        delta per drain into the parent engine never double-counts.
        """
        with self._lock:
            summary = {
                "tasks_seen": self.tasks_seen,
                "eligible_tasks": self.eligible_tasks,
                "tht_hits": self.tht_hits,
                "ikt_hits": self.ikt_hits,
                "misses": self.misses,
                "training_hits": self.training_hits,
                "blacklisted_skips": self.blacklisted_skips,
                "commits": self.commits,
                "hashed_bytes": self.hashed_bytes,
                "copied_bytes": self.copied_bytes,
                "stored_bytes": self.stored_bytes,
                "key_cache_hits": self.key_cache_hits,
                "key_cache_misses": self.key_cache_misses,
                "digest_cache_hits": self.digest_cache_hits,
                "digest_cache_misses": self.digest_cache_misses,
                "shuffle_evictions": self.shuffle_evictions,
                "memoized_tasks": self.tht_hits + self.ikt_hits,
                "per_type": {k: dict(v) for k, v in self.per_type.items()},
                "reuse_events": [
                    (event.producer_index, event.consumer_index, event.source)
                    for event in self.reuse_events
                ],
                "reuse_event_types": [event.task_type for event in self.reuse_events],
                "training_errors": list(self.training_errors),
            }
            if reset:
                self._reset_locked()
            return summary

    _COUNTER_FIELDS = (
        "tasks_seen", "eligible_tasks", "tht_hits", "ikt_hits", "misses",
        "training_hits", "blacklisted_skips", "commits", "hashed_bytes",
        "copied_bytes", "stored_bytes", "key_cache_hits", "key_cache_misses",
        "digest_cache_hits", "digest_cache_misses", "shuffle_evictions",
    )

    def _reset_locked(self) -> None:
        for name in self._COUNTER_FIELDS:
            setattr(self, name, 0)
        self.reuse_events.clear()
        self.training_errors.clear()
        self.per_type.clear()

    def merge(self, delta: dict) -> None:
        """Accumulate a :meth:`snapshot` delta from another stats instance.

        Used by the process backend to fold per-worker engine statistics
        into the parent engine at drain boundaries.
        """
        with self._lock:
            for name in self._COUNTER_FIELDS:
                setattr(self, name, getattr(self, name) + int(delta.get(name, 0)))
            types = delta.get("reuse_event_types")
            for index, (producer, consumer, source) in enumerate(
                delta.get("reuse_events", [])
            ):
                task_type = types[index] if types and index < len(types) else ""
                self.reuse_events.append(
                    ReuseEvent(producer, consumer, source, task_type)
                )
            self.training_errors.extend(delta.get("training_errors", []))
            for task_type, bucket in delta.get("per_type", {}).items():
                mine = self._type_bucket(task_type)
                for key, value in bucket.items():
                    mine[key] = mine.get(key, 0) + int(value)
