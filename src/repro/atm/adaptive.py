"""Dynamic-ATM adaptive training (paper Section III-D).

Per task type, the execution is split into a *training* phase and a
*steady-state* phase:

* Training starts with ``p = 2^-15``.  Every time a task could be
  approximated (THT hit) it is executed anyway and the Chebyshev relative
  error ``tau`` between the real and memoized outputs is measured.  If
  ``tau >= tau_max`` the sampling fraction ``p`` is doubled (at most 15
  steps, i.e. up to ``p = 100 %``) and the success counter restarts; the
  output regions of the offending task are added to an *unstable outputs*
  blacklist.
* After ``L_training`` consecutive correctly approximated tasks, ``p`` is
  frozen and the steady-state phase begins: THT hits are now memoized without
  executing, except for tasks whose outputs are blacklisted, which always
  execute (this is the accuracy-control feature Jacobi needs).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.common.config import ATMConfig
from repro.runtime.task import Task

__all__ = ["TrainingPhase", "DynamicATMTrainer", "TaskTypeTrainingState"]


class TrainingPhase(enum.Enum):
    """Phase of the adaptive algorithm for one task type."""

    TRAINING = "training"
    STEADY = "steady"


@dataclass
class TaskTypeTrainingState:
    """Mutable training state of one task type."""

    p: float
    tau_max: float
    l_training: int
    phase: TrainingPhase = TrainingPhase.TRAINING
    consecutive_successes: int = 0
    training_hits: int = 0
    training_failures: int = 0
    p_steps: int = 0
    unstable_outputs: set[tuple[int, int, int]] = field(default_factory=set)
    failure_counts: dict[tuple[int, int, int], int] = field(default_factory=dict)


class DynamicATMTrainer:
    """Holds and updates the per-task-type training state."""

    def __init__(self, config: ATMConfig) -> None:
        self.config = config
        self._states: dict[str, TaskTypeTrainingState] = {}
        self._lock = threading.Lock()

    # -- state access --------------------------------------------------------
    def state_for(self, task_type_name: str, tau_max: float | None = None,
                  l_training: int | None = None) -> TaskTypeTrainingState:
        with self._lock:
            state = self._states.get(task_type_name)
            if state is None:
                state = TaskTypeTrainingState(
                    p=self.config.p_initial,
                    tau_max=self.config.tau_max if tau_max is None else tau_max,
                    l_training=(
                        self.config.l_training if l_training is None else l_training
                    ),
                )
                self._states[task_type_name] = state
            return state

    def current_p(self, task: Task) -> float:
        state = self._state_of(task)
        return state.p

    def is_training(self, task: Task) -> bool:
        return self._state_of(task).phase == TrainingPhase.TRAINING

    def chosen_p(self, task_type_name: str) -> float | None:
        """The frozen steady-state ``p`` (``None`` while still training)."""
        with self._lock:
            state = self._states.get(task_type_name)
        if state is None or state.phase != TrainingPhase.STEADY:
            return None
        return state.p

    def is_output_blacklisted(self, task: Task) -> bool:
        """True if any output region of ``task`` failed during training."""
        if not self.config.track_unstable_outputs:
            return False
        state = self._state_of(task)
        if not state.unstable_outputs:
            return False
        return any(
            access.region.region_key in state.unstable_outputs
            for access in task.outputs
        )

    def _state_of(self, task: Task) -> TaskTypeTrainingState:
        return self.state_for(
            task.task_type.name,
            tau_max=task.task_type.tau_max,
            l_training=task.task_type.l_training,
        )

    # -- training updates --------------------------------------------------------
    def record_training_outcome(self, task: Task, tau: float) -> None:
        """Update the state after a training-phase approximation measurement."""
        state = self._state_of(task)
        with self._lock:
            if state.phase != TrainingPhase.TRAINING:
                return
            state.training_hits += 1
            if tau >= state.tau_max:
                state.training_failures += 1
                # Outputs are blacklisted only when they fail *persistently*
                # while other tasks of the type succeed at the current p: a
                # failure with no prior success signals that p itself is too
                # small (so we double it), whereas an output that keeps
                # exceeding tau_max amid successes is the chaotic-behaviour
                # case the paper describes for Jacobi.
                if self.config.track_unstable_outputs and state.consecutive_successes > 0:
                    for access in task.outputs:
                        key = access.region.region_key
                        count = state.failure_counts.get(key, 0) + 1
                        state.failure_counts[key] = count
                        if count >= 2:
                            state.unstable_outputs.add(key)
                state.consecutive_successes = 0
                if state.p < 1.0:
                    state.p = min(1.0, state.p * 2.0)
                    state.p_steps += 1
            else:
                state.consecutive_successes += 1
                if state.consecutive_successes >= state.l_training:
                    state.phase = TrainingPhase.STEADY

    # -- reporting -----------------------------------------------------------------
    def summary(self) -> dict[str, dict]:
        """Per-task-type training summary for the harness and tests."""
        with self._lock:
            return {
                name: {
                    "p": state.p,
                    "phase": state.phase.value,
                    "training_hits": state.training_hits,
                    "training_failures": state.training_failures,
                    "p_steps": state.p_steps,
                    "unstable_outputs": len(state.unstable_outputs),
                }
                for name, state in self._states.items()
            }
