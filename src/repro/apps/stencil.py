"""Gauss-Seidel and Jacobi 2-D five-point heat stencils.

Both solvers propagate heat from the walls of a square room into its
interior.  The matrix is divided into 2-D blocks stored contiguously (one
block per task); neighbouring rows/columns are obtained via dedicated *copy
tasks* exactly as the paper describes, and the heat-diffusion task type
(``stencilComputation``) is the one selected for ATM.

* **Gauss-Seidel** updates blocks in place; the copy tasks make block
  ``(i, j)`` read the *already updated* blocks above and to its left within
  the same sweep, which yields the classic wavefront dependence pattern.
* **Jacobi** is double-buffered: within one sweep all stencil tasks are
  independent and the program synchronises at the end of every iteration.
  This is why Jacobi needs the In-flight Key Table: identical blocks execute
  concurrently and would otherwise all miss in the THT.

Source of redundancy (paper Section V-D): the interior of the room starts at
a uniform temperature, so blocks far from the walls keep receiving
bit-identical inputs for many sweeps (the heat front moves roughly one cell
per sweep); additionally the block initialisation draws from a small pool of
patterns, mimicking the saturated random initialisation of the original
kernel.

Correctness is measured on the assembled stencil matrix (Table I).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BenchmarkApp, BenchmarkInfo, WorkloadScale
from repro.common.rng import generator_for
from repro.session import Session
from repro.runtime.data import In, InOut, Out
from repro.runtime.task import Task

__all__ = ["GaussSeidelApp", "JacobiApp", "StencilGrid"]

#: Temperature of the walls (boundary condition).
WALL_TEMPERATURE = 100.0

_SCALES = {
    WorkloadScale.TINY: dict(block_rows=8, block_cols=8, block_size=8, iterations=6),
    WorkloadScale.SMALL: dict(block_rows=12, block_cols=12, block_size=24, iterations=10),
    WorkloadScale.PAPER: dict(block_rows=32, block_cols=32, block_size=1024, iterations=12),
}


class StencilGrid:
    """Block-decomposed grid with per-block halo buffers.

    ``blocks`` has shape ``(block_rows, block_cols, bs, bs)`` so every block
    is a contiguous region.  Halo buffers (one row/column per block side) are
    separate contiguous arrays filled by copy tasks; walls are shared constant
    arrays.
    """

    def __init__(self, block_rows: int, block_cols: int, block_size: int, rng: np.random.Generator) -> None:
        self.block_rows = block_rows
        self.block_cols = block_cols
        self.block_size = block_size
        bs = block_size
        self.blocks = np.zeros((block_rows, block_cols, bs, bs), dtype=np.float32)
        # Interior initialisation: the original kernel's random initialisation
        # saturates, producing identical sub-blocks; we reproduce that by
        # initialising every block from the same (single) saturated pattern —
        # a uniform ambient temperature.  The walls emit WALL_TEMPERATURE, so
        # redundancy arises from interior blocks that the heat front has not
        # yet reached (paper Section V-D).
        ambient = np.float32(rng.uniform(0.0, 1.0))
        self.blocks[...] = ambient
        # Halo buffers (filled by copy tasks each sweep).
        self.halo_top = np.zeros((block_rows, block_cols, bs), dtype=np.float32)
        self.halo_bottom = np.zeros((block_rows, block_cols, bs), dtype=np.float32)
        self.halo_left = np.zeros((block_rows, block_cols, bs), dtype=np.float32)
        self.halo_right = np.zeros((block_rows, block_cols, bs), dtype=np.float32)
        # Shared constant wall rows/columns.
        self.wall = np.full(bs, WALL_TEMPERATURE, dtype=np.float32)

    def assemble(self, blocks: np.ndarray | None = None) -> np.ndarray:
        """Assemble the full matrix from the block decomposition."""
        blocks = self.blocks if blocks is None else blocks
        rows = [np.concatenate(list(blocks[i]), axis=1) for i in range(self.block_rows)]
        return np.concatenate(rows, axis=0)

    def nbytes(self) -> int:
        return int(
            self.blocks.nbytes
            + self.halo_top.nbytes
            + self.halo_bottom.nbytes
            + self.halo_left.nbytes
            + self.halo_right.nbytes
        )


# ---------------------------------------------------------------------------
# Task bodies (plain functions operating on the arrays they were given).
# ---------------------------------------------------------------------------

def copy_row(src_block: np.ndarray, dst_halo: np.ndarray, row: int) -> None:
    """Copy one row of a neighbour block into a halo buffer."""
    dst_halo[:] = src_block[row, :]


def copy_col(src_block: np.ndarray, dst_halo: np.ndarray, col: int) -> None:
    """Copy one column of a neighbour block into a halo buffer."""
    dst_halo[:] = src_block[:, col]


def jacobi_block(
    src: np.ndarray,
    dst: np.ndarray,
    top: np.ndarray,
    bottom: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
) -> None:
    """One Jacobi sweep over a block using its halos."""
    bs = src.shape[0]
    padded = np.empty((bs + 2, bs + 2), dtype=np.float64)
    padded[1:-1, 1:-1] = src
    padded[0, 1:-1] = top
    padded[-1, 1:-1] = bottom
    padded[1:-1, 0] = left
    padded[1:-1, -1] = right
    padded[0, 0] = padded[0, 1]
    padded[0, -1] = padded[0, -2]
    padded[-1, 0] = padded[-1, 1]
    padded[-1, -1] = padded[-1, -2]
    dst[:] = 0.25 * (
        padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
    )


def gauss_seidel_block(
    block: np.ndarray,
    top: np.ndarray,
    bottom: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
) -> None:
    """One Gauss-Seidel sweep over a block (row-wise, in place).

    Rows are updated top-to-bottom so each row uses the freshly updated row
    above it; within a row the previous values of the left/right neighbours
    are used, which keeps the update vectorised while preserving the
    Gauss-Seidel character across rows and across blocks.
    """
    bs = block.shape[0]
    work = block.astype(np.float64)
    left64 = left.astype(np.float64)
    right64 = right.astype(np.float64)
    for r in range(bs):
        above = work[r - 1, :] if r > 0 else np.asarray(top, dtype=np.float64)
        below = work[r + 1, :] if r < bs - 1 else np.asarray(bottom, dtype=np.float64)
        row = work[r, :]
        west = np.empty(bs)
        west[0] = left64[r]
        west[1:] = row[:-1]
        east = np.empty(bs)
        east[-1] = right64[r]
        east[:-1] = row[1:]
        work[r, :] = 0.25 * (above + below + west + east)
    block[:] = work.astype(np.float32)


class _StencilBase(BenchmarkApp):
    """Shared workload setup and reporting for both stencil solvers."""

    def _setup_workload(self) -> None:
        cfg = _SCALES[self.scale]
        rng = generator_for(self.seed, self.info.name)
        self.iterations = int(cfg["iterations"])
        self.grid = StencilGrid(
            int(cfg["block_rows"]), int(cfg["block_cols"]), int(cfg["block_size"]), rng
        )
        # Memory-bound stencil: the task performs only ~2x more work per input
        # byte than hashing that byte, so a full-precision hash key is a large
        # overhead (this is why the paper's Gauss-Seidel jumps from 1.68x with
        # Static ATM to 6.3x with the Oracle's tiny sampling fraction).
        per_byte_cost = 0.005
        self.stencil_task_type = self._make_task_type(
            "stencilComputation",
            memoizable=True,
            tau_max=self.info.tau_max,
            l_training=self.info.l_training,
            cost_model=lambda task, c=per_byte_cost: 0.5 + c * task.input_bytes,
        )
        # Copy tasks move one row/column at memory bandwidth.
        self.copy_task_type = self._make_task_type(
            "copyEdges",
            memoizable=False,
            cost_model=lambda task: 0.05 + task.input_bytes / 2000.0,
        )

    def _submit_halo_copies(self, runtime: Session, blocks: np.ndarray, i: int, j: int) -> list:
        """Submit the copy tasks feeding block (i, j)'s halos; return accesses.

        The task bodies are the module-level :func:`copy_row` / :func:`copy_col`
        with the row/column index passed as a plain argument (not captured in
        a closure), so copy tasks stay picklable for the process backend.
        """
        grid = self.grid
        bs = grid.block_size
        halo_in = []
        specs = [
            ("top", grid.halo_top[i, j], (i - 1, j), copy_row, bs - 1),
            ("bottom", grid.halo_bottom[i, j], (i + 1, j), copy_row, 0),
            ("left", grid.halo_left[i, j], (i, j - 1), copy_col, bs - 1),
            ("right", grid.halo_right[i, j], (i, j + 1), copy_col, 0),
        ]
        for side, halo, (ni, nj), body, line in specs:
            if 0 <= ni < grid.block_rows and 0 <= nj < grid.block_cols:
                neighbour = blocks[ni, nj]
                runtime.submit(
                    self.copy_task_type,
                    body,
                    accesses=[
                        In(neighbour, name=f"block[{ni},{nj}]"),
                        Out(halo, name=f"halo_{side}[{i},{j}]"),
                    ],
                    args=(neighbour, halo, line),
                )
                halo_in.append(halo)
            else:
                # Wall side: the halo is the shared constant wall array.
                halo_in.append(grid.wall)
        return halo_in

    def output(self) -> np.ndarray:
        return self.grid.assemble().astype(np.float64).reshape(-1)

    def _footprint_arrays(self) -> list[np.ndarray]:
        return [
            self.grid.blocks,
            self.grid.halo_top,
            self.grid.halo_bottom,
            self.grid.halo_left,
            self.grid.halo_right,
        ]

    def expected_stencil_tasks(self) -> int:
        return self.grid.block_rows * self.grid.block_cols * self.iterations


class GaussSeidelApp(_StencilBase):
    """2-D Gauss-Seidel five-point stencil (in-place, wavefront parallel)."""

    info = BenchmarkInfo(
        name="gauss-seidel",
        domain="stencil computation",
        memoized_task_type="stencilComputation",
        correctness_measured_on="Stencil Matrix",
        tau_max=0.01,
        l_training=100,
        paper_task_input_bytes=4_210_688,
        paper_number_of_tasks=20_480,
        paper_program_input="32x32 blocks of 1024x1024 elements",
    )

    def build(self, runtime: Session) -> None:
        grid = self.grid
        for _ in range(self.iterations):
            for i in range(grid.block_rows):
                for j in range(grid.block_cols):
                    block = grid.blocks[i, j]
                    top, bottom, left, right = self._submit_halo_copies(
                        runtime, grid.blocks, i, j
                    )
                    runtime.submit(
                        self.stencil_task_type,
                        gauss_seidel_block,
                        accesses=[
                            InOut(block, name=f"block[{i},{j}]"),
                            In(top, name=f"in_top[{i},{j}]"),
                            In(bottom, name=f"in_bottom[{i},{j}]"),
                            In(left, name=f"in_left[{i},{j}]"),
                            In(right, name=f"in_right[{i},{j}]"),
                        ],
                        args=(block, top, bottom, left, right),
                    )
            runtime.wait_all()


class JacobiApp(_StencilBase):
    """2-D Jacobi five-point stencil (double-buffered, iteration barriers)."""

    info = BenchmarkInfo(
        name="jacobi",
        domain="stencil computation",
        memoized_task_type="stencilComputation",
        correctness_measured_on="Stencil Matrix",
        tau_max=0.01,
        l_training=150,
        paper_task_input_bytes=4_210_688,
        paper_number_of_tasks=20_480,
        paper_program_input="32x32 blocks of 1024x1024 elements",
    )

    def _setup_workload(self) -> None:
        super()._setup_workload()
        # The paper observes that exact memoization finds almost no reuse in
        # Jacobi (unlike Gauss-Seidel): the double-buffered sweep keeps
        # perturbing the low-order bits of slowly converging cells instead of
        # settling on a bit-exact fixed point.  We reproduce that behaviour by
        # adding a tiny (1e-5) deterministic per-cell perturbation to the
        # initial temperature field, so exact keys almost never repeat while
        # MSB-first approximate keys do (see DESIGN.md, substitutions).
        noise_rng = generator_for(self.seed, "jacobi-noise")
        noise = noise_rng.uniform(0.0, 1e-5, self.grid.blocks.shape).astype(np.float32)
        self.grid.blocks += noise
        self._back_buffer = np.array(self.grid.blocks, copy=True)

    def build(self, runtime: Session) -> None:
        grid = self.grid
        src, dst = grid.blocks, self._back_buffer
        for _ in range(self.iterations):
            for i in range(grid.block_rows):
                for j in range(grid.block_cols):
                    src_block = src[i, j]
                    dst_block = dst[i, j]
                    top, bottom, left, right = self._submit_halo_copies(runtime, src, i, j)
                    runtime.submit(
                        self.stencil_task_type,
                        jacobi_block,
                        accesses=[
                            In(src_block, name=f"src[{i},{j}]"),
                            Out(dst_block, name=f"dst[{i},{j}]"),
                            In(top, name=f"in_top[{i},{j}]"),
                            In(bottom, name=f"in_bottom[{i},{j}]"),
                            In(left, name=f"in_left[{i},{j}]"),
                            In(right, name=f"in_right[{i},{j}]"),
                        ],
                        args=(src_block, dst_block, top, bottom, left, right),
                    )
            runtime.wait_all()
            src, dst = dst, src
        self._final_buffer = src

    def output(self) -> np.ndarray:
        blocks = getattr(self, "_final_buffer", self.grid.blocks)
        return self.grid.assemble(blocks).astype(np.float64).reshape(-1)

    def _footprint_arrays(self) -> list[np.ndarray]:
        return super()._footprint_arrays() + [self._back_buffer]
