"""Common benchmark-application interface.

Every application in the suite provides:

* deterministic workload generation at three scales (``tiny`` for tests,
  ``small`` for the default harness runs, ``paper`` for the original input
  sizes of Table I);
* a :meth:`BenchmarkApp.build` method that submits all tasks of the program
  into a :class:`~repro.session.Session` (calling ``wait_all`` for the
  program's natural barriers);
* the final program output (:meth:`BenchmarkApp.output`) and a correctness
  metric against a reference output (Euclidean relative error by default, the
  LU residual for SparseLU);
* Table I / II metadata: the memoized task type, the number of tasks, the
  task-input size, ``tau_max`` and ``L_training``.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.errors import correctness_percent, euclidean_relative_error
from repro.common.exceptions import WorkloadError
from repro.runtime.task import TaskType
from repro.session import Session

__all__ = ["WorkloadScale", "BenchmarkInfo", "BenchmarkApp"]


class WorkloadScale(enum.Enum):
    """Workload sizes.  ``paper`` matches Table I; the others are scaled down
    so the whole evaluation runs on a laptop/CI machine (see DESIGN.md §4)."""

    TINY = "tiny"
    SMALL = "small"
    PAPER = "paper"

    @classmethod
    def coerce(cls, value: "WorkloadScale | str") -> "WorkloadScale":
        if isinstance(value, WorkloadScale):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            raise WorkloadError(f"unknown workload scale {value!r}") from exc


@dataclass(frozen=True)
class BenchmarkInfo:
    """Static description of a benchmark (paper Tables I and II)."""

    name: str
    domain: str
    memoized_task_type: str
    correctness_measured_on: str
    tau_max: float
    l_training: int
    paper_task_input_bytes: int
    paper_number_of_tasks: int
    paper_program_input: str


class BenchmarkApp(abc.ABC):
    """Base class of the six applications."""

    info: BenchmarkInfo

    def __init__(self, scale: WorkloadScale | str = WorkloadScale.SMALL, seed: int = 2017) -> None:
        self.scale = WorkloadScale.coerce(scale)
        self.seed = seed
        self._built = False
        self._task_types: dict[str, TaskType] = {}
        self._setup_workload()

    # -- to implement -----------------------------------------------------------
    @abc.abstractmethod
    def _setup_workload(self) -> None:
        """Allocate and initialise the application data for ``self.scale``."""

    @abc.abstractmethod
    def build(self, runtime: Session) -> None:
        """Submit every task of the program into ``runtime`` (with barriers).

        ``runtime`` is anything exposing the Session submission protocol
        (``submit`` / ``wait_all`` / ``finish``) — a
        :class:`~repro.session.Session` or the serving gateway's
        :class:`~repro.serving.GatewayClient` (any ``submit``/``wait_all``
        surface).
        """

    @abc.abstractmethod
    def output(self) -> np.ndarray:
        """The program output on which correctness is measured (Table I)."""

    # -- common behaviour ----------------------------------------------------------
    def run(self, runtime: Session) -> None:
        """Build and run the program to completion on ``runtime``."""
        self.build(runtime)
        runtime.finish()
        self._built = True

    def run_on(self, executor: str = "serial", cores: int = 1, engine=None):
        """Run the whole program on a named execution backend (DESIGN.md §4).

        Convenience wrapper used by the parity matrix and the perf harness:
        assembles a :class:`~repro.session.Session` for the named backend
        (any registered executor), runs to completion — the session releases
        the process backend's pool on success *and* error paths — and
        returns the :class:`~repro.runtime.executor.RunResult`.
        """
        with Session(executor=executor, cores=cores, engine=engine) as session:
            self.run(session)
        return session.result

    def relative_error(self, reference_output: np.ndarray) -> float:
        """Program-level relative error against a reference run (Eq. 3)."""
        return euclidean_relative_error(reference_output, self.output())

    def correctness(self, reference_output: np.ndarray) -> float:
        """Correctness percentage (Figs. 4 and 5)."""
        return correctness_percent(self.relative_error(reference_output))

    def application_bytes(self) -> int:
        """Application memory footprint used for Table III."""
        return sum(int(arr.nbytes) for arr in self._footprint_arrays())

    def _footprint_arrays(self) -> list[np.ndarray]:
        """Arrays counted in the application footprint; subclasses extend."""
        return []

    # -- task-type helpers -----------------------------------------------------------
    def _make_task_type(
        self,
        name: str,
        memoizable: bool,
        cost_model,
        tau_max: Optional[float] = None,
        l_training: Optional[int] = None,
    ) -> TaskType:
        task_type = TaskType(
            name=name,
            memoizable=memoizable,
            tau_max=tau_max,
            l_training=l_training,
            cost_model=cost_model,
        )
        self._task_types[name] = task_type
        return task_type

    @property
    def task_types(self) -> dict[str, TaskType]:
        return dict(self._task_types)

    @property
    def memoized_task_type(self) -> TaskType:
        return self._task_types[self.info.memoized_task_type]

    def describe(self) -> str:
        return f"{self.info.name}[{self.scale.value}]"
