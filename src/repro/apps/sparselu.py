"""Sparse blocked LU decomposition (linear algebra).

The classic BSC SparseLU kernel: an ``NB x NB`` grid of ``BS x BS`` blocks,
many of which are absent (structurally zero).  Four task types implement the
right-looking blocked factorisation without pivoting:

* ``lu0``  — in-place LU of the diagonal block;
* ``fwd``  — forward substitution on blocks of the pivot row;
* ``bdiv`` — backward substitution on blocks of the pivot column;
* ``bmod`` — trailing-matrix update ``A[i][j] -= A[i][k] @ A[k][j]``; this is
  by far the most frequently executed routine and the one the paper selects
  for ATM.

Source of redundancy (paper Section V-D): the input matrix is generated from
a small pool of distinct block patterns, so many ``bmod`` invocations receive
bit-identical operand triples, at short reuse distances spread over the whole
execution.

Correctness is the application-specific residual of Eq. 4,
``|A - L*U|_2 / |A|_2``, computed against the original (unfactorised) matrix.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BenchmarkApp, BenchmarkInfo, WorkloadScale
from repro.common.errors import correctness_percent
from repro.common.rng import generator_for
from repro.session import Session
from repro.runtime.data import In, InOut
from repro.runtime.task import Task

__all__ = ["SparseLUApp", "lu0", "fwd", "bdiv", "bmod"]

_SCALES = {
    WorkloadScale.TINY: dict(nb=8, bs=16, density=0.6, patterns=2),
    WorkloadScale.SMALL: dict(nb=13, bs=24, density=0.6, patterns=3),
    WorkloadScale.PAPER: dict(nb=20, bs=256, density=0.6, patterns=4),
}


def lu0(diag: np.ndarray) -> None:
    """In-place unpivoted LU factorisation of a diagonal block (Doolittle)."""
    n = diag.shape[0]
    a = diag.astype(np.float64)
    for k in range(n - 1):
        pivot = a[k, k]
        a[k + 1:, k] /= pivot
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    diag[:] = a.astype(diag.dtype)


def fwd(diag: np.ndarray, row_block: np.ndarray) -> None:
    """Solve ``L * X = row_block`` in place (L = unit lower part of diag)."""
    n = diag.shape[0]
    l = np.tril(diag.astype(np.float64), -1) + np.eye(n)
    x = row_block.astype(np.float64)
    for i in range(n):
        x[i, :] -= l[i, :i] @ x[:i, :]
    row_block[:] = x.astype(row_block.dtype)


def bdiv(diag: np.ndarray, col_block: np.ndarray) -> None:
    """Solve ``X * U = col_block`` in place (U = upper part of diag)."""
    n = diag.shape[0]
    u = np.triu(diag.astype(np.float64))
    x = col_block.astype(np.float64)
    for j in range(n):
        x[:, j] -= x[:, :j] @ u[:j, j]
        x[:, j] /= u[j, j]
    col_block[:] = x.astype(col_block.dtype)


def bmod(col_block: np.ndarray, row_block: np.ndarray, target: np.ndarray) -> None:
    """Trailing update ``target -= col_block @ row_block`` (memoized type)."""
    target[:] = (
        target.astype(np.float64)
        - col_block.astype(np.float64) @ row_block.astype(np.float64)
    ).astype(target.dtype)


class SparseLUApp(BenchmarkApp):
    """Blocked sparse LU factorisation."""

    info = BenchmarkInfo(
        name="lu",
        domain="linear algebra",
        memoized_task_type="bmod",
        correctness_measured_on="L*U - A",
        tau_max=0.01,
        l_training=30,
        paper_task_input_bytes=786_432,
        paper_number_of_tasks=670,
        paper_program_input="20x20 blocks of 256x256 elements",
    )

    def _setup_workload(self) -> None:
        cfg = _SCALES[self.scale]
        self.nb = int(cfg["nb"])
        self.bs = int(cfg["bs"])
        rng = generator_for(self.seed, "sparselu")

        # Pool of distinct off-diagonal block patterns (source of redundancy).
        # The matrix has a banded block-Toeplitz structure: the pattern and
        # the presence of block (i, j) depend only on the diagonal offset
        # ``i - j``, so entire block rows are shifted copies of each other and
        # many ``bmod`` invocations receive bit-identical operand triples —
        # the short-distance reuse the paper observes for LU.
        n_patterns = int(cfg["patterns"])
        patterns = [
            (rng.uniform(-1.0, 1.0, (self.bs, self.bs)) / self.bs).astype(np.float32)
            for _ in range(n_patterns)
        ]
        density = float(cfg["density"])
        band_present = {0: True}
        for offset in range(1, self.nb):
            band_present[offset] = bool(rng.random() < density)
            band_present[-offset] = bool(rng.random() < density)
        self.present = np.zeros((self.nb, self.nb), dtype=bool)
        self.blocks = np.zeros((self.nb, self.nb, self.bs, self.bs), dtype=np.float32)
        for i in range(self.nb):
            for j in range(self.nb):
                offset = i - j
                if i == j:
                    # Diagonally dominant diagonal blocks keep the unpivoted
                    # factorisation stable.
                    block = patterns[0] + np.eye(self.bs, dtype=np.float32) * 4.0
                    self.blocks[i, j] = block
                    self.present[i, j] = True
                elif band_present[offset]:
                    self.blocks[i, j] = patterns[abs(offset) % n_patterns]
                    self.present[i, j] = True
        self.original = self.assemble().astype(np.float64)

        # The block kernels perform O(BS^3) floating-point work over O(BS^2)
        # bytes of input; the calibrated per-byte factor (~6x the hashing
        # cost per byte) reproduces the moderate Static-ATM gain and the
        # modest Static-to-Oracle gap the paper reports for LU.
        per_byte_cost = 0.015
        self.lu0_task_type = self._make_task_type(
            "lu0", memoizable=False,
            cost_model=lambda task, c=per_byte_cost: 1.0 + 1.2 * c * task.input_bytes,
        )
        self.fwd_task_type = self._make_task_type(
            "fwd", memoizable=False,
            cost_model=lambda task, c=per_byte_cost: 1.0 + c * task.input_bytes,
        )
        self.bdiv_task_type = self._make_task_type(
            "bdiv", memoizable=False,
            cost_model=lambda task, c=per_byte_cost: 1.0 + c * task.input_bytes,
        )
        self.bmod_task_type = self._make_task_type(
            "bmod",
            memoizable=True,
            tau_max=self.info.tau_max,
            l_training=self.info.l_training,
            cost_model=lambda task, c=per_byte_cost: 1.0 + c * task.input_bytes,
        )

    # -- matrix helpers --------------------------------------------------------------
    def assemble(self) -> np.ndarray:
        """Assemble the dense matrix from the block decomposition."""
        rows = [np.concatenate(list(self.blocks[i]), axis=1) for i in range(self.nb)]
        return np.concatenate(rows, axis=0)

    def extract_lu(self) -> tuple[np.ndarray, np.ndarray]:
        """Split the factorised matrix into unit-lower L and upper U."""
        dense = self.assemble().astype(np.float64)
        lower = np.tril(dense, -1) + np.eye(dense.shape[0])
        upper = np.triu(dense)
        return lower, upper

    # -- program ------------------------------------------------------------------------
    def build(self, runtime: Session) -> None:
        present = self.present.copy()
        for k in range(self.nb):
            diag = self.blocks[k, k]
            runtime.submit(
                self.lu0_task_type,
                lu0,
                accesses=[InOut(diag, name=f"A[{k},{k}]")],
                args=(diag,),
            )
            for j in range(k + 1, self.nb):
                if present[k, j]:
                    block = self.blocks[k, j]
                    runtime.submit(
                        self.fwd_task_type,
                        fwd,
                        accesses=[In(diag, name=f"A[{k},{k}]"), InOut(block, name=f"A[{k},{j}]")],
                        args=(diag, block),
                    )
            for i in range(k + 1, self.nb):
                if present[i, k]:
                    block = self.blocks[i, k]
                    runtime.submit(
                        self.bdiv_task_type,
                        bdiv,
                        accesses=[In(diag, name=f"A[{k},{k}]"), InOut(block, name=f"A[{i},{k}]")],
                        args=(diag, block),
                    )
            for i in range(k + 1, self.nb):
                if not present[i, k]:
                    continue
                for j in range(k + 1, self.nb):
                    if not present[k, j]:
                        continue
                    col_block = self.blocks[i, k]
                    row_block = self.blocks[k, j]
                    target = self.blocks[i, j]
                    present[i, j] = True  # fill-in
                    runtime.submit(
                        self.bmod_task_type,
                        bmod,
                        accesses=[
                            In(col_block, name=f"A[{i},{k}]"),
                            In(row_block, name=f"A[{k},{j}]"),
                            InOut(target, name=f"A[{i},{j}]"),
                        ],
                        args=(col_block, row_block, target),
                    )
        runtime.wait_all()

    # -- correctness ---------------------------------------------------------------------
    def output(self) -> np.ndarray:
        return self.assemble().astype(np.float64).reshape(-1)

    def relative_error(self, reference_output: np.ndarray) -> float:
        """Application-specific error (Eq. 4): ``|A - L*U|_2 / |A|_2``.

        The reference output is ignored: the residual is measured against the
        original matrix, exactly as the paper does for LU.
        """
        lower, upper = self.extract_lu()
        residual = self.original - lower @ upper
        denominator = float(np.linalg.norm(self.original))
        if denominator == 0.0:
            return 0.0
        return float(np.linalg.norm(residual)) / denominator

    def correctness(self, reference_output: np.ndarray) -> float:
        return correctness_percent(self.relative_error(reference_output))

    def _footprint_arrays(self) -> list[np.ndarray]:
        return [self.blocks]

    def expected_bmod_count(self) -> int:
        """Number of bmod tasks implied by the sparsity pattern."""
        present = self.present.copy()
        count = 0
        for k in range(self.nb):
            for i in range(k + 1, self.nb):
                if not present[i, k]:
                    continue
                for j in range(k + 1, self.nb):
                    if present[k, j]:
                        present[i, j] = True
                        count += 1
        return count
