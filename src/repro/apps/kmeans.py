"""Kmeans clustering (machine learning).

The algorithm iteratively (1) assigns blocks of points to their nearest
centers and accumulates per-block partial sums — this is the
``kmeans_calculate(distances)`` task type chosen for ATM — and (2) recomputes
the centers from the partial sums (a second, non-memoized task type).

Source of redundancy (paper Section V-D): well-separated clusters make the
assignment stabilise after a few iterations, after which the distance tasks
keep producing the same partial sums.  Exact memoization nevertheless fails
because the recomputed centers keep changing in their least-significant bits
(floating-point accumulation-order effects, reproduced here by rotating the
reduction order every iteration); only *approximate* memoization with a small
MSB-first sampling fraction ``p`` can exploit this redundancy, which is why
Kmeans is the benchmark that most needs Dynamic ATM (and a large THT bucket
capacity, ``M = 128``).

Correctness is measured on the final centers vector (Table I).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BenchmarkApp, BenchmarkInfo, WorkloadScale
from repro.common.rng import generator_for
from repro.session import Session
from repro.runtime.data import In, InOut, Out
from repro.runtime.task import Task

__all__ = ["KmeansApp", "assign_block", "update_centers"]

_SCALES = {
    WorkloadScale.TINY: dict(points=1024, blocks=8, clusters=6, dims=8, iterations=8),
    WorkloadScale.SMALL: dict(points=4096, blocks=16, clusters=8, dims=16, iterations=12),
    WorkloadScale.PAPER: dict(points=2_000_000, blocks=512, clusters=16, dims=100, iterations=12),
}


def assign_block(
    points: np.ndarray,
    centers: np.ndarray,
    partial_sums: np.ndarray,
    partial_counts: np.ndarray,
) -> None:
    """Assign each point of the block to its nearest center.

    Writes the per-center partial coordinate sums and counts for this block
    (the reduction inputs of the center-update task).
    """
    # Squared Euclidean distances, (n_points, k).
    distances = (
        np.sum(points.astype(np.float64) ** 2, axis=1)[:, None]
        - 2.0 * points.astype(np.float64) @ centers.astype(np.float64).T
        + np.sum(centers.astype(np.float64) ** 2, axis=1)[None, :]
    )
    nearest = np.argmin(distances, axis=1)
    k = centers.shape[0]
    partial_sums[:] = 0.0
    partial_counts[:] = 0.0
    for cluster in range(k):
        mask = nearest == cluster
        partial_counts[cluster] = float(np.count_nonzero(mask))
        if partial_counts[cluster] > 0:
            partial_sums[cluster, :] = points[mask].sum(axis=0, dtype=np.float64)


def update_centers(
    centers: np.ndarray,
    all_sums: list[np.ndarray],
    all_counts: list[np.ndarray],
    rotation: int,
) -> None:
    """Recompute the centers from per-block partial sums.

    ``rotation`` rotates the order in which partial sums are accumulated,
    reproducing the floating-point accumulation-order jitter that keeps the
    centers changing in their low-order bits even after the assignment has
    converged (the behaviour the paper reports for Kmeans).
    """
    k, d = centers.shape
    sums = np.zeros((k, d), dtype=np.float32)
    counts = np.zeros(k, dtype=np.float32)
    order = list(range(len(all_sums)))
    order = order[rotation % len(order):] + order[: rotation % len(order)]
    for index in order:
        sums += all_sums[index].astype(np.float32)
        counts += all_counts[index].astype(np.float32)
    nonzero = counts > 0
    centers[nonzero] = (sums[nonzero] / counts[nonzero, None]).astype(np.float32)


class KmeansApp(BenchmarkApp):
    """Block-parallel Lloyd's k-means."""

    info = BenchmarkInfo(
        name="kmeans",
        domain="machine learning",
        memoized_task_type="kmeans_calculate",
        correctness_measured_on="Centers Vector",
        tau_max=0.20,
        l_training=15,
        paper_task_input_bytes=219_716,
        paper_number_of_tasks=39_063,
        paper_program_input="2e6 points, 16 centers, 100 dimensions",
    )

    def _setup_workload(self) -> None:
        cfg = _SCALES[self.scale]
        self.n_points = int(cfg["points"])
        self.n_blocks = int(cfg["blocks"])
        self.k = int(cfg["clusters"])
        self.dims = int(cfg["dims"])
        self.iterations = int(cfg["iterations"])
        points_per_block = self.n_points // self.n_blocks

        rng = generator_for(self.seed, "kmeans")
        # Well-separated Gaussian clusters so the assignment converges fast.
        true_centers = rng.uniform(-50.0, 50.0, (self.k, self.dims)).astype(np.float32)
        labels = rng.integers(0, self.k, self.n_points)
        raw = true_centers[labels] + rng.normal(0.0, 1.5, (self.n_points, self.dims))
        self.points = np.ascontiguousarray(
            raw.reshape(self.n_blocks, points_per_block, self.dims).astype(np.float32)
        )
        # Initial centers: one point drawn from each true cluster (a
        # deterministic, well-spread initialisation), so the assignment
        # stabilises after a few iterations — the situation in which the paper
        # observes the redundant re-computation of already converged centers.
        initial = np.empty((self.k, self.dims), dtype=np.float32)
        for cluster in range(self.k):
            members = np.nonzero(labels == cluster)[0]
            pick = members[0] if members.size else cluster
            initial[cluster] = raw[pick]
        self.centers = np.ascontiguousarray(initial)
        self.partial_sums = np.zeros((self.n_blocks, self.k, self.dims), dtype=np.float64)
        self.partial_counts = np.zeros((self.n_blocks, self.k), dtype=np.float64)

        # Distance computation performs ~9x more work per input byte than
        # hashing it, which is why Static ATM on Kmeans is only a mild
        # slowdown (~0.9x in the paper) even though it never finds reuse.
        self.assign_task_type = self._make_task_type(
            "kmeans_calculate",
            memoizable=True,
            tau_max=self.info.tau_max,
            l_training=self.info.l_training,
            cost_model=lambda task: 1.0 + 0.0225 * task.input_bytes,
        )
        self.update_task_type = self._make_task_type(
            "kmeans_update",
            memoizable=False,
            cost_model=lambda task: 1.0 + 0.002 * task.input_bytes,
        )

    def build(self, runtime: Session) -> None:
        for iteration in range(self.iterations):
            for block in range(self.n_blocks):
                points = self.points[block]
                sums = self.partial_sums[block]
                counts = self.partial_counts[block]
                runtime.submit(
                    self.assign_task_type,
                    assign_block,
                    accesses=[
                        In(points, name=f"points[{block}]"),
                        In(self.centers, name="centers"),
                        Out(sums, name=f"psum[{block}]"),
                        Out(counts, name=f"pcount[{block}]"),
                    ],
                    args=(points, self.centers, sums, counts),
                )
            reduction_accesses = [InOut(self.centers, name="centers")]
            all_sums = [self.partial_sums[b] for b in range(self.n_blocks)]
            all_counts = [self.partial_counts[b] for b in range(self.n_blocks)]
            for block in range(self.n_blocks):
                reduction_accesses.append(In(all_sums[block], name=f"psum[{block}]"))
                reduction_accesses.append(In(all_counts[block], name=f"pcount[{block}]"))
            runtime.submit(
                self.update_task_type,
                update_centers,
                accesses=reduction_accesses,
                args=(self.centers, all_sums, all_counts, iteration),
            )
        runtime.wait_all()

    def output(self) -> np.ndarray:
        return self.centers.astype(np.float64).reshape(-1).copy()

    def _footprint_arrays(self) -> list[np.ndarray]:
        return [self.points, self.centers, self.partial_sums, self.partial_counts]

    def expected_task_count(self) -> int:
        return self.iterations * (self.n_blocks + 1)
