"""The six evaluated applications, written against the runtime API.

Each application follows the :class:`repro.apps.base.BenchmarkApp` interface:
it generates a deterministic workload, submits its tasks to a
:class:`~repro.session.Session` (declaring inputs/outputs exactly like
the OmpSs pragmas of the original benchmarks), exposes the final program
output for correctness measurement and describes its memoized task type and
Dynamic-ATM parameters (paper Tables I and II).
"""

from repro.apps.base import BenchmarkApp, BenchmarkInfo, WorkloadScale
from repro.apps.blackscholes import BlackscholesApp
from repro.apps.stencil import GaussSeidelApp, JacobiApp
from repro.apps.kmeans import KmeansApp
from repro.apps.sparselu import SparseLUApp
from repro.apps.swaptions import SwaptionsApp
from repro.apps.registry import (
    BENCHMARK_NAMES,
    PAPER_PARAMETERS,
    make_benchmark,
)

__all__ = [
    "BenchmarkApp",
    "BenchmarkInfo",
    "WorkloadScale",
    "BlackscholesApp",
    "GaussSeidelApp",
    "JacobiApp",
    "KmeansApp",
    "SparseLUApp",
    "SwaptionsApp",
    "BENCHMARK_NAMES",
    "PAPER_PARAMETERS",
    "make_benchmark",
]
