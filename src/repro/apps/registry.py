"""Benchmark registry and the paper's per-benchmark parameters.

``PAPER_PARAMETERS`` collects the values the paper reports in Tables I-III
(and the headline per-benchmark results of Figure 3), so that the evaluation
harness can print paper-vs-measured comparisons, and so EXPERIMENTS.md can be
regenerated from one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import BenchmarkApp, WorkloadScale
from repro.apps.blackscholes import BlackscholesApp
from repro.apps.stencil import GaussSeidelApp, JacobiApp
from repro.apps.kmeans import KmeansApp
from repro.apps.sparselu import SparseLUApp
from repro.apps.swaptions import SwaptionsApp
from repro.common.exceptions import WorkloadError

__all__ = ["BENCHMARK_NAMES", "BENCHMARK_CLASSES", "PAPER_PARAMETERS", "PaperNumbers", "make_benchmark"]


BENCHMARK_CLASSES: dict[str, type[BenchmarkApp]] = {
    "blackscholes": BlackscholesApp,
    "gauss-seidel": GaussSeidelApp,
    "jacobi": JacobiApp,
    "kmeans": KmeansApp,
    "lu": SparseLUApp,
    "swaptions": SwaptionsApp,
}

#: Canonical benchmark order used in every figure and table of the paper.
BENCHMARK_NAMES: tuple[str, ...] = tuple(BENCHMARK_CLASSES)


@dataclass(frozen=True)
class PaperNumbers:
    """Values reported by the paper for one benchmark."""

    #: Table II.
    l_training: int
    tau_max_percent: float
    #: Table III: ATM memory overhead (% of application footprint).
    memory_overhead_percent: float
    #: Figure 3 (approximate values read off the log-scale plot).
    static_atm_speedup: float
    dynamic_atm_speedup: float
    oracle_100_speedup: float
    oracle_95_speedup: float
    #: Figure 4.
    static_correctness: float
    dynamic_correctness: float


PAPER_PARAMETERS: dict[str, PaperNumbers] = {
    "blackscholes": PaperNumbers(
        l_training=15, tau_max_percent=1.0, memory_overhead_percent=4.9,
        static_atm_speedup=5.5, dynamic_atm_speedup=8.8,
        oracle_100_speedup=15.1, oracle_95_speedup=15.1,
        static_correctness=100.0, dynamic_correctness=100.0,
    ),
    "gauss-seidel": PaperNumbers(
        l_training=100, tau_max_percent=1.0, memory_overhead_percent=9.8,
        static_atm_speedup=1.68, dynamic_atm_speedup=2.5,
        oracle_100_speedup=6.3, oracle_95_speedup=6.3,
        static_correctness=100.0, dynamic_correctness=100.0,
    ),
    "jacobi": PaperNumbers(
        l_training=150, tau_max_percent=1.0, memory_overhead_percent=9.26,
        static_atm_speedup=0.65, dynamic_atm_speedup=1.5,
        oracle_100_speedup=1.73, oracle_95_speedup=1.73,
        static_correctness=100.0, dynamic_correctness=100.0,
    ),
    "kmeans": PaperNumbers(
        l_training=15, tau_max_percent=20.0, memory_overhead_percent=21.21,
        static_atm_speedup=0.9, dynamic_atm_speedup=3.6,
        oracle_100_speedup=0.9, oracle_95_speedup=4.5,
        static_correctness=100.0, dynamic_correctness=98.8,
    ),
    "lu": PaperNumbers(
        l_training=30, tau_max_percent=1.0, memory_overhead_percent=7.7,
        static_atm_speedup=1.3, dynamic_atm_speedup=1.5,
        oracle_100_speedup=1.5, oracle_95_speedup=1.6,
        static_correctness=100.0, dynamic_correctness=100.0,
    ),
    "swaptions": PaperNumbers(
        l_training=15, tau_max_percent=20.0, memory_overhead_percent=3.7,
        static_atm_speedup=1.07, dynamic_atm_speedup=1.23,
        oracle_100_speedup=1.1, oracle_95_speedup=1.3,
        static_correctness=100.0, dynamic_correctness=96.8,
    ),
}


def make_benchmark(
    name: str, scale: WorkloadScale | str = WorkloadScale.SMALL, seed: int = 2017
) -> BenchmarkApp:
    """Instantiate a fresh benchmark application by name.

    A fresh instance must be created for every run: the applications mutate
    their data in place (stencil blocks, LU blocks, k-means centers).
    """
    try:
        cls = BENCHMARK_CLASSES[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARK_NAMES)}"
        ) from exc
    return cls(scale=scale, seed=seed)
