"""Swaptions: Monte Carlo swaption pricing under a simplified HJM framework.

The PARSECSs benchmark prices a portfolio of swaptions with Monte Carlo
simulation of the Heath-Jarrow-Morton forward-rate evolution; one task
(``HJM_Swaption_Blocking``) prices one swaption from a ~376-byte parameter
record (forward curve, strike, maturity, tenor, volatility).

Determinism: the Monte Carlo driver uses a fixed seed that is *part of the
parameter record*, so two tasks with bit-identical parameters produce
bit-identical prices — the property ATM relies on (paper Section III-E).

Source of redundancy (paper Section V-D): the native PARSEC input replicates
a small file of distinct swaptions.  We reproduce both flavours the paper
observes: exact duplicates (exploitable by Static ATM, ~7 % reuse) and
near-duplicates whose parameters differ only in the least-significant bits of
the forward curve (exploitable only by Dynamic ATM with a small MSB-first
sampling fraction, raising reuse to ~20 %).

Correctness is measured on the prices vector (Table I).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BenchmarkApp, BenchmarkInfo, WorkloadScale
from repro.common.rng import generator_for
from repro.session import Session
from repro.runtime.data import In, Out
from repro.runtime.task import Task

__all__ = ["SwaptionsApp", "price_swaption", "SWAPTION_PARAM_DOUBLES"]

#: Number of float64 values in one swaption parameter record
#: (47 doubles = 376 bytes, matching Table I).
SWAPTION_PARAM_DOUBLES = 47

#: Layout of the parameter record.
_IDX_STRIKE = 0
_IDX_MATURITY = 1
_IDX_TENOR = 2
_IDX_VOL = 3
_IDX_TRIALS = 4
_IDX_SEED = 5
_IDX_CURVE_START = 6  # forward curve occupies the rest of the record

_SCALES = {
    WorkloadScale.TINY: dict(swaptions=64, unique=48, trials=400, steps=16),
    WorkloadScale.SMALL: dict(swaptions=512, unique=384, trials=1200, steps=24),
    WorkloadScale.PAPER: dict(swaptions=512, unique=384, trials=20000, steps=55),
}


def price_swaption(params: np.ndarray, result: np.ndarray, steps: int) -> None:
    """Price one payer swaption by Monte Carlo under a one-factor HJM model.

    ``params`` is the flat parameter record described above; ``result``
    receives ``[price, standard_error]``.
    """
    strike = float(params[_IDX_STRIKE])
    maturity = float(params[_IDX_MATURITY])
    tenor = float(params[_IDX_TENOR])
    vol = float(params[_IDX_VOL])
    trials = int(params[_IDX_TRIALS])
    seed = int(params[_IDX_SEED])
    curve = np.asarray(params[_IDX_CURVE_START:], dtype=np.float64)

    dt = maturity / steps
    rng = np.random.default_rng(seed)
    # Evolve the (flat-ish) forward curve with correlated lognormal shocks.
    shocks = rng.standard_normal((trials, steps))
    drift = -0.5 * vol * vol * dt
    log_growth = np.cumsum(drift + vol * np.sqrt(dt) * shocks, axis=1)
    terminal_factor = np.exp(log_growth[:, -1])

    # Swap rate at expiry approximated from the evolved forward curve.
    base_rate = float(np.mean(curve))
    swap_rate = base_rate * terminal_factor
    # Discount factor to expiry along the simulated short-rate path.
    discount = np.exp(-np.mean(curve[: max(1, len(curve) // 2)]) * maturity)
    # Payer swaption payoff: annuity * max(swap_rate - strike, 0).
    annuity = tenor * np.exp(-base_rate * tenor / 2.0)
    payoff = annuity * np.maximum(swap_rate - strike, 0.0) * discount
    price = float(np.mean(payoff))
    stderr = float(np.std(payoff) / np.sqrt(trials))
    result[0] = price
    result[1] = stderr


class SwaptionsApp(BenchmarkApp):
    """HJM Monte Carlo swaption portfolio pricing."""

    info = BenchmarkInfo(
        name="swaptions",
        domain="financial analysis",
        memoized_task_type="HJM_Swaption_Blocking",
        correctness_measured_on="Prices Vector",
        tau_max=0.20,
        l_training=15,
        paper_task_input_bytes=376,
        paper_number_of_tasks=512,
        paper_program_input="Native with 512 swaptions",
    )

    def _setup_workload(self) -> None:
        cfg = _SCALES[self.scale]
        self.n_swaptions = int(cfg["swaptions"])
        self.steps = int(cfg["steps"])
        n_unique = int(cfg["unique"])
        trials = int(cfg["trials"])

        rng = generator_for(self.seed, "swaptions")
        curve_points = SWAPTION_PARAM_DOUBLES - _IDX_CURVE_START
        pool = np.empty((n_unique, SWAPTION_PARAM_DOUBLES), dtype=np.float64)
        pool[:, _IDX_STRIKE] = rng.uniform(0.02, 0.06, n_unique)
        pool[:, _IDX_MATURITY] = rng.integers(1, 6, n_unique).astype(np.float64)
        pool[:, _IDX_TENOR] = rng.integers(2, 11, n_unique).astype(np.float64)
        pool[:, _IDX_VOL] = rng.uniform(0.1, 0.3, n_unique)
        pool[:, _IDX_TRIALS] = float(trials)
        pool[:, _IDX_SEED] = 987_654_321.0  # fixed MC seed: tasks are deterministic
        base_curve = 0.03 + 0.01 * np.linspace(0.0, 1.0, curve_points)
        pool[:, _IDX_CURVE_START:] = base_curve[None, :] * rng.uniform(
            0.9, 1.1, (n_unique, 1)
        )

        # Portfolio: the first ``n_unique`` swaptions are distinct; the
        # remaining ~20 % are copies of pool entries — one third exact
        # duplicates (exploitable by Static ATM, ~7 % of the portfolio) and
        # two thirds near-duplicates whose forward curve is perturbed in its
        # least-significant bits only (invisible to MSB-first sampling, so
        # only Dynamic ATM recovers them, raising reuse to ~20 %).
        self.params = np.empty((self.n_swaptions, SWAPTION_PARAM_DOUBLES), dtype=np.float64)
        for index in range(self.n_swaptions):
            source = pool[index % n_unique].copy()
            if index >= n_unique and (index - n_unique) % 3 != 0:
                jitter = rng.uniform(-1e-12, 1e-12, curve_points)
                source[_IDX_CURVE_START:] += jitter
            self.params[index] = source
        self.prices = np.zeros((self.n_swaptions, 2), dtype=np.float64)

        # The Monte Carlo simulation is extremely compute-intensive relative
        # to its tiny (376-byte) parameter record, so the hash-key overhead is
        # negligible and the Static-ATM gain tracks the exact-duplicate
        # fraction of the portfolio (the paper's 1.07x).
        self.swaption_task_type = self._make_task_type(
            "HJM_Swaption_Blocking",
            memoizable=True,
            tau_max=self.info.tau_max,
            l_training=self.info.l_training,
            cost_model=lambda task: 1.0 + 0.5 * task.input_bytes,
        )

    def build(self, runtime: Session) -> None:
        for index in range(self.n_swaptions):
            params = self.params[index]
            result = self.prices[index]
            runtime.submit(
                self.swaption_task_type,
                price_swaption,
                accesses=[
                    In(params, name=f"swaption[{index}]"),
                    Out(result, name=f"price[{index}]"),
                ],
                args=(params, result, self.steps),
            )
        runtime.wait_all()

    def output(self) -> np.ndarray:
        return self.prices[:, 0].copy()

    def _footprint_arrays(self) -> list[np.ndarray]:
        return [self.params, self.prices]

    def expected_task_count(self) -> int:
        return self.n_swaptions
