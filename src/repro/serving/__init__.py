"""Serving layer: multi-tenant gateway + client SDK (DESIGN.md §8).

The serving package turns the single-program runtime into a long-lived
service.  :class:`Gateway` accepts task-graph submissions from many
concurrent TCP clients, isolates each tenant's data and ATM namespace,
admits work fairly (weighted deficit round-robin over a bounded pending
pool), and optionally lets tenants share memoized results through an
incrementally merged THT tier.  :class:`GatewayClient` is the synchronous
SDK mirroring the Session submission surface.
"""

from repro.serving.admission import AdmissionController
from repro.serving.client import GatewayClient
from repro.serving.gateway import (
    Gateway,
    SERVING_PROTOCOL_VERSION,
    TenantArena,
    TenantEngineRouter,
)

__all__ = [
    "AdmissionController",
    "Gateway",
    "GatewayClient",
    "SERVING_PROTOCOL_VERSION",
    "TenantArena",
    "TenantEngineRouter",
]
