"""Multi-tenant serving gateway: the front door of the runtime (DESIGN.md §8).

A :class:`Gateway` turns the single-program Session model into a long-lived
service: many clients connect over TCP (the :mod:`repro.runtime.net_wire`
frame format), each claiming a **tenant** identity, and their task-graph
submissions are multiplexed onto ONE shared long-lived executor pool (any
registered backend).  Three properties make the sharing safe:

* **Isolation** — every tenant owns a private :class:`TenantArena` (its
  buffers, and therefore its dependence regions, are disjoint from every
  other tenant's) and a private ATM engine replica, so memoization state
  never leaks across tenants.
* **Fairness** — submissions pass through the
  :class:`~repro.serving.admission.AdmissionController`: per-tenant FIFO
  queues drained by weighted deficit round-robin into a bounded global
  pending pool, so a heavy tenant cannot starve a light one.
* **Opt-in sharing** — with ``ServingConfig.shared_tht`` the gateway keeps
  one extra :class:`~repro.atm.tht.THT` tier.  Tenant engines journal their
  commits and a background pump incrementally merges the deltas into the
  shared tier (period ``merge_interval_s``, or earlier after
  ``merge_min_commits`` journal entries); a tenant-private THT miss then
  probes the shared tier, so tenants that opted in reuse each other's work
  without ever writing into each other's namespaces.  With ``atm.tht_store``
  the shared tier additionally warm-starts from a persistent store
  (``file://`` snapshot or ``tcp://`` cache shard, DESIGN.md §9) and the
  merge pump publishes its incremental deltas back, so the warm tier
  survives gateway restarts.

Threading model: one asyncio event loop (connection handling), one dispatch
thread (admission pump + ``executor.drain``), one merge-pump thread (shared
tier only).  Mid-drain admission rides the graph's ``on_complete`` hook —
every task completion frees a pending-pool slot and immediately pumps more
queued work into the live graph, which keeps the pool busy and is what lets
a second wave submitted *while draining* land in the same graph (the
submit-while-draining parity tests drive exactly this seam).

The graph's dense bookkeeping grows with the total number of tasks ever
served; a gateway is expected to be restarted between unrelated campaigns
rather than run unbounded forever.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
import warnings
from collections import deque
from typing import Any, Mapping, Optional

import numpy as np

from repro.common.exceptions import (
    AdmissionError,
    ConfigurationError,
    GatewayError,
    GatewayProtocolError,
    GatewayShutdownError,
    ReproError,
    TenantRejectedError,
    THTStoreCorruptError,
    THTStoreError,
    THTStoreUnavailableError,
)
from repro.runtime.atm_protocol import (
    ATMAction,
    ATMDecision,
    EXECUTE_DECISION,
)
from repro.runtime.data import AccessMode, DataAccess, DataRegion
from repro.runtime.executor import build_executor
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.net_wire import (
    NetArrayRef,
    NetBuffer,
    _check_header,
    _check_payload,
    _HEADER,
    encode_frame,
)
from repro.runtime.task import Task, TaskState, TaskType
from repro.serving.admission import AdmissionController
from repro.session.config import ReproConfig

__all__ = [
    "Gateway",
    "TenantArena",
    "TenantEngineRouter",
    "SERVING_PROTOCOL_VERSION",
]

#: Bumped on any incompatible change to the gateway message vocabulary.
SERVING_PROTOCOL_VERSION = 1

#: ATM modes a tenant may request at hello time.
_TENANT_ATM_MODES = ("none", "static", "dynamic", "fixed_p")


async def read_message(reader: asyncio.StreamReader) -> Any:
    """Read one net_wire frame from an asyncio stream (None at clean EOF)."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    length, crc = _check_header(header)
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return _check_payload(payload, crc)


class TenantArena:
    """Persistent per-tenant buffer store (the gateway's ChunkArena analogue).

    Client buffers are shipped whole (one :class:`NetBuffer` with
    ``start == 0`` covering the owning base) on first touch and live here for
    the tenant's lifetime; the server-side copy is authoritative between
    barriers.  Views and regions are cached by their byte-exact layout so
    repeated submissions over the same client array resolve to the *same*
    :class:`DataRegion` object — which is what makes the shared dependence
    graph and the ATM key caches see a stable identity per tenant array.
    """

    def __init__(self) -> None:
        self._bases: dict[int, np.ndarray] = {}
        self._views: dict[tuple, np.ndarray] = {}
        self._regions: dict[tuple, DataRegion] = {}

    def store(self, buffers: "tuple[NetBuffer, ...] | list[NetBuffer]") -> None:
        for buf in buffers:
            if buf.data is None:
                raise GatewayProtocolError(
                    "the gateway ships tenant buffers whole; cached "
                    "(data=None) NetBuffer dispatches are a worker-protocol "
                    "form the serving protocol does not use"
                )
            if buf.start != 0:
                raise GatewayProtocolError(
                    f"tenant buffer {buf.buffer_id:#x} shipped a partial span "
                    f"(start={buf.start}); the serving protocol ships whole "
                    f"base buffers"
                )
            if buf.buffer_id in self._bases:
                # First ship wins: the server copy is authoritative and the
                # SDK never re-ships a buffer it already registered.
                continue
            self._bases[buf.buffer_id] = np.frombuffer(
                bytearray(buf.data), dtype=np.uint8
            )

    def view(self, ref: NetArrayRef) -> np.ndarray:
        key = (ref.buffer_id, ref.offset, ref.shape, ref.strides, ref.dtype)
        cached = self._views.get(key)
        if cached is not None:
            return cached
        backing = self._bases.get(ref.buffer_id)
        if backing is None:
            raise GatewayProtocolError(
                f"task references buffer {ref.buffer_id:#x} that this tenant "
                f"never shipped"
            )
        try:
            array = np.ndarray(
                ref.shape,
                dtype=np.dtype(ref.dtype),
                buffer=backing,
                offset=ref.offset,
                strides=ref.strides,
            )
        except (ValueError, TypeError) as exc:
            raise GatewayProtocolError(
                f"cannot rebuild array view: {exc}"
            ) from exc
        self._views[key] = array
        return array

    def region(self, ref: NetArrayRef, name: str) -> DataRegion:
        key = (ref.buffer_id, ref.offset, ref.shape, ref.strides, ref.dtype)
        cached = self._regions.get(key)
        if cached is None:
            cached = DataRegion(self.view(ref), name=name)
            self._regions[key] = cached
        return cached

    def decode_payload(self, value: Any) -> Any:
        if isinstance(value, NetArrayRef):
            return self.view(value)
        if isinstance(value, tuple):
            return tuple(self.decode_payload(v) for v in value)
        if isinstance(value, list):
            return [self.decode_payload(v) for v in value]
        if isinstance(value, dict):
            return {k: self.decode_payload(v) for k, v in value.items()}
        return value

    def backing_bytes(self, buffer_id: int) -> bytes:
        backing = self._bases.get(buffer_id)
        if backing is None:
            raise GatewayProtocolError(
                f"write-back references unknown buffer {buffer_id:#x}"
            )
        return backing.tobytes()


class _TenantState:
    """Everything the gateway tracks per tenant."""

    def __init__(
        self,
        name: str,
        weight: float,
        engine,
        share_tht: bool,
        history: int,
    ) -> None:
        self.name = name
        self.weight = weight
        self.engine = engine
        self.share_tht = share_tht
        self.arena = TenantArena()
        self.task_types: dict[str, TaskType] = {}
        self.lock = threading.Lock()
        self.connected = False
        self.submitted = 0
        self.outstanding = 0
        self.executed = 0
        self.memoized = 0
        self.failed = 0
        self.cancelled = 0
        self.shared_hits = 0
        self.failed_ids: set[int] = set()
        self.dirty: set[int] = set()
        self.latencies: deque = deque(maxlen=max(history, 1))
        self.barriers: list[asyncio.Future] = []
        self.last_flush = time.monotonic()


class _Route:
    """Per-task metadata the completion hook needs (Task is ``__slots__``-ed)."""

    __slots__ = ("tenant", "t_submit")

    def __init__(self, tenant: _TenantState, t_submit: float) -> None:
        self.tenant = tenant
        self.t_submit = t_submit


class TenantEngineRouter:
    """Per-task demultiplexer implementing the executor's engine protocol.

    The shared pool sees ONE engine; this router forwards each call to the
    owning tenant's private engine (or answers ``EXECUTE`` for engine-less
    tenants).  On a tenant-private THT miss it optionally probes the shared
    tier: a hit there abandons the tenant-side lookup (retiring its IKT
    registration), copies the stored outputs, and reports a ``SKIP`` with
    ``atm_handled=False`` — the executor then completes the task as memoized
    without any tenant-engine commit, so the shared tier accelerates tenants
    without polluting their private statistics or tables.
    """

    def __init__(self, shared_tht=None) -> None:
        self._routes: dict[int, _Route] = {}
        self._shared = shared_tht
        self._engines: list = []
        self._deferred_cb = None
        self._lock = threading.Lock()

    # -- route maintenance (gateway side) ---------------------------------------
    def bind(self, task: Task, route: _Route) -> None:
        self._routes[id(task)] = route

    def route(self, task: Task) -> Optional[_Route]:
        return self._routes.get(id(task))

    def unbind(self, task: Task) -> Optional[_Route]:
        return self._routes.pop(id(task), None)

    def add_engine(self, engine) -> None:
        """Track a tenant engine; fan out the deferred-completion callback."""
        if engine is None:
            return
        with self._lock:
            self._engines.append(engine)
            if self._deferred_cb is not None:
                engine.set_deferred_completion_callback(self._deferred_cb)

    # -- MemoizationEngineProtocol ----------------------------------------------
    def task_ready(self, task: Task, worker_id: int = 0) -> ATMDecision:
        route = self._routes.get(id(task))
        tenant = route.tenant if route is not None else None
        engine = tenant.engine if tenant is not None else None
        if engine is None:
            return EXECUTE_DECISION
        decision = engine.task_ready(task, worker_id)
        if (
            self._shared is not None
            and tenant.share_tht
            and decision.action is ATMAction.EXECUTE
            and decision.payload.get("key") is not None
        ):
            entry = self._shared.lookup(
                decision.payload["key"], task.task_type.name
            )
            if entry is not None:
                # Local imports keep the router usable with fake engines in
                # tests that never touch the ATM package.
                from repro.atm.engine import ATMEngine

                engine.task_abandoned(task, decision)
                try:
                    copied = ATMEngine._copy_outputs_from_entry(task, entry)
                except Exception:
                    # Output layout mismatch (same key, different task
                    # surface): execute normally.  The tenant-side lookup
                    # was already abandoned, so the engine must not see a
                    # task_finished for this decision.
                    return ATMDecision(
                        action=ATMAction.EXECUTE,
                        hashed_bytes=decision.hashed_bytes,
                        p=decision.p,
                        atm_handled=False,
                    )
                with tenant.lock:
                    tenant.shared_hits += 1
                return ATMDecision(
                    action=ATMAction.SKIP,
                    hashed_bytes=decision.hashed_bytes,
                    copied_bytes=copied,
                    p=decision.p,
                    atm_handled=False,
                )
        return decision

    def task_finished(
        self, task: Task, decision: ATMDecision, executed: bool, worker_id: int = 0
    ):
        route = self._routes.get(id(task))
        engine = route.tenant.engine if route is not None else None
        if engine is None:
            return None
        return engine.task_finished(task, decision, executed, worker_id)

    def task_abandoned(self, task: Task, decision: ATMDecision) -> list[Task]:
        route = self._routes.get(id(task))
        engine = route.tenant.engine if route is not None else None
        if engine is None:
            return []
        return engine.task_abandoned(task, decision)

    def set_deferred_completion_callback(self, callback) -> None:
        with self._lock:
            self._deferred_cb = callback
            for engine in self._engines:
                engine.set_deferred_completion_callback(callback)


class Gateway:
    """The serving front door (see module docstring)."""

    def __init__(self, config: "ReproConfig | dict | str | None" = None) -> None:
        cfg = ReproConfig.coerce(config)
        if cfg.runtime.executor == "simulated":
            raise ConfigurationError(
                "the gateway needs a real executor pool; the simulated "
                "backend models one closed program, not an open-loop service"
            )
        # Tenant failures must quarantine (cancel the tenant's dependent
        # subgraph, report through RunResult.failures) — an aborting pool
        # would let one tenant's bug take down every other tenant's drain.
        cfg = cfg.with_overrides(runtime={"on_task_failure": "quarantine"})
        self.config = cfg
        self.serving = cfg.serving
        # Worker-replicated backends rebuild their engine from a picklable
        # spec; a per-task router cannot be replicated, so those pools run
        # engine-less and tenants must not request ATM.
        self._atm_capable = cfg.runtime.executor in ("serial", "threaded")
        self._shared_tht = None
        if self.serving.shared_tht:
            if not self._atm_capable:
                raise ConfigurationError(
                    f"serving.shared_tht requires an in-process pool "
                    f"(serial/threaded), not {cfg.runtime.executor!r}"
                )
            from repro.atm.tht import TaskHistoryTable

            self._shared_tht = TaskHistoryTable(cfg.atm)
        # Persistent memoization tier (DESIGN.md §9): the shared tier
        # warm-starts from ``atm.tht_store`` and the merge pump publishes its
        # incremental deltas back, so the warm tier survives gateway restarts
        # and is visible to other gateways/sessions on the same store.
        self._tht_store = None
        if self._shared_tht is not None and cfg.atm.tht_store:
            self._tht_store = self._open_tht_store(cfg.atm.tht_store)
        self._router = TenantEngineRouter(shared_tht=self._shared_tht)
        self._admission = AdmissionController(
            max_pending=self.serving.max_pending,
            max_tenant_queue=self.serving.max_tenant_queue,
            quantum=self.serving.quantum,
        )
        self._tenants: dict[str, _TenantState] = {}
        self._tenants_lock = threading.Lock()
        self._admit_lock = threading.Lock()
        self._work_cond = threading.Condition()
        self._stop_event = threading.Event()
        self._draining = False
        self._failure_archive: list = []
        self._drain_errors = 0
        self._build_pool()

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._port: Optional[int] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._dispatch_thread: Optional[threading.Thread] = None
        self._merge_thread: Optional[threading.Thread] = None

    # -- persistent shared tier (DESIGN.md §9) -----------------------------------
    def _open_tht_store(self, url: str):
        """Warm-start the shared tier from ``atm.tht_store``.

        Mirrors the Session's failure semantics: a corrupt or unreachable
        store degrades to a cold shared tier with a ``RuntimeWarning``.  The
        shared tier's journal is enabled only when a store is attached (and
        after the restore merge), so the merge pump publishes exactly the
        increment each tick and never re-publishes restored entries.
        """
        from repro.atm.store import open_store

        try:
            store = open_store(url, self.config.atm)
        except THTStoreUnavailableError as exc:
            warnings.warn(
                f"THT store {url} unavailable, shared tier cold-starts: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        try:
            delta = store.load()
        except THTStoreCorruptError as exc:
            warnings.warn(
                f"THT store {url} unreadable, shared tier cold-starts: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            delta = None
        except THTStoreUnavailableError as exc:
            store.close()
            warnings.warn(
                f"THT store {url} dropped during warm-start, shared tier "
                f"cold-starts: {exc}",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        if delta and delta.get("entries"):
            self._shared_tht.merge(delta, journal=False)
        self._shared_tht.enable_journal()
        return store

    def _publish_shared_delta(self) -> None:
        """Ship the shared tier's journal increment to the store.

        A store that fails mid-service is detached after one warning — the
        gateway keeps serving from its in-memory tier.
        """
        store = self._tht_store
        if store is None or self._shared_tht is None:
            return
        if not getattr(self._shared_tht, "_journal", None):
            return
        try:
            store.publish(self._shared_tht.snapshot(reset=True))
        except THTStoreError as exc:
            self._tht_store = None
            store.close()
            warnings.warn(
                f"THT store {store.url} publish failed; detaching the store "
                f"(shared tier stays in-memory): {exc}",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- pool assembly -----------------------------------------------------------
    def _build_pool(self) -> None:
        engine = self._router if self._atm_capable else None
        self._executor = build_executor(
            self.config.runtime,
            engine=engine,
            sim_config=self.config.simulation,
        )
        self._graph = TaskDependenceGraph(
            on_ready=self._executor.notify_ready,
            on_ready_batch=self._executor.notify_ready_batch,
            on_complete=self._on_task_complete,
        )

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> int:
        """Bind, spawn the service threads, and return the listening port."""
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="gateway-loop", daemon=True
        )
        self._loop_thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        self._dispatch_thread = threading.Thread(
            target=self._dispatch_loop, name="gateway-dispatch", daemon=True
        )
        self._dispatch_thread.start()
        if self._shared_tht is not None:
            self._merge_thread = threading.Thread(
                target=self._merge_loop, name="gateway-merge", daemon=True
            )
            self._merge_thread.start()
        assert self._port is not None
        return self._port

    @property
    def port(self) -> int:
        if self._port is None:
            raise GatewayError("gateway not started")
        return self._port

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_client, self.serving.host, self.serving.port
                )
            )
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._server = server
        self._port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            # Cancel stragglers (idle connection handlers) before closing.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self, grace_s: Optional[float] = None) -> None:
        """Graceful shutdown: drain in-flight work, flush deltas, close.

        New submissions are refused (``GatewayShutdownError``) the moment
        shutdown begins; work already admitted or queued gets up to
        ``grace_s`` (default ``serving.shutdown_grace_s``) to finish, then
        the pool is torn down regardless.
        """
        if self._stop_event.is_set():
            return
        grace = self.serving.shutdown_grace_s if grace_s is None else grace_s
        self._draining = True
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            if not self._admission.has_queued() and self._graph.all_finished:
                break
            time.sleep(0.01)
        self._stop_event.set()
        with self._work_cond:
            self._work_cond.notify_all()
        if self._shared_tht is not None:
            self._flush_all_deltas()
            self._publish_shared_delta()
        store, self._tht_store = self._tht_store, None
        if store is not None:
            store.close()
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        for thread in (self._loop_thread, self._dispatch_thread, self._merge_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        self._executor.close()

    def __enter__(self) -> "Gateway":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- dispatch ----------------------------------------------------------------
    def _signal_work(self) -> None:
        with self._work_cond:
            self._work_cond.notify_all()

    def _pump_admission(self) -> None:
        """Move queued work into the live graph (DRR order).

        ``take()`` + ``add_tasks`` must be one atomic step — two concurrent
        pumps could otherwise interleave their graph insertion and invert a
        tenant's FIFO, breaking its dependence order.  Contended or
        re-entrant pumps (a born-cancelled task's completion hook fires
        *inside* ``add_tasks``) skip instead of blocking; the slot they
        would have filled is picked up by the next completion or the
        dispatch loop's idle tick.
        """
        if not self._admit_lock.acquire(blocking=False):
            return
        try:
            admitted = self._admission.take()
            if admitted:
                self._graph.add_tasks([task for _, task in admitted])
        finally:
            self._admit_lock.release()

    def _dispatch_loop(self) -> None:
        while not self._stop_event.is_set():
            self._pump_admission()
            if not self._graph.all_finished:
                try:
                    self._executor.drain(self._graph)
                except BaseException as exc:
                    self._recover_from_drain_failure(exc)
                continue
            with self._work_cond:
                if self._stop_event.is_set():
                    return
                if self._admission.has_queued() or not self._graph.all_finished:
                    continue
                self._work_cond.wait(timeout=0.1)

    def _recover_from_drain_failure(self, exc: BaseException) -> None:
        """A drain died wholesale (not a quarantined task): rebuild the pool.

        Every non-terminal routed task is failed against its tenant so
        barriers resolve and slots free; the old pool's failure report is
        archived (summaries join against it) and a fresh executor + graph
        replace the broken ones.
        """
        self._drain_errors += 1
        old_failures = list(self._executor.result().failures)
        self._failure_archive.extend(old_failures)
        stranded = [
            (task_id, route)
            for task_id, route in list(self._router._routes.items())
        ]
        with self._admit_lock:
            for key, route in stranded:
                self._router._routes.pop(key, None)
                tenant = route.tenant
                with tenant.lock:
                    tenant.failed += 1
                    tenant.outstanding -= 1
                    resolved = self._collect_barriers(tenant)
                self._admission.release(1)
                self._resolve_barriers(resolved)
            try:
                self._executor.close()
            except Exception:
                pass
            self._build_pool()

    # -- completion hook ---------------------------------------------------------
    def _on_task_complete(self, task: Task) -> None:
        """Graph ``on_complete``: tenant accounting + mid-drain admission."""
        route = self._router.unbind(task)
        if route is None:
            return
        tenant = route.tenant
        state = task.state
        with tenant.lock:
            if state is TaskState.FINISHED:
                tenant.executed += 1
            elif state is TaskState.MEMOIZED:
                tenant.memoized += 1
            elif state is TaskState.FAILED:
                tenant.failed += 1
                tenant.failed_ids.add(task.task_id)
            elif state is TaskState.CANCELLED:
                tenant.cancelled += 1
                tenant.failed_ids.add(task.task_id)
            tenant.outstanding -= 1
            tenant.latencies.append(time.monotonic() - route.t_submit)
            resolved = self._collect_barriers(tenant)
        self._admission.release(1)
        self._pump_admission()
        self._resolve_barriers(resolved)
        if resolved:
            self._signal_work()

    def _collect_barriers(self, tenant: _TenantState) -> list[asyncio.Future]:
        """Under ``tenant.lock``: pop barrier futures once outstanding hits 0."""
        if tenant.outstanding == 0 and tenant.barriers:
            resolved = tenant.barriers[:]
            tenant.barriers.clear()
            return resolved
        return []

    def _resolve_barriers(self, futures: list[asyncio.Future]) -> None:
        loop = self._loop
        if loop is None:
            return
        for fut in futures:
            loop.call_soon_threadsafe(
                lambda f=fut: f.done() or f.set_result(None)
            )

    # -- shared-tier merge pump --------------------------------------------------
    def _flush_tenant_delta(self, tenant: _TenantState) -> None:
        engine = tenant.engine
        if (
            self._shared_tht is None
            or engine is None
            or not tenant.share_tht
        ):
            return
        journal = getattr(engine.tht, "_journal", None)
        if not journal:
            tenant.last_flush = time.monotonic()
            return
        self._shared_tht.merge(engine.tht.snapshot(reset=True))
        tenant.last_flush = time.monotonic()

    def _flush_all_deltas(self) -> None:
        with self._tenants_lock:
            tenants = list(self._tenants.values())
        for tenant in tenants:
            self._flush_tenant_delta(tenant)

    def _merge_loop(self) -> None:
        interval = self.serving.merge_interval_s
        min_commits = self.serving.merge_min_commits
        tick = max(interval / 4.0, 0.005)
        while not self._stop_event.wait(tick):
            now = time.monotonic()
            with self._tenants_lock:
                tenants = list(self._tenants.values())
            for tenant in tenants:
                engine = tenant.engine
                if engine is None or not tenant.share_tht:
                    continue
                journal = getattr(engine.tht, "_journal", None)
                if not journal:
                    continue
                if len(journal) >= min_commits or now - tenant.last_flush >= interval:
                    self._flush_tenant_delta(tenant)
            # Tenant deltas merged above land in the shared tier's journal
            # (when a store is attached); ship that increment downstream.
            self._publish_shared_delta()

    # -- tenant management -------------------------------------------------------
    def _register_tenant(self, info: Mapping) -> _TenantState:
        protocol = info.get("protocol")
        if protocol != SERVING_PROTOCOL_VERSION:
            raise TenantRejectedError(
                f"serving protocol mismatch: client speaks {protocol!r}, "
                f"gateway speaks {SERVING_PROTOCOL_VERSION}"
            )
        name = info.get("tenant")
        if not name or not isinstance(name, str):
            raise TenantRejectedError("hello carries no tenant name")
        weight = float(info.get("weight", self.serving.default_weight))
        if weight <= 0:
            raise TenantRejectedError(f"tenant weight must be > 0, got {weight}")
        atm_mode = info.get("atm_mode")
        if atm_mode is None:
            atm_mode = self.config.atm.mode
        if atm_mode not in _TENANT_ATM_MODES:
            raise TenantRejectedError(f"unknown atm_mode {atm_mode!r}")
        if atm_mode != "none" and not self._atm_capable:
            raise TenantRejectedError(
                f"this gateway's {self.config.runtime.executor!r} pool runs "
                f"engine-less; per-tenant ATM needs a serial/threaded pool"
            )
        share = bool(info.get("shared_tht", self._shared_tht is not None))
        if share and self._shared_tht is None:
            share = False  # no shared tier exists; opt-in is a no-op
        with self._tenants_lock:
            tenant = self._tenants.get(name)
            if tenant is not None:
                if tenant.connected:
                    raise TenantRejectedError(
                        f"tenant {name!r} already has a live connection"
                    )
                # Reconnection resumes the existing namespace (arena, engine,
                # counters) — the point of a persistent per-tenant ATM tier.
                tenant.connected = True
                return tenant
            engine = self._build_tenant_engine(atm_mode, info.get("atm_p"), share)
            tenant = _TenantState(
                name=name,
                weight=weight,
                engine=engine,
                share_tht=share,
                history=self.serving.result_history,
            )
            tenant.connected = True
            self._tenants[name] = tenant
        self._router.add_engine(engine)
        self._admission.register(name, weight)
        return tenant

    def _build_tenant_engine(
        self, mode: str, p: Optional[float], share: bool
    ):
        if mode == "none":
            return None
        from repro.atm.engine import ATMEngine
        from repro.atm.policy import make_policy

        atm_cfg = dataclasses.replace(self.config.atm, mode=mode)
        if p is not None:
            atm_cfg = dataclasses.replace(atm_cfg, p=float(p))
        policy = make_policy(
            mode, atm_cfg, p=atm_cfg.p if mode == "fixed_p" else None
        )
        num_threads = max(self.config.runtime.num_threads, 1)
        engine = ATMEngine(config=atm_cfg, policy=policy, num_threads=num_threads)
        if share:
            engine.enable_delta_snapshots()
        return engine

    # -- request handling --------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        tenant: Optional[_TenantState] = None
        loop = asyncio.get_running_loop()

        async def reply(message: Any) -> None:
            writer.write(encode_frame(message))
            await writer.drain()

        try:
            while True:
                message = await read_message(reader)
                if message is None:
                    break
                try:
                    done = await self._handle_message(
                        message, tenant, reply, loop
                    )
                except ReproError as exc:
                    # Any taxonomy error — gateway-specific or from task
                    # validation/decoding — is the client's answer, not a
                    # reason to drop the connection.
                    await reply(("error", type(exc).__name__, str(exc)))
                    continue
                if isinstance(done, _TenantState):
                    tenant = done
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if tenant is not None:
                tenant.connected = False
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _handle_message(self, message, tenant, reply, loop):
        if not isinstance(message, tuple) or not message:
            raise GatewayProtocolError("messages are non-empty tuples")
        kind = message[0]
        if kind == "hello":
            if tenant is not None:
                raise GatewayProtocolError("duplicate hello on one connection")
            if self._draining:
                raise GatewayShutdownError("gateway is shutting down")
            info = message[1] if len(message) > 1 else {}
            state = self._register_tenant(info)
            await reply(
                (
                    "hello_ack",
                    {
                        "protocol": SERVING_PROTOCOL_VERSION,
                        "tenant": state.name,
                        "shared_tht": state.share_tht,
                        "atm": state.engine is not None,
                        "executor": self.config.runtime.executor,
                    },
                )
            )
            return state
        if tenant is None:
            raise GatewayProtocolError(f"{kind!r} before hello")
        if kind in ("submit", "submit_batch"):
            if self._draining:
                raise GatewayShutdownError("gateway is shutting down")
            descs, buffers = message[1], message[2]
            if kind == "submit":
                descs = [descs]
            n = await loop.run_in_executor(
                None, self._ingest_submission, tenant, descs, buffers
            )
            await reply(("ack", n))
            return None
        if kind == "barrier" or kind == "finish":
            fut: Optional[asyncio.Future] = None
            with tenant.lock:
                if tenant.outstanding > 0:
                    fut = loop.create_future()
                    tenant.barriers.append(fut)
            if fut is not None:
                await fut
            summary, dirty = await loop.run_in_executor(
                None, self._barrier_payload, tenant
            )
            if kind == "finish":
                # The connection stays open after finish: clients may still
                # ask for result/stats or submit a fresh wave.  EOF on the
                # socket (client close) is what ends the session loop.
                await reply(("finish_ack", summary, dirty))
                return None
            await reply(("barrier_result", summary, dirty))
            return None
        if kind == "result":
            await reply(("result_reply", self._tenant_summary(tenant)))
            return None
        if kind == "stats":
            await reply(("stats_reply", self._gateway_stats(tenant)))
            return None
        raise GatewayProtocolError(f"unknown message type {kind!r}")

    # -- submission path (worker threads) ----------------------------------------
    def _ingest_submission(
        self, tenant: _TenantState, descs: list, buffers
    ) -> int:
        tenant.arena.store(buffers)
        t_submit = time.monotonic()
        # Build (and validate) every task before binding any route, so a
        # rejected descriptor mid-batch leaves no dangling router entries.
        tasks = [self._build_task(tenant, desc) for desc in descs]
        for task in tasks:
            self._router.bind(task, _Route(tenant, t_submit))
        with tenant.lock:
            tenant.submitted += len(tasks)
            tenant.outstanding += len(tasks)
        try:
            self._admission.enqueue(tenant.name, tasks)
        except AdmissionError:
            with tenant.lock:
                tenant.submitted -= len(tasks)
                tenant.outstanding -= len(tasks)
            for task in tasks:
                self._router.unbind(task)
            raise
        # Deliberately no direct pump here: only the dispatch loop (no drain
        # running) and the completion hook (a live drain worker) may extend
        # the graph.  An ingest-thread pump could extend it in the window
        # where a drain's workers have already observed all_finished and
        # exited — tasks nobody would ever run.
        self._signal_work()
        return len(tasks)

    def _build_task(self, tenant: _TenantState, desc) -> Task:
        type_spec = desc.type_spec
        task_type = tenant.task_types.get(type_spec.name)
        if task_type is None:
            task_type = type_spec.build()
            tenant.task_types[type_spec.name] = task_type
        accesses = []
        for ref, mode_value, name in desc.accesses:
            mode = AccessMode(mode_value)
            accesses.append(DataAccess(tenant.arena.region(ref, name), mode))
            if mode.writes:
                tenant.dirty.add(ref.buffer_id)
        return Task(
            task_type=task_type,
            function=desc.function,
            accesses=accesses,
            args=tenant.arena.decode_payload(desc.args),
            kwargs=tenant.arena.decode_payload(desc.kwargs),
            task_id=-1,  # the shared graph assigns dense ids
        )

    # -- replies -----------------------------------------------------------------
    def _barrier_payload(self, tenant: _TenantState) -> tuple[dict, list]:
        # Outstanding == 0: no in-flight writes touch this tenant's arena,
        # so the dirty backings are stable to read.  Flushing the delta here
        # makes a finished tenant's commits visible to shared-tier peers
        # immediately instead of a merge-interval later.
        self._flush_tenant_delta(tenant)
        summary = self._tenant_summary(tenant)
        with tenant.lock:
            dirty_ids = sorted(tenant.dirty)
            tenant.dirty.clear()
        dirty = [
            (buffer_id, tenant.arena.backing_bytes(buffer_id))
            for buffer_id in dirty_ids
        ]
        return summary, dirty

    def _tenant_summary(self, tenant: _TenantState) -> dict:
        with tenant.lock:
            failed_ids = set(tenant.failed_ids)
            summary = {
                "tenant": tenant.name,
                "tasks_submitted": tenant.submitted,
                "tasks_completed": tenant.executed + tenant.memoized,
                "tasks_executed": tenant.executed,
                "tasks_memoized": tenant.memoized,
                "tasks_failed": tenant.failed,
                "tasks_cancelled": tenant.cancelled,
                "shared_hits": tenant.shared_hits,
                "outstanding": tenant.outstanding,
            }
        summary["lost_deltas"] = self._executor.result().lost_deltas
        # The supervisor records the TaskFailure *after* the graph turns the
        # task terminal (quarantine fails the subgraph first), so a summary
        # racing the recording may need one beat for the report to land.
        failures: list = []
        if failed_ids:
            for _ in range(50):
                failures = [
                    f for f in self._all_failures() if f.task_id in failed_ids
                ]
                if failures:
                    break
                time.sleep(0.002)
        summary["failures"] = failures
        return summary

    def _all_failures(self) -> list:
        return self._failure_archive + list(self._executor.result().failures)

    def _gateway_stats(self, tenant: Optional[_TenantState] = None) -> dict:
        result = self._executor.result()
        stats: dict[str, Any] = {
            "admission": self._admission.snapshot(),
            "drain_errors": self._drain_errors,
            "pool": {
                "executor": self.config.runtime.executor,
                "tasks_completed": result.tasks_completed,
                "tasks_executed": result.tasks_executed,
                "tasks_memoized": result.tasks_memoized,
                "tasks_failed": result.tasks_failed,
                "tasks_cancelled": result.tasks_cancelled,
                "lost_deltas": result.lost_deltas,
            },
            "tenants": {},
        }
        with self._tenants_lock:
            tenants = list(self._tenants.values())
        for state in tenants:
            with state.lock:
                latencies = sorted(state.latencies)
                entry = {
                    "submitted": state.submitted,
                    "completed": state.executed + state.memoized,
                    "executed": state.executed,
                    "memoized": state.memoized,
                    "failed": state.failed,
                    "cancelled": state.cancelled,
                    "shared_hits": state.shared_hits,
                    "outstanding": state.outstanding,
                    "weight": state.weight,
                }
            entry["latency_p50_s"] = _percentile(latencies, 0.50)
            entry["latency_p99_s"] = _percentile(latencies, 0.99)
            stats["tenants"][state.name] = entry
        return stats


def _percentile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return float(sorted_values[index])
