"""Fair-share admission control for the serving gateway (DESIGN.md §8).

The gateway multiplexes many tenants onto one shared executor pool.  Two
mechanisms keep that sharing fair and bounded, following the heavy-traffic
processor-sharing model (Lambert & Simatos, arXiv:1102.5620) and the
Puppetmaster bounded-scheduling-pool pattern:

* a **bounded global pending pool** — at most ``max_pending`` admitted tasks
  may be in flight (handed to the executor but not yet terminal) across all
  tenants, so the shared scheduler's working set stays constant no matter
  how many clients connect; and
* **weighted deficit round-robin** over the per-tenant FIFO queues — each
  scheduling visit grants a tenant ``quantum * weight`` credits, one credit
  admits one task, and unused credit carries over while the tenant stays
  backlogged, so a heavy tenant cannot starve a light one (the fairness
  ratio the serving bench gates on) while per-tenant submission order — the
  order the dependence system relies on — is never reordered.

The controller is a passive, thread-safe data structure: connection handlers
``enqueue`` (blocking on per-tenant backpressure), the gateway's dispatch
path calls :meth:`take` to move queued work into the pending pool, and the
completion hook calls :meth:`release` as tasks turn terminal.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Optional

from repro.common.exceptions import AdmissionError, RuntimeStateError

__all__ = ["AdmissionController"]


class _TenantQueue:
    """One tenant's FIFO backlog plus its deficit-round-robin credit."""

    __slots__ = ("name", "weight", "items", "deficit", "admitted", "enqueued")

    def __init__(self, name: str, weight: float) -> None:
        self.name = name
        self.weight = weight
        self.items: deque = deque()
        self.deficit = 0.0
        self.admitted = 0
        self.enqueued = 0


class AdmissionController:
    """Bounded pending pool + weighted deficit round-robin (module docstring)."""

    def __init__(
        self,
        max_pending: int,
        max_tenant_queue: int,
        quantum: int,
    ) -> None:
        if max_pending < 1 or max_tenant_queue < 1 or quantum < 1:
            raise AdmissionError(
                "max_pending, max_tenant_queue and quantum must all be >= 1"
            )
        self.max_pending = max_pending
        self.max_tenant_queue = max_tenant_queue
        self.quantum = quantum
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._queues: dict[str, _TenantQueue] = {}
        self._rotation: deque[str] = deque()
        self._pending = 0

    # -- tenant lifecycle -------------------------------------------------------
    def register(self, tenant: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise AdmissionError(f"tenant weight must be > 0, got {weight}")
        with self._lock:
            if tenant in self._queues:
                raise AdmissionError(f"tenant {tenant!r} is already registered")
            self._queues[tenant] = _TenantQueue(tenant, weight)
            self._rotation.append(tenant)

    def unregister(self, tenant: str) -> None:
        """Drop a tenant's queue; queued work must already be drained."""
        with self._lock:
            queue = self._queues.get(tenant)
            if queue is None:
                return
            if queue.items:
                raise RuntimeStateError(
                    f"tenant {tenant!r} still has {len(queue.items)} queued "
                    f"tasks; drain before unregistering"
                )
            del self._queues[tenant]
            self._rotation.remove(tenant)

    # -- producer side ----------------------------------------------------------
    def enqueue(
        self, tenant: str, items: list, timeout: Optional[float] = None
    ) -> int:
        """Append ``items`` to the tenant's FIFO, blocking on backpressure.

        A batch larger than the whole per-tenant queue capacity can never be
        admitted by waiting, so it raises :class:`AdmissionError` immediately;
        an over-budget-but-feasible batch blocks until earlier work drains
        (or ``timeout`` expires, which also raises).
        """
        n = len(items)
        if n == 0:
            return 0
        if n > self.max_tenant_queue:
            raise AdmissionError(
                f"batch of {n} tasks exceeds the per-tenant queue capacity "
                f"of {self.max_tenant_queue}; split the submission"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._space:
            queue = self._queues.get(tenant)
            if queue is None:
                raise AdmissionError(f"tenant {tenant!r} is not registered")
            while len(queue.items) + n > self.max_tenant_queue:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise AdmissionError(
                            f"tenant {tenant!r}: queue full "
                            f"({len(queue.items)}/{self.max_tenant_queue}) and "
                            f"backpressure wait timed out"
                        )
                self._space.wait(remaining)
                if tenant not in self._queues:
                    raise AdmissionError(f"tenant {tenant!r} was unregistered")
            queue.items.extend(items)
            queue.enqueued += n
        return n

    # -- consumer side ----------------------------------------------------------
    def take(self) -> list[tuple[str, Any]]:
        """Admit queued work into the pending pool by weighted DRR.

        Returns ``(tenant, item)`` pairs — FIFO within each tenant, credit-
        interleaved across tenants — and counts every returned item against
        the pending pool.  Callers must serialise ``take()`` + downstream
        submission so per-tenant order survives concurrent pumping.
        """
        admitted: list[tuple[str, Any]] = []
        with self._lock:
            budget = self.max_pending - self._pending
            while budget > 0:
                progressed = False
                backlogged = False
                for _ in range(len(self._rotation)):
                    name = self._rotation[0]
                    self._rotation.rotate(-1)
                    queue = self._queues[name]
                    if not queue.items:
                        # Classic DRR: an idle tenant's credit does not bank.
                        queue.deficit = 0.0
                        continue
                    backlogged = True
                    if queue.deficit < 1.0:
                        per_round = self.quantum * queue.weight
                        rounds = math.ceil((1.0 - queue.deficit) / per_round)
                        queue.deficit += rounds * per_round
                    n = min(len(queue.items), int(queue.deficit), budget)
                    if n <= 0:
                        continue
                    for _ in range(n):
                        admitted.append((name, queue.items.popleft()))
                    queue.deficit -= n
                    queue.admitted += n
                    if not queue.items:
                        queue.deficit = 0.0
                    budget -= n
                    progressed = True
                    if budget <= 0:
                        break
                if not backlogged or not progressed:
                    break
            if admitted:
                self._pending += len(admitted)
                self._space.notify_all()
        return admitted

    def release(self, n: int = 1) -> None:
        """Return ``n`` pending-pool slots (tasks turned terminal)."""
        with self._lock:
            self._pending = max(0, self._pending - n)

    # -- introspection ----------------------------------------------------------
    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def queued(self, tenant: Optional[str] = None) -> int:
        with self._lock:
            if tenant is not None:
                queue = self._queues.get(tenant)
                return len(queue.items) if queue is not None else 0
            return sum(len(q.items) for q in self._queues.values())

    def has_queued(self) -> bool:
        with self._lock:
            return any(q.items for q in self._queues.values())

    def snapshot(self) -> dict:
        """Counters for ``stats`` replies and the serving bench."""
        with self._lock:
            return {
                "pending": self._pending,
                "max_pending": self.max_pending,
                "tenants": {
                    name: {
                        "queued": len(q.items),
                        "enqueued": q.enqueued,
                        "admitted": q.admitted,
                        "weight": q.weight,
                    }
                    for name, q in self._queues.items()
                },
            }
