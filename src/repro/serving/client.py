"""Synchronous client SDK for the serving gateway.

:class:`GatewayClient` mirrors the Session submission surface —
``submit`` / ``submit_batch`` / ``wait_all`` / ``finish`` / ``result`` — so
an application's ``build(runtime)`` runs unchanged against a remote gateway:

    with GatewayClient(host, port, tenant="alice") as client:
        app.build(client)
        result = client.finish()
        checksum = app.output_checksum()

Buffer model (server-authoritative): the first time a submission touches an
array, the client ships the array's *whole owning base buffer* to the
gateway; afterwards only byte-exact :class:`NetArrayRef` handles travel.
The gateway's copy is authoritative between barriers — host-side writes to
a shipped array are NOT observed by the server.  At every barrier the
gateway returns the bytes of each buffer its tasks wrote and the client
copies them back over the local arrays, so ``app.output()`` reads the same
bytes a local Session run would produce.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from repro.common import exceptions as _exceptions
from repro.common.exceptions import GatewayError, RuntimeStateError
from repro.runtime.data import DataAccess, DataRegion, _base_buffer
from repro.runtime.executor import RunResult
from repro.runtime.mp_executor import _TaskTypeSpec
from repro.runtime.net_wire import (
    NetArrayRef,
    NetBuffer,
    NetTaskDescriptor,
    read_frame,
    span_bytes,
    write_frame,
)
from repro.runtime.task import TaskType
from repro.serving.gateway import SERVING_PROTOCOL_VERSION

__all__ = ["GatewayClient"]

def _error_class(name: str) -> type:
    """Resolve an error-reply class name against the unified taxonomy.

    Anything unknown (a future gateway speaking a newer taxonomy) degrades
    to the :class:`GatewayError` base rather than failing to raise.
    """
    cls = getattr(_exceptions, name, None)
    if isinstance(cls, type) and issubclass(cls, _exceptions.ReproError):
        return cls
    return GatewayError


class GatewayClient:
    """One tenant's connection to a :class:`~repro.serving.gateway.Gateway`."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        weight: float = 1.0,
        atm_mode: Optional[str] = None,
        atm_p: Optional[float] = None,
        shared_tht: Optional[bool] = None,
        connect_timeout_s: float = 10.0,
    ) -> None:
        self.tenant = tenant
        self._sock = socket.create_connection((host, port), timeout=connect_timeout_s)
        self._sock.settimeout(None)
        # id(base) -> base ndarray; holding the reference keeps the id stable
        # and marks the buffer as already shipped.
        self._ledger: dict[int, np.ndarray] = {}
        self._submitted = 0
        self._last_summary: Optional[dict] = None
        self._closed = False
        hello = {
            "protocol": SERVING_PROTOCOL_VERSION,
            "tenant": tenant,
            "weight": weight,
        }
        if atm_mode is not None:
            hello["atm_mode"] = atm_mode
        if atm_p is not None:
            hello["atm_p"] = atm_p
        if shared_tht is not None:
            hello["shared_tht"] = shared_tht
        try:
            reply = self._request(("hello", hello))
        except BaseException:
            self._sock.close()
            raise
        self.server_info: dict = reply[1]

    # -- wire helpers ------------------------------------------------------------
    def _request(self, message: tuple) -> tuple:
        if self._closed:
            raise RuntimeStateError("gateway client already closed")
        write_frame(self._sock, message)
        reply = read_frame(self._sock)
        if isinstance(reply, tuple) and reply and reply[0] == "error":
            _, class_name, text = reply
            raise _error_class(class_name)(text)
        return reply

    # -- buffer encoding ---------------------------------------------------------
    def _ref(self, array: np.ndarray, ship: list, region: Optional[DataRegion] = None) -> NetArrayRef:
        base = _base_buffer(array)
        buffer_id = id(base)
        if buffer_id not in self._ledger:
            self._ledger[buffer_id] = base
            ship.append(
                NetBuffer(
                    buffer_id=buffer_id,
                    start=0,
                    data=span_bytes(base, 0, base.nbytes),
                )
            )
        base_addr = base.__array_interface__["data"][0]
        my_addr = array.__array_interface__["data"][0]
        return NetArrayRef(
            buffer_id=buffer_id,
            offset=int(my_addr - base_addr),
            shape=tuple(array.shape),
            strides=tuple(array.strides),
            dtype=array.dtype.str,
        )

    def _encode_payload(self, value: Any, ship: list) -> Any:
        if isinstance(value, np.ndarray):
            return self._ref(value, ship)
        if isinstance(value, tuple):
            return tuple(self._encode_payload(v, ship) for v in value)
        if isinstance(value, list):
            return [self._encode_payload(v, ship) for v in value]
        if isinstance(value, dict):
            return {k: self._encode_payload(v, ship) for k, v in value.items()}
        return value

    def _describe(
        self,
        task_type: TaskType,
        function: Callable,
        accesses: Sequence[DataAccess],
        args: tuple,
        kwargs: Optional[dict],
        ship: list,
    ) -> NetTaskDescriptor:
        encoded = tuple(
            (
                self._ref(access.region.array, ship, access.region),
                access.mode.value,
                access.region.name,
            )
            for access in accesses
        )
        task_id = self._submitted
        self._submitted += 1
        return NetTaskDescriptor(
            task_id=task_id,
            creation_index=task_id,
            type_spec=_TaskTypeSpec.of(task_type),
            function=getattr(function, "__wrapped__", function),
            accesses=encoded,
            args=self._encode_payload(tuple(args), ship),
            kwargs=self._encode_payload(dict(kwargs or {}), ship),
        )

    # -- Session-compatible surface ----------------------------------------------
    def submit(
        self,
        task_type: TaskType,
        function: Callable,
        accesses: Sequence[DataAccess],
        args: tuple = (),
        kwargs: Optional[dict] = None,
    ) -> int:
        """Ship one task; returns the client-side submission index."""
        ship: list = []
        desc = self._describe(task_type, function, accesses, args, kwargs, ship)
        self._request(("submit", desc, tuple(ship)))
        return desc.task_id

    def submit_batch(
        self, specs: "Sequence[Sequence] | Sequence[Mapping]"
    ) -> list[int]:
        """Ship many tasks in one frame (one ``ack`` round-trip)."""
        ship: list = []
        descs = []
        for spec in specs:
            if isinstance(spec, Mapping):
                task_type = spec["task_type"]
                function = spec["function"]
                accesses = spec["accesses"]
                args = spec.get("args", ())
                kwargs = spec.get("kwargs")
            else:
                task_type, function, accesses = spec[0], spec[1], spec[2]
                args = spec[3] if len(spec) > 3 else ()
                kwargs = spec[4] if len(spec) > 4 else None
            descs.append(
                self._describe(task_type, function, accesses, args, kwargs, ship)
            )
        self._request(("submit_batch", tuple(descs), tuple(ship)))
        return [d.task_id for d in descs]

    def wait_all(self) -> dict:
        """Barrier: block until every submitted task is terminal.

        Applies the gateway's write-backs to the local arrays and returns
        the tenant summary dict (also retrievable as :meth:`result`).
        """
        reply = self._request(("barrier",))
        _, summary, dirty = reply
        self._apply_writebacks(dirty)
        self._last_summary = summary
        return summary

    def _apply_writebacks(self, dirty: Sequence[tuple]) -> None:
        for buffer_id, data in dirty:
            base = self._ledger.get(buffer_id)
            if base is None:
                raise GatewayError(
                    f"write-back for unknown buffer {buffer_id:#x}"
                )
            flat = base.reshape(-1).view(np.uint8)
            flat[:] = np.frombuffer(data, dtype=np.uint8)

    def finish(self) -> RunResult:
        """Barrier + final summary as a :class:`RunResult`; keeps the
        connection open (``close`` ends it)."""
        reply = self._request(("finish",))
        _, summary, dirty = reply
        self._apply_writebacks(dirty)
        self._last_summary = summary
        return self._to_run_result(summary)

    def result(self) -> RunResult:
        """Current tenant accounting (no barrier) as a :class:`RunResult`."""
        reply = self._request(("result",))
        summary = reply[1]
        self._last_summary = summary
        return self._to_run_result(summary)

    def stats(self) -> dict:
        """Gateway-wide statistics (admission, pool, per-tenant latency)."""
        return self._request(("stats",))[1]

    @staticmethod
    def _to_run_result(summary: dict) -> RunResult:
        result = RunResult(
            tasks_completed=summary.get("tasks_completed", 0),
            tasks_executed=summary.get("tasks_executed", 0),
            tasks_memoized=summary.get("tasks_memoized", 0),
            tasks_failed=summary.get("tasks_failed", 0),
            tasks_cancelled=summary.get("tasks_cancelled", 0),
            lost_deltas=summary.get("lost_deltas", 0),
            failures=list(summary.get("failures", ())),
        )
        result.extra["tenant"] = summary.get("tenant")
        result.extra["shared_hits"] = summary.get("shared_hits", 0)
        result.extra["tasks_submitted"] = summary.get("tasks_submitted", 0)
        return result

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
