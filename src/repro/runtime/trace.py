"""Execution tracing.

The paper analyses ATM behaviour with Paraver traces (Figures 7 and 8): one
timeline per core, coloured by thread state (task execution, ATM hash-key
computation, ATM memoization copy, task creation, idle), plus a timeline of
the number of ready tasks in the runtime (Figure 8b/8d).

The :class:`TraceRecorder` collects the same information from either executor:
state intervals ``(core, state, t_start, t_end, task_label)`` and ready-queue
depth samples ``(t, depth)``.  Helper methods aggregate per-state time and
render a coarse ASCII timeline so the figures can be inspected in a terminal.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CoreState", "StateInterval", "TraceRecorder", "render_ascii_trace"]


class CoreState(enum.Enum):
    """Per-core states, matching the legend of Figures 7 and 8."""

    IDLE = "idle"
    TASK_EXECUTION = "task_execution"
    TASK_CREATION = "task_creation"
    ATM_HASH = "atm_hash"
    ATM_MEMOIZATION = "atm_memoization"
    RUNTIME_OVERHEAD = "runtime_overhead"


@dataclass(frozen=True)
class StateInterval:
    """One coloured segment of a core timeline."""

    core: int
    state: CoreState
    start: float
    end: float
    task_label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceRecorder:
    """Thread-safe collector of state intervals and ready-queue samples."""

    enabled: bool = True
    intervals: list[StateInterval] = field(default_factory=list)
    ready_samples: list[tuple[float, int]] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(
        self,
        core: int,
        state: CoreState,
        start: float,
        end: float,
        task_label: str = "",
    ) -> None:
        if not self.enabled or end <= start:
            return
        with self._lock:
            self.intervals.append(StateInterval(core, state, start, end, task_label))

    def sample_ready(self, time: float, depth: int) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.ready_samples.append((time, depth))

    # -- aggregation ----------------------------------------------------------
    def state_totals(self, core: Optional[int] = None) -> dict[CoreState, float]:
        """Total time per state, optionally restricted to one core."""
        totals: dict[CoreState, float] = {state: 0.0 for state in CoreState}
        with self._lock:
            for interval in self.intervals:
                if core is not None and interval.core != core:
                    continue
                totals[interval.state] += interval.duration
        return totals

    def cores(self) -> list[int]:
        with self._lock:
            return sorted({interval.core for interval in self.intervals})

    def span(self) -> tuple[float, float]:
        """Earliest start and latest end across all intervals."""
        with self._lock:
            if not self.intervals:
                return (0.0, 0.0)
            return (
                min(i.start for i in self.intervals),
                max(i.end for i in self.intervals),
            )

    def mean_state_duration(self, state: CoreState) -> float:
        """Mean duration of intervals of one state (used for Fig. 7 analysis)."""
        with self._lock:
            matching = [i.duration for i in self.intervals if i.state == state]
        if not matching:
            return 0.0
        return sum(matching) / len(matching)

    def ready_depth_series(self) -> list[tuple[float, int]]:
        with self._lock:
            return sorted(self.ready_samples)

    def max_ready_depth(self) -> int:
        with self._lock:
            if not self.ready_samples:
                return 0
            return max(depth for _, depth in self.ready_samples)

    def clear(self) -> None:
        with self._lock:
            self.intervals.clear()
            self.ready_samples.clear()


_STATE_CHARS = {
    CoreState.IDLE: ".",
    CoreState.TASK_EXECUTION: "T",
    CoreState.TASK_CREATION: "C",
    CoreState.ATM_HASH: "H",
    CoreState.ATM_MEMOIZATION: "M",
    CoreState.RUNTIME_OVERHEAD: "o",
}


def render_ascii_trace(trace: TraceRecorder, width: int = 100) -> str:
    """Render the trace as one text row per core (``T``ask, ``H``ash,
    ``M``emoization copy, ``C``reation, ``.`` idle), like a coarse Paraver
    view.  The dominant state of each time bucket wins the character.
    """
    start, end = trace.span()
    if end <= start:
        return "(empty trace)"
    cores = trace.cores()
    scale = width / (end - start)
    lines = []
    for core in cores:
        occupancy: list[dict[CoreState, float]] = [dict() for _ in range(width)]
        for interval in trace.intervals:
            if interval.core != core:
                continue
            first = int((interval.start - start) * scale)
            last = max(first, min(width - 1, int((interval.end - start) * scale)))
            for bucket in range(first, last + 1):
                occupancy[bucket][interval.state] = (
                    occupancy[bucket].get(interval.state, 0.0) + interval.duration
                )
        chars = []
        for bucket in occupancy:
            if not bucket:
                chars.append(_STATE_CHARS[CoreState.IDLE])
            else:
                dominant = max(bucket.items(), key=lambda kv: kv[1])[0]
                chars.append(_STATE_CHARS[dominant])
        lines.append(f"core {core:2d} |{''.join(chars)}|")
    legend = "legend: T=task H=hash M=memoization-copy C=creation .=idle"
    return "\n".join(lines + [legend])
