"""Serial and threaded executors.

Both executors run the tasks of a :class:`TaskDependenceGraph` to completion,
calling into an optional memoization engine around every task exactly as the
paper's Figure 1 describes: lookup when the task is pulled from the ready
queue, commit when it finishes.

* :class:`SerialExecutor` — one worker, wall-clock timing.  Used for baseline
  correctness runs and for measuring per-task costs.
* :class:`ThreadedExecutor` — real ``threading`` workers pulling from a shared
  scheduler.  Python's GIL prevents faithful parallel speedup measurements
  (see DESIGN.md §4), but this executor exercises the real concurrency paths:
  per-bucket THT locks, the single IKT lock, postponed output copies and the
  thread-safe graph, so it is the vehicle for the concurrency test-suite.

Deterministic *performance* figures come from
:class:`repro.runtime.simulator.SimulatedExecutor`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.common.config import RuntimeConfig
from repro.common.exceptions import (
    DrainAbortedError,
    RuntimeStateError,
    TaskFailedError,
    TaskTimeoutError,
)
from repro.common.registry import EXECUTORS
from repro.runtime.atm_protocol import (
    ATMAction,
    ATMDecision,
    EXECUTE_DECISION,
    MemoizationEngineProtocol,
)
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.scheduler import Scheduler, make_scheduler
from repro.runtime.supervision import TaskSupervisor, dump_stacks
from repro.runtime.task import Task, TaskState
from repro.runtime.trace import CoreState, TraceRecorder

__all__ = [
    "RunResult",
    "BaseExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "build_executor",
]


@dataclass
class RunResult:
    """Aggregate outcome of draining a task graph.

    ``elapsed`` is wall-clock seconds for the serial/threaded executors and
    simulated microseconds for the simulator (``time_unit`` distinguishes
    them).

    ``tasks_completed`` counts *successful* tasks only; quarantined runs
    (``on_task_failure="quarantine"``) additionally report ``tasks_failed``
    (exhausted supervision budget), ``tasks_cancelled`` (dependent subgraph)
    and the structured per-failure report in ``failures`` (a list of
    :class:`repro.runtime.supervision.TaskFailure`).

    ``lost_deltas`` counts worker ATM-engine deltas that could not be
    merged because their worker/endpoint died before the drain barrier
    (process and network backends).  Lost deltas cost reuse *statistics*,
    never correctness — the dead worker's unacknowledged tasks were re-run
    elsewhere — but a nonzero count means reported reuse rates undercount,
    so the draining executor also emits a ``RuntimeWarning``.
    """

    elapsed: float = 0.0
    time_unit: str = "s"
    tasks_completed: int = 0
    tasks_executed: int = 0
    tasks_memoized: int = 0
    tasks_deferred: int = 0
    tasks_trained: int = 0
    tasks_failed: int = 0
    tasks_cancelled: int = 0
    lost_deltas: int = 0
    failures: list = field(default_factory=list)
    trace: Optional[TraceRecorder] = None
    extra: dict = field(default_factory=dict)

    def merge(self, other: "RunResult") -> None:
        """Accumulate a later drain into this result (same time unit)."""
        if other.time_unit != self.time_unit:
            raise RuntimeStateError("cannot merge results with different time units")
        self.elapsed += other.elapsed
        self.tasks_completed += other.tasks_completed
        self.tasks_executed += other.tasks_executed
        self.tasks_memoized += other.tasks_memoized
        self.tasks_deferred += other.tasks_deferred
        self.tasks_trained += other.tasks_trained
        self.tasks_failed += other.tasks_failed
        self.tasks_cancelled += other.tasks_cancelled
        self.lost_deltas += other.lost_deltas
        if other.failures is not self.failures:
            self.failures.extend(other.failures)
        if other.trace is not None:
            self.trace = other.trace

    @property
    def reuse_fraction(self) -> float:
        """Fraction of completed tasks whose execution was avoided."""
        if self.tasks_completed == 0:
            return 0.0
        return (self.tasks_memoized + self.tasks_deferred) / self.tasks_completed


class BaseExecutor:
    """Shared bookkeeping for all executors."""

    time_unit = "s"

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        engine: Optional[MemoizationEngineProtocol] = None,
    ) -> None:
        self.config = config or RuntimeConfig()
        self.engine = engine
        self.scheduler: Scheduler = make_scheduler(self.config)
        self.trace = TraceRecorder(enabled=self.config.enable_tracing)
        self._result = RunResult(time_unit=self.time_unit, trace=self.trace)
        # Supervision: retries/timeouts/quarantine per DESIGN.md §7.  The
        # supervisor writes failures straight onto the run result; drains
        # refresh it so each drain gets a fresh deadline/attempt ledger.
        self._supervisor = TaskSupervisor(self.config, failures=self._result.failures)
        self._failure_lock = threading.Lock()

    # -- runtime hooks ---------------------------------------------------------
    def notify_ready(self, task: Task) -> None:
        """Called by the graph when a task's dependences become satisfied."""
        self.scheduler.task_ready(task, worker_hint=task.creation_index)

    def notify_ready_batch(self, tasks: Sequence[Task]) -> None:
        """Batched ready notification (graph ``on_ready_batch`` hook).

        One scheduler call — and therefore one ready-queue lock acquisition —
        per release set, preserving per-task worker hints.  Executors that
        gate readiness per task (the simulator) override this with a loop
        over their own :meth:`notify_ready`; custom schedulers registered
        through the public seam that predate ``tasks_ready`` degrade to the
        per-task path instead of breaking.
        """
        tasks_ready = getattr(self.scheduler, "tasks_ready", None)
        if tasks_ready is None:
            for task in tasks:
                self.notify_ready(task)
            return
        tasks_ready(tasks, worker_hints=[task.creation_index for task in tasks])

    def result(self) -> RunResult:
        return self._result

    # -- helpers ---------------------------------------------------------------
    def _lookup(self, task: Task, worker_id: int) -> ATMDecision:
        if self.engine is None or not task.task_type.atm_eligible:
            return EXECUTE_DECISION
        return self.engine.task_ready(task, worker_id)

    def _finalize_result(self) -> None:
        """Stash the engine's memory/cache telemetry on the run result.

        Called at the end of every drain so perf harnesses (and users) can
        read ATM memory footprint and key-cache effectiveness without
        reaching into engine internals.
        """
        engine = self.engine
        if engine is None:
            return
        memory = getattr(engine, "memory_bytes", None)
        if callable(memory):
            self._result.extra["atm_memory_bytes"] = memory()
        keygen = getattr(engine, "keygen", None)
        cache_info = getattr(keygen, "cache_info", None)
        if callable(cache_info):
            self._result.extra["keygen_cache"] = cache_info()

    def _account(self, decision: ATMDecision) -> None:
        result = self._result
        result.tasks_completed += 1
        if decision.action == ATMAction.SKIP:
            result.tasks_memoized += 1
        elif decision.action == ATMAction.DEFER:
            result.tasks_deferred += 1
        elif decision.action == ATMAction.EXECUTE_AND_TRAIN:
            result.tasks_trained += 1
            result.tasks_executed += 1
        else:
            result.tasks_executed += 1

    # -- supervision (DESIGN.md §7 "Failure semantics") ------------------------
    def _fresh_supervisor(self) -> TaskSupervisor:
        """New per-drain supervisor, still sinking into the run result."""
        self._supervisor = TaskSupervisor(self.config, failures=self._result.failures)
        return self._supervisor

    def _run_supervised(self, task: Task):
        """Run the task body under the retry/timeout budget.

        Returns ``None`` on success, else ``(error_cls, reason, exc)`` for
        the terminal failure.  Retries re-run in place with exponential
        backoff; a post-hoc timeout (in-process backends cannot preempt a
        Python frame) is terminal immediately — a task that blew its budget
        once would blow it again.
        """
        supervisor = self._supervisor
        while True:
            t_start = time.perf_counter()
            try:
                task.run()
            except Exception as exc:
                backoff = supervisor.count_attempt(task)
                if backoff is not None:
                    time.sleep(backoff)
                    continue
                return (TaskFailedError, f"{type(exc).__name__}: {exc}", exc)
            elapsed = time.perf_counter() - t_start
            if supervisor.timed_out(elapsed):
                return (TaskTimeoutError, supervisor.timeout_reason(elapsed), None)
            return None

    def _abandon_atm(self, task: Task, decision: ATMDecision) -> list:
        """Release engine state held for a task that will never commit.

        Returns the engine's orphaned deferred consumers (tasks that were
        waiting for this producer's outputs), if any.
        """
        if decision.atm_handled and self.engine is not None:
            abandoned = getattr(self.engine, "task_abandoned", None)
            if callable(abandoned):
                return abandoned(task, decision) or []
        return []

    def _task_failed(
        self,
        task: Task,
        graph: TaskDependenceGraph,
        decision: ATMDecision,
        error: type,
        reason: str,
        exc: Optional[BaseException],
        worker: str = "",
    ) -> None:
        """Terminal task failure: quarantine the subgraph or abort the drain."""
        orphans = self._abandon_atm(task, decision)
        supervisor = self._supervisor
        if not supervisor.quarantine:
            with self._failure_lock:
                abort = supervisor.abort(task, error, reason, worker=worker)
            raise abort from exc
        with self._failure_lock:
            cancelled = supervisor.quarantine_task(
                graph, task, error, reason, worker=worker
            )
            self._result.tasks_failed += 1
            self._result.tasks_cancelled += len(cancelled)
        # Deferred consumers of the failed producer are *independent* tasks
        # (same key, no dependence edge): execute them directly rather than
        # cancelling work whose inputs are perfectly healthy.
        for orphan in orphans:
            self._rescue_orphan(orphan, graph, worker=worker)

    def _rescue_orphan(self, task: Task, graph: TaskDependenceGraph, worker: str = "") -> None:
        """Execute a deferred consumer whose in-flight producer failed."""
        task.state = TaskState.RUNNING
        failure = self._run_supervised(task)
        if failure is not None:
            self._task_failed(task, graph, EXECUTE_DECISION, *failure, worker=worker)
            return
        with graph._lock:
            self._account(EXECUTE_DECISION)
        graph.complete_task(task, TaskState.FINISHED)

    def drain(self, graph: TaskDependenceGraph) -> RunResult:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (worker pools, shared segments).

        No-op for in-process executors; the process backend overrides it.
        :meth:`repro.session.Session.finish` calls it after the final barrier.
        """


class SerialExecutor(BaseExecutor):
    """Single-threaded executor with wall-clock timing."""

    def drain(self, graph: TaskDependenceGraph) -> RunResult:
        t0 = time.perf_counter()
        supervisor = self._fresh_supervisor()
        deadline = supervisor.deadline()
        if self.engine is not None:
            self.engine.set_deferred_completion_callback(
                lambda task, nbytes: graph.complete_task(task, TaskState.MEMOIZED)
            )
        while not graph.all_finished:
            task = self.scheduler.next_task(0)
            if task is None:
                if graph.all_finished:
                    break
                raise RuntimeStateError(
                    "serial executor starved: ready queue empty but graph not finished "
                    "(deferred task without a producer?)"
                )
            self._process(task, graph)
            if time.perf_counter() >= deadline:
                raise supervisor.drain_timeout("serial drain")
        elapsed = time.perf_counter() - t0
        self._result.elapsed += elapsed
        self._finalize_result()
        return self._result

    def _process(self, task: Task, graph: TaskDependenceGraph) -> None:
        now = time.perf_counter
        t_lookup = now()
        decision = self._lookup(task, worker_id=0)
        t_after_lookup = now()
        self.trace.record(0, CoreState.ATM_HASH, t_lookup, t_after_lookup, task.label)
        executed = False
        if not decision.skips_execution:
            task.state = TaskState.RUNNING
            failure = self._run_supervised(task)
            if failure is not None:
                self._task_failed(task, graph, decision, *failure, worker="serial")
                return
            executed = True
        t_after_run = now()
        if executed:
            self.trace.record(
                0, CoreState.TASK_EXECUTION, t_after_lookup, t_after_run, task.label
            )
        if decision.atm_handled and self.engine is not None:
            self.engine.task_finished(task, decision, executed, worker_id=0)
        t_after_commit = now()
        self.trace.record(
            0, CoreState.ATM_MEMOIZATION, t_after_run, t_after_commit, task.label
        )
        self._account(decision)
        if decision.action != ATMAction.DEFER:
            final_state = (
                TaskState.FINISHED if executed else TaskState.MEMOIZED
            )
            graph.complete_task(task, final_state)
        self.trace.sample_ready(now(), self.scheduler.pending())


class ThreadedExecutor(BaseExecutor):
    """Executor backed by real worker threads.

    Workers spin on the scheduler with a small sleep when idle; the drain
    returns when the graph reports every task terminal.
    """

    #: Idle back-off (seconds) for workers when the ready queue is empty.
    IDLE_SLEEP = 0.0005
    #: Grace period (seconds) for sibling workers to stop after a drain ends.
    JOIN_TIMEOUT = 5.0

    def drain(self, graph: TaskDependenceGraph) -> RunResult:
        if graph.all_finished:
            return self._result
        supervisor = self._fresh_supervisor()
        stop_flag = threading.Event()
        errors: list[BaseException] = []
        errors_lock = threading.Lock()
        if self.engine is not None:
            self.engine.set_deferred_completion_callback(
                lambda task, nbytes: graph.complete_task(task, TaskState.MEMOIZED)
            )
        t0 = time.perf_counter()

        def worker_loop(worker_id: int) -> None:
            while not stop_flag.is_set():
                task = self.scheduler.next_task(worker_id)
                if task is None:
                    if graph.all_finished:
                        return
                    time.sleep(self.IDLE_SLEEP)
                    continue
                try:
                    self._process(task, graph, worker_id)
                except BaseException as exc:
                    with errors_lock:
                        errors.append(exc)
                    stop_flag.set()
                    return

        threads = [
            threading.Thread(target=worker_loop, args=(i,), daemon=True, name=f"worker-{i}")
            for i in range(self.config.num_threads)
        ]
        for thread in threads:
            thread.start()
        finished = False
        timed_out = False
        deadline = supervisor.deadline()
        while True:
            if graph.wait_all_finished(timeout=0.05):
                finished = True
                break
            if stop_flag.is_set():
                break
            if time.perf_counter() >= deadline:
                timed_out = True
                break
        stop_flag.set()
        for thread in threads:
            thread.join(timeout=self.JOIN_TIMEOUT)
        stuck = [thread.name for thread in threads if thread.is_alive()]
        elapsed = time.perf_counter() - t0
        if stuck:
            # A worker that will not stop holds the graph in an unknowable
            # state; dump stacks so the wedged frame is diagnosable.
            reason = (
                f"threaded drain: workers [{', '.join(stuck)}] still alive "
                f"{self.JOIN_TIMEOUT}s after stop was requested"
            )
            dump_stacks(reason)
            raise DrainAbortedError(reason, supervisor.failures)
        if errors:
            # Satellite fix: aggregate *every* worker failure instead of
            # re-raising errors[0] and silently dropping the rest.
            others = [e for e in errors if not isinstance(e, DrainAbortedError)]
            if others:
                raise others[0]
            raise supervisor.aggregate_abort("threaded drain") from errors[0]
        if timed_out and not finished:
            raise supervisor.drain_timeout("threaded drain")
        if not finished:
            raise RuntimeStateError("threaded drain stopped before the graph finished")
        self._result.elapsed += elapsed
        self._finalize_result()
        return self._result

    def _process(self, task: Task, graph: TaskDependenceGraph, worker_id: int) -> None:
        now = time.perf_counter
        t_lookup = now()
        decision = self._lookup(task, worker_id)
        t_after_lookup = now()
        self.trace.record(
            worker_id, CoreState.ATM_HASH, t_lookup, t_after_lookup, task.label
        )
        executed = False
        if not decision.skips_execution:
            task.state = TaskState.RUNNING
            task.executed_on = worker_id
            failure = self._run_supervised(task)
            if failure is not None:
                self._task_failed(
                    task, graph, decision, *failure, worker=f"worker-{worker_id}"
                )
                return
            executed = True
        t_after_run = now()
        if executed:
            self.trace.record(
                worker_id, CoreState.TASK_EXECUTION, t_after_lookup, t_after_run, task.label
            )
        if decision.atm_handled and self.engine is not None:
            self.engine.task_finished(task, decision, executed, worker_id)
        t_after_commit = now()
        self.trace.record(
            worker_id, CoreState.ATM_MEMOIZATION, t_after_run, t_after_commit, task.label
        )
        with graph._lock:  # account + complete under one lock for consistent counts
            self._account(decision)
        if decision.action != ATMAction.DEFER:
            final_state = TaskState.FINISHED if executed else TaskState.MEMOIZED
            graph.complete_task(task, final_state)
        self.trace.sample_ready(now(), self.scheduler.pending())


# -- backend registry ------------------------------------------------------------
# Builtin factories resolved by name through the executor registry (DESIGN.md
# §4).  ``"process"`` and ``"simulated"`` import their modules lazily to keep
# the module dependency graph acyclic; plugin backends (e.g. a network
# transport on the mp_executor seam) are added with
# repro.session.register_executor(name, factory) and become valid
# ``RuntimeConfig.executor`` values automatically.


def _make_process(config, engine, sim_config):
    from repro.runtime.mp_executor import ProcessExecutor

    return ProcessExecutor(config=config, engine=engine)


def _make_simulated(config, engine, sim_config):
    from repro.runtime.simulator import SimulatedExecutor

    return SimulatedExecutor(config=config, engine=engine, sim_config=sim_config)


def _make_network(config, engine, sim_config):
    from repro.runtime.net_executor import NetworkExecutor

    return NetworkExecutor(config=config, engine=engine)


EXECUTORS.register(
    "serial",
    lambda config, engine, sim_config: SerialExecutor(config=config, engine=engine),
    replace=True,
)
EXECUTORS.register(
    "threaded",
    lambda config, engine, sim_config: ThreadedExecutor(config=config, engine=engine),
    replace=True,
)
EXECUTORS.register("process", _make_process, replace=True)
EXECUTORS.register("simulated", _make_simulated, replace=True)
# The network backend lands on the same registration seam DESIGN.md §6.2
# documents for out-of-tree plugins (register_executor("network", factory));
# shipping in-tree it registers here like every other builtin.
EXECUTORS.register("network", _make_network, replace=True)


def build_executor(
    config: Optional[RuntimeConfig] = None,
    engine: Optional[MemoizationEngineProtocol] = None,
    sim_config=None,
) -> BaseExecutor:
    """Build the executor named by ``config.executor`` via the registry.

    This is the assembly path used by :class:`repro.session.Session`; user
    code should go through the Session API rather than call it directly.
    """
    config = config or RuntimeConfig()
    factory = EXECUTORS.factory(config.executor)
    return factory(config, engine, sim_config)

