"""Typed data regions and access annotations.

Task-based dataflow programming models require the programmer to annotate
which data each task reads (``in``), writes (``out``) or both (``inout``).
The runtime uses those annotations for two purposes:

* building the task dependence graph (writer -> reader edges, write-after-read
  and write-after-write orderings);
* giving ATM a complete description of the task inputs (bytes + element
  types) and outputs (buffers to snapshot into the THT and to overwrite on a
  memoization hit).

A :class:`DataRegion` wraps a NumPy array (possibly a view into a larger
array).  Region identity for dependence purposes is the byte interval
``[offset, offset + nbytes)`` within the owning base buffer, so two views of
the same matrix block conflict while disjoint blocks do not.
"""

from __future__ import annotations

import enum
import threading
import weakref
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.common.dtypes import TypeDescriptor, describe_array
from repro.common.exceptions import TaskDefinitionError

__all__ = [
    "AccessMode",
    "DataRegion",
    "SharedDataRegion",
    "ArrayRef",
    "RegionDescriptor",
    "DataAccess",
    "In",
    "Out",
    "InOut",
    "as_region",
    "region_versions",
]


class RegionVersionRegistry:
    """Monotonic write-versions for base buffers.

    Every owning base buffer gets a version number drawn from one global
    monotonic clock; the runtime bumps it whenever a task's write accesses
    commit (:meth:`TaskDependenceGraph.complete_task`) or a region is
    bulk-overwritten through :meth:`DataRegion.copy_from`.  The ATM key
    generator keys its digest caches on ``(region identity, version)``, so a
    region whose version is unchanged since the last key computation is known
    to hold identical bytes and its cached digest can be reused.

    ``id(base)`` can be recycled after garbage collection; the registry keeps
    a weak reference to the registered buffer and hands out a *fresh* clock
    value whenever the identity no longer refers to the same live array, so a
    recycled id can never alias a stale version.  A weakref callback removes
    the entry when its buffer is collected, so the registry never grows past
    the set of live base buffers (the lock is reentrant because collection —
    and therefore the callback — can trigger inside a locked region).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._entries: dict[int, tuple[weakref.ref, int]] = {}
        self._clock = 0

    def _fresh(self, base: np.ndarray) -> int:
        self._clock += 1
        version = self._clock
        key = id(base)

        def _on_collect(ref: weakref.ref, *, _registry=self, _key=key) -> None:
            with _registry._lock:
                entry = _registry._entries.get(_key)
                # Only drop our own entry: the id may already belong to a
                # newer buffer (or a newer ref of the same buffer after a
                # bump), whose entry must survive.
                if entry is not None and entry[0] is ref:
                    del _registry._entries[_key]

        try:
            ref = weakref.ref(base, _on_collect)
        except TypeError:  # pragma: no cover - ndarray subclasses w/o weakref
            ref = lambda: base  # noqa: E731 - permanent strong identity
        self._entries[key] = (ref, version)
        return version

    def version_of(self, base: np.ndarray) -> int:
        """Current version of ``base``, registering it on first sight."""
        key = id(base)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0]() is base:
                return entry[1]
            return self._fresh(base)

    def bump(self, base: np.ndarray) -> int:
        """Advance the version of ``base`` (a write has committed)."""
        with self._lock:
            return self._fresh(base)

    def prune(self) -> int:
        """Drop entries whose buffers were garbage collected.

        Collection normally removes entries via the weakref callback; this
        is a safety net for exotic cases where the callback never ran.
        """
        with self._lock:
            dead = [key for key, (ref, _) in self._entries.items() if ref() is None]
            for key in dead:
                del self._entries[key]
            return len(dead)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide registry used by all regions (runs are single-process).
region_versions = RegionVersionRegistry()


class AccessMode(enum.Enum):
    """Data access modes, mirroring OmpSs/OpenMP ``depend`` clauses."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def reads(self) -> bool:
        return self in (AccessMode.IN, AccessMode.INOUT)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.OUT, AccessMode.INOUT)


def _base_buffer(array: np.ndarray) -> np.ndarray:
    """Walk ``array.base`` up to the owning buffer."""
    base = array
    while isinstance(base.base, np.ndarray):
        base = base.base
    return base


class DataRegion:
    """A named, typed view of application memory.

    Parameters
    ----------
    array:
        The NumPy array (or view) holding the region's data.  The region
        aliases this memory: writes through the region are visible to the
        application and vice versa.
    name:
        Optional human-readable name used in traces and error messages.
    """

    __slots__ = (
        "array", "_name", "_descriptor", "_base", "_base_id",
        "_nbytes", "byte_interval", "region_key",
    )

    def __init__(self, array: np.ndarray, name: Optional[str] = None) -> None:
        if not isinstance(array, np.ndarray):
            raise TaskDefinitionError(
                f"DataRegion requires a numpy array, got {type(array).__name__}"
            )
        self.array = array
        self._name = name
        self._descriptor: Optional[TypeDescriptor] = None
        base = _base_buffer(array)
        self._base = base
        base_id = id(base)
        self._base_id = base_id
        self._nbytes = int(array.nbytes)
        if base is array:
            start = 0
            end = self._nbytes
        elif array.flags.c_contiguous:
            start = (
                array.__array_interface__["data"][0]
                - base.__array_interface__["data"][0]
            )
            end = start + self._nbytes
        else:
            # Non-contiguous view: use the full byte span it touches within
            # the base buffer (conservative for dependence purposes).  The
            # data pointer addresses the first *logical* element, which for
            # negative strides is not the lowest touched address — anchor at
            # the lowest-address corner so reversed/strided views (including
            # 1-D ones) keep a correct interval instead of one extending
            # past the buffer.
            offset = (
                array.__array_interface__["data"][0]
                - base.__array_interface__["data"][0]
            )
            lowest = 0
            span = 0
            for stride, dim in zip(array.strides, array.shape):
                if dim > 1:
                    if stride < 0:
                        lowest += stride * (dim - 1)
                    span += abs(stride) * (dim - 1)
            span += array.dtype.itemsize
            start = offset + lowest
            end = start + span
        #: Half-open byte interval within the base buffer.
        self.byte_interval = (start, end)
        #: Hashable identity of this region (base buffer + byte interval).
        self.region_key = (base_id, start, end)

    # -- identity & overlap -------------------------------------------------
    @property
    def base_id(self) -> int:
        """Identity of the owning base buffer."""
        return self._base_id

    @property
    def name(self) -> str:
        """Human-readable name (lazily defaulted: the f-string is measurable
        on the submission path and most regions are never printed)."""
        name = self._name
        if name is None:
            name = f"region@{id(self.array):#x}"
            self._name = name
        return name

    @name.setter
    def name(self, value: Optional[str]) -> None:
        self._name = value

    @property
    def descriptor(self) -> TypeDescriptor:
        """Element-type descriptor, computed on first use (ATM-only)."""
        descriptor = self._descriptor
        if descriptor is None:
            descriptor = describe_array(self.array)
            self._descriptor = descriptor
        return descriptor

    def overlaps(self, other: "DataRegion") -> bool:
        """True if the two regions may touch common bytes."""
        if self._base_id != other._base_id:
            return False
        start, end = self.byte_interval
        other_start, other_end = other.byte_interval
        return start < other_end and other_start < end

    # -- write versioning -----------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic write-version of the owning base buffer.

        The version changes whenever a write access over any region of the
        same base buffer commits.  Versioning is deliberately coarse (per
        base buffer, not per byte interval): a bump for a sibling region only
        costs a digest-cache miss, never a stale key.
        """
        return region_versions.version_of(self._base)

    def bump_version(self) -> int:
        """Record that a write to this region has committed."""
        return region_versions.bump(self._base)

    @property
    def version_token(self) -> tuple[int, int, int, int]:
        """Cache key for this region's current content: identity + version."""
        return self.region_key + (self.version,)

    # -- data access ---------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self._nbytes

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.array.shape)

    def to_bytes_view(self) -> np.ndarray:
        """A flat ``uint8`` view (copying only if the view is not contiguous)."""
        arr = self.array
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
        return arr.view(np.uint8).reshape(-1)

    def snapshot(self) -> np.ndarray:
        """Deep copy of the current contents (used to store THT outputs)."""
        return np.array(self.array, copy=True)

    def copy_from(self, values: np.ndarray) -> None:
        """Bulk-overwrite the region (the ``copyOuts()`` of Figure 1)."""
        values = np.asarray(values)
        if values.shape != self.array.shape:
            values = values.reshape(self.array.shape)
        np.copyto(self.array, values, casting="unsafe")
        self.bump_version()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataRegion(name={self.name!r}, dtype={self.array.dtype}, "
            f"shape={self.shape}, bytes={self.nbytes})"
        )


@dataclass(frozen=True)
class ArrayRef:
    """Serializable handle to an array view living in a shared segment.

    Produced by :meth:`repro.runtime.shm.SharedBufferRegistry.array_ref` in
    the parent and materialised by :meth:`repro.runtime.shm.WorkerArena.view`
    in a worker process.  ``offset``/``strides`` are byte-exact relative to
    the owning base buffer, so the reconstructed view aliases the same bytes
    the parent-side view does.
    """

    shm_name: str
    base_nbytes: int
    slot: int
    offset: int
    shape: tuple[int, ...]
    strides: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class RegionDescriptor:
    """Serializable description of one :class:`DataRegion` (ref + name)."""

    ref: ArrayRef
    name: str


class SharedDataRegion(DataRegion):
    """A region whose write-versions live in a cross-process shared table.

    Worker processes rebuild task regions over shared-memory views; their
    versions must be observed by *every* worker (a peer may have committed a
    write since this worker last hashed the region), so the per-process
    :class:`RegionVersionRegistry` is replaced by a
    :class:`repro.runtime.shm.SharedVersionTable` slot.
    """

    __slots__ = ("_slot", "_version_table")

    def __init__(self, array, name=None, *, slot: int, version_table) -> None:
        super().__init__(array, name=name)
        self._slot = slot
        self._version_table = version_table

    @property
    def version(self) -> int:
        return self._version_table.read(self._slot)

    def bump_version(self) -> int:
        return self._version_table.bump(self._slot)


def as_region(obj: "DataRegion | np.ndarray", name: Optional[str] = None) -> DataRegion:
    """Coerce an array or region into a :class:`DataRegion`."""
    if isinstance(obj, DataRegion):
        return obj
    return DataRegion(obj, name=name)


class DataAccess:
    """One declared access of a task: a region plus its access mode.

    ``reads``/``writes`` are plain attributes precomputed at construction:
    the dependence tracker consults them several times per access, and the
    enum-property chain (``mode.reads`` → enum ``in`` test) is measurable at
    submission rates in the hundreds of thousands of tasks per second.
    """

    __slots__ = ("region", "mode", "reads", "writes")

    def __init__(self, region: DataRegion, mode: AccessMode) -> None:
        self.region = region
        self.mode = mode
        self.reads = mode is not AccessMode.OUT
        self.writes = mode is not AccessMode.IN

    @property
    def nbytes(self) -> int:
        return self.region.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataAccess({self.region.name!r}, {self.mode.value})"


def In(obj: "DataRegion | np.ndarray", name: Optional[str] = None) -> DataAccess:
    """Declare a read-only (``in``) access."""
    if type(obj) is not DataRegion:
        obj = as_region(obj, name)
    return DataAccess(obj, AccessMode.IN)


def Out(obj: "DataRegion | np.ndarray", name: Optional[str] = None) -> DataAccess:
    """Declare a write-only (``out``) access."""
    if type(obj) is not DataRegion:
        obj = as_region(obj, name)
    return DataAccess(obj, AccessMode.OUT)


def InOut(obj: "DataRegion | np.ndarray", name: Optional[str] = None) -> DataAccess:
    """Declare a read-write (``inout``) access."""
    if type(obj) is not DataRegion:
        obj = as_region(obj, name)
    return DataAccess(obj, AccessMode.INOUT)


def validate_accesses(accesses: Sequence[DataAccess]) -> None:
    """Sanity-check a task's access list.

    Rejects duplicate declarations of the exact same region with conflicting
    modes (a common annotation bug the paper warns about in Section III-E:
    under-declared outputs silently break memoization).
    """
    if len(accesses) < 2:
        return  # a single access cannot conflict with itself
    seen: dict[tuple[int, int, int], AccessMode] = {}
    for access in accesses:
        key = access.region.region_key
        if key in seen and seen[key] != access.mode:
            raise TaskDefinitionError(
                f"region {access.region.name!r} declared twice with conflicting "
                f"modes {seen[key].value!r} and {access.mode.value!r}"
            )
        seen[key] = access.mode


def total_bytes(accesses: Iterable[DataAccess], mode: Optional[AccessMode] = None) -> int:
    """Total bytes of the accesses, optionally filtered by mode."""
    return sum(a.nbytes for a in accesses if mode is None or a.mode == mode)
