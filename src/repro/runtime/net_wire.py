"""Wire format of the network execution backend (DESIGN.md §4.5).

The network backend speaks the same descriptor + ATM delta-merge protocol as
the process backend, but no shared memory spans hosts, so every array payload
travels **as bytes**.  This module defines the two halves of that story:

* **Framing** — every message is one length-prefixed frame::

      | magic "ATMW" (4) | payload length (4, big-endian) | crc32 (4) | payload |

  The payload is a pickled message tuple (protocol ``HIGHEST_PROTOCOL``).
  Magic, length bound and CRC mean a corrupted or truncated stream is
  detected deterministically and raised as
  :class:`~repro.common.exceptions.WireProtocolError` — the receiving side
  treats the peer as failed instead of interpreting garbage.

* **Array/task encoding** — a :class:`ChunkEncoder` (sender side) walks the
  arrays referenced by a chunk of tasks, computes per owning base buffer the
  union byte span the chunk touches, and ships one :class:`NetBuffer` of raw
  bytes per base plus :class:`NetArrayRef` handles (offset/shape/strides/
  dtype) for every view.  A :class:`ChunkArena` (receiver side) materialises
  each buffer as one writable ``bytearray`` and rebuilds byte-exact NumPy
  views over it, preserving aliasing between views of the same base — the
  no-shared-memory analogue of :class:`~repro.runtime.shm.WorkerArena`.

Message vocabulary (client = the :class:`NetworkExecutor` parent, worker =
a loopback thread or a ``scripts/net_worker.py`` daemon)::

    client -> worker : ("hello", info)           handshake; carries the engine spec
                                                 and the residency flag
                       ("chunk", NetChunk)       one batch of task descriptors
                       ("invalidate", pairs)     drop cached buffers named by
                                                 (buffer_id, generation) pairs
                       ("sync",)                 request an ATM engine delta
                       ("ping",)                 heartbeat probe
                       ("shutdown",)             orderly connection teardown
    worker -> client : ("hello_ack", info)
                       ("ack", chunk_id)         chunk received (pre-execution)
                       ("result", chunk_id, results)
                       ("sync_result", delta)
                       ("pong",)
                       ("error", chunk_id, task_id, traceback_str)

Each entry of ``results`` is ``(task_id, action_value, executed, writes)``
where ``writes`` is a list of ``(access_index, bytes)`` pairs holding the
raw little bytes of every written region — the copy-back path that replaces
the process backend's shared-segment ``copy_out``.

Since protocol version 2 a :class:`NetBuffer` has a second, *cached* form
(``data is None``): the span is not on the wire, the worker must already
hold a backing for the buffer id under the named ``generation`` in its
:class:`~repro.runtime.residency.WorkerBufferCache` (populated by earlier
full ships).  A generation the worker does not hold is a protocol
violation — the worker raises :class:`WireProtocolError` and the parent
fails the endpoint and re-runs its work, so a residency bug degrades to a
resubmission instead of silently wrong bytes.
"""

from __future__ import annotations

import pickle
import socket
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.common.exceptions import RuntimeStateError, WireProtocolError
from repro.runtime.data import DataRegion, _base_buffer

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "NetArrayRef",
    "NetBuffer",
    "NetTaskDescriptor",
    "NetChunk",
    "ChunkEncoder",
    "ChunkArena",
    "span_bytes",
    "encode_frame",
    "decode_frame",
    "iter_frames",
    "read_frame",
    "write_frame",
]

#: Bumped on any incompatible message/frame change; checked at hello time.
#: Version 2: cached (``data=None``) :class:`NetBuffer` form, generation
#: tags and the ``invalidate`` message of the residency protocol.
PROTOCOL_VERSION = 2

MAGIC = b"ATMW"
_HEADER = struct.Struct("!4sII")

#: Upper bound on one frame's payload: a garbage length prefix must never
#: turn into a multi-gigabyte allocation or an endless blocking read.
MAX_FRAME_BYTES = 1 << 30


# -- framing --------------------------------------------------------------------------
def encode_frame(message: Any) -> bytes:
    """Serialize one message into a framed byte string."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:  # pragma: no cover - defensive
        raise WireProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload

def _check_header(header: bytes) -> tuple[int, int]:
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireProtocolError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}): peer is not "
            f"speaking the ATM wire protocol or the stream is corrupted"
        )
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    return length, crc


def _check_payload(payload: bytes, crc: int) -> Any:
    if zlib.crc32(payload) != crc:
        raise WireProtocolError(
            "frame checksum mismatch: payload corrupted in transit"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:  # CRC passed but the pickle is malformed
        raise WireProtocolError(f"cannot unpickle frame payload: {exc}") from exc


def decode_frame(data: bytes) -> tuple[Any, int]:
    """Decode one frame from ``data``; returns ``(message, bytes_consumed)``.

    Raises :class:`WireProtocolError` on bad magic, an oversized length, a
    truncated buffer or a checksum mismatch.
    """
    if len(data) < _HEADER.size:
        raise WireProtocolError(
            f"truncated frame: {len(data)} bytes < {_HEADER.size}-byte header"
        )
    length, crc = _check_header(data[: _HEADER.size])
    end = _HEADER.size + length
    if len(data) < end:
        raise WireProtocolError(
            f"truncated frame: header promises {length} payload bytes, "
            f"{len(data) - _HEADER.size} present"
        )
    return _check_payload(data[_HEADER.size : end], crc), end


def iter_frames(data: bytes):
    """Yield every message of a back-to-back frame sequence.

    The persistent THT store's file format is exactly this: concatenated
    frames (header + delta appends).  Raises :class:`WireProtocolError` on
    the first bad or truncated frame — including a partial trailing frame
    left by an interrupted append — so callers decide between failing and
    salvaging the frames already yielded.
    """
    offset = 0
    view = memoryview(data)
    while offset < len(data):
        message, consumed = decode_frame(view[offset:])
        yield message
        offset += consumed


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`WireProtocolError` on EOF."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise WireProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Any:
    """Blocking read of one complete frame from a socket."""
    length, crc = _check_header(_recv_exact(sock, _HEADER.size))
    return _check_payload(_recv_exact(sock, length), crc)


def write_frame(sock: socket.socket, message: Any) -> None:
    sock.sendall(encode_frame(message))


# -- array / task encoding ------------------------------------------------------------
@dataclass(frozen=True)
class NetArrayRef:
    """Serializable handle to an array view inside a shipped buffer span.

    ``offset``/``strides`` are byte-exact relative to the *owning base
    buffer* (exactly like :class:`~repro.runtime.data.ArrayRef`); the
    receiving :class:`ChunkArena` rebases them onto the transmitted span.
    """

    buffer_id: int
    offset: int
    shape: tuple[int, ...]
    strides: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class NetBuffer:
    """Raw bytes of the span one chunk touches within one base buffer.

    Two forms since protocol version 2:

    * ``data`` is bytes — a *full ship*; the receiver materialises a fresh
      backing and (when residency is on) stores it under ``generation``;
    * ``data`` is ``None`` — a *cached* dispatch; the receiver must already
      hold generation ``generation`` of this buffer id and serves the chunk
      from that backing without any span bytes on the wire.
    """

    buffer_id: int
    start: int
    data: Optional[bytes]
    generation: int = 0


@dataclass(frozen=True)
class NetTaskDescriptor:
    """Everything a remote worker needs to rebuild and run one task.

    ``accesses`` entries are ``(NetArrayRef, mode_value, region_name)``;
    ndarray leaves of ``args``/``kwargs`` are replaced by their
    :class:`NetArrayRef`, so worker-side argument arrays alias the rebuilt
    access regions exactly as they alias the parent arrays at home.
    """

    task_id: int
    creation_index: int
    type_spec: Any  # _TaskTypeSpec (repro.runtime.mp_executor)
    function: Any
    accesses: tuple[tuple[NetArrayRef, str, str], ...]
    args: tuple
    kwargs: dict


@dataclass(frozen=True)
class NetChunk:
    """One dispatch unit: buffer spans + the task descriptors using them."""

    chunk_id: int
    buffers: tuple[NetBuffer, ...]
    tasks: tuple[NetTaskDescriptor, ...]


class ChunkEncoder:
    """Sender-side builder of :class:`NetArrayRef`/:class:`NetBuffer` sets.

    Tasks of one chunk are pairwise independent (they were ready
    simultaneously), so one buffer copy per base is consistent for the whole
    chunk.  Call :meth:`ref` / :meth:`encode_payload` for every array, then
    :meth:`buffers` once to materialise the union spans.
    """

    def __init__(self) -> None:
        # id(base) -> [base, min_start, max_end]; holding the base reference
        # keeps the id stable for the encoder's lifetime.
        self._spans: dict[int, list] = {}

    def _touch(self, base: np.ndarray, start: int, end: int) -> int:
        buffer_id = id(base)
        span = self._spans.get(buffer_id)
        if span is None:
            self._spans[buffer_id] = [base, start, end]
        else:
            span[1] = min(span[1], start)
            span[2] = max(span[2], end)
        return buffer_id

    def ref(self, array: np.ndarray, region: Optional[DataRegion] = None) -> NetArrayRef:
        """Handle for ``array``; pass ``region`` to reuse its interval math."""
        if region is None:
            region = DataRegion(array)
        base = _base_buffer(array)
        start, end = region.byte_interval
        buffer_id = self._touch(base, start, end)
        base_addr = base.__array_interface__["data"][0]
        my_addr = array.__array_interface__["data"][0]
        return NetArrayRef(
            buffer_id=buffer_id,
            offset=int(my_addr - base_addr),
            shape=tuple(array.shape),
            strides=tuple(array.strides),
            dtype=array.dtype.str,
        )

    def encode_payload(self, value: Any) -> Any:
        """Swap every ndarray in a (nested) argument payload for its ref."""
        if isinstance(value, np.ndarray):
            return self.ref(value)
        if isinstance(value, tuple):
            return tuple(self.encode_payload(v) for v in value)
        if isinstance(value, list):
            return [self.encode_payload(v) for v in value]
        if isinstance(value, dict):
            return {k: self.encode_payload(v) for k, v in value.items()}
        return value

    def spans(self) -> dict[int, tuple[np.ndarray, int, int]]:
        """Touched union spans as ``buffer_id -> (base, start, end)``.

        The residency-aware dispatch path iterates this to decide, per
        buffer and per endpoint, between a full ship and a cached dispatch.
        """
        return {
            buffer_id: (base, start, end)
            for buffer_id, (base, start, end) in self._spans.items()
        }

    def buffers(self) -> tuple[NetBuffer, ...]:
        """Materialise the union span bytes of every touched base buffer."""
        return tuple(
            NetBuffer(
                buffer_id=buffer_id, start=start, data=span_bytes(base, start, end)
            )
            for buffer_id, (base, start, end) in self._spans.items()
        )


def span_bytes(base: np.ndarray, start: int, end: int) -> bytes:
    """Copy the ``[start, end)`` byte span out of an owning base buffer."""
    if not base.flags.c_contiguous:
        raise RuntimeStateError(
            "the network backend requires C-contiguous owning "
            f"buffers; got a non-contiguous owner of dtype "
            f"{base.dtype} shape {base.shape}"
        )
    if not base.size:
        return b""
    flat = base.reshape(-1).view(np.uint8)
    return flat[start:end].tobytes()


class ChunkArena:
    """Receiver-side materialisation of one chunk's buffers and views.

    Every :class:`NetBuffer` becomes one writable ``bytearray``-backed
    ``uint8`` ndarray; views built over it share that object as their
    ``.base``, preserving region identity (aliasing *and* the keygen-cache
    keying) within the chunk.

    A ``cache`` (:class:`~repro.runtime.residency.WorkerBufferCache`) makes
    the arena residency-aware: full ships are stored into it under their
    generation tag, and cached (``data=None``) buffers are resolved from
    it — a missing or generation-mismatched entry raises
    :class:`WireProtocolError` (the parent's table said the worker holds
    bytes it does not; failing loudly triggers resubmission elsewhere).
    """

    def __init__(
        self, buffers: tuple[NetBuffer, ...], cache=None
    ) -> None:
        self._bases: dict[int, tuple[np.ndarray, int]] = {}
        for buf in buffers:
            if buf.data is None:
                entry = cache.get(buf.buffer_id) if cache is not None else None
                if entry is None or entry.generation != buf.generation:
                    held = "nothing" if entry is None else f"g{entry.generation}"
                    raise WireProtocolError(
                        f"cached dispatch references buffer "
                        f"{buf.buffer_id:#x} at generation {buf.generation} "
                        f"but this worker holds {held}"
                    )
                self._bases[buf.buffer_id] = (entry.backing, entry.start)
                continue
            backing = np.frombuffer(bytearray(buf.data), dtype=np.uint8)
            self._bases[buf.buffer_id] = (backing, buf.start)
            if cache is not None:
                cache.put(buf.buffer_id, backing, buf.start, buf.generation)
        self._views: dict[tuple, np.ndarray] = {}
        self._regions: dict[tuple, DataRegion] = {}

    def view(self, ref: NetArrayRef) -> np.ndarray:
        key = (ref.buffer_id, ref.offset, ref.shape, ref.strides, ref.dtype)
        cached = self._views.get(key)
        if cached is not None:
            return cached
        entry = self._bases.get(ref.buffer_id)
        if entry is None:
            raise WireProtocolError(
                f"chunk references buffer {ref.buffer_id:#x} that was not "
                f"shipped with it"
            )
        backing, start = entry
        try:
            array = np.ndarray(
                ref.shape,
                dtype=np.dtype(ref.dtype),
                buffer=backing,
                offset=ref.offset - start,
                strides=ref.strides,
            )
        except (ValueError, TypeError) as exc:
            raise WireProtocolError(f"cannot rebuild array view: {exc}") from exc
        self._views[key] = array
        return array

    def decode_payload(self, value: Any) -> Any:
        if isinstance(value, NetArrayRef):
            return self.view(value)
        if isinstance(value, tuple):
            return tuple(self.decode_payload(v) for v in value)
        if isinstance(value, list):
            return [self.decode_payload(v) for v in value]
        if isinstance(value, dict):
            return {k: self.decode_payload(v) for k, v in value.items()}
        return value

    def region(self, ref: NetArrayRef, name: str) -> DataRegion:
        key = (ref.buffer_id, ref.offset, ref.shape, ref.strides, ref.dtype)
        cached = self._regions.get(key)
        if cached is None:
            cached = DataRegion(self.view(ref), name=name)
            self._regions[key] = cached
        return cached
