"""Backend-agnostic task supervision.

Every executor backend — serial, threaded, process, network, simulated —
funnels its failure handling through this module so that the four
supervision knobs on :class:`repro.common.config.RuntimeConfig` mean the
same thing everywhere:

``task_timeout_s``
    Per-task wall-clock budget.  In-process backends (serial/threaded)
    cannot preempt a running Python frame, so they detect the overrun
    *post hoc* when the task returns; the process backend kills and
    respawns the worker; the network backend ages in-flight chunks.
``task_max_retries`` / ``retry_backoff_s``
    Bounded re-execution of a failed task with exponential backoff:
    attempt ``k`` (1-based) sleeps ``retry_backoff_s * 2**(k-1)`` before
    re-running.  Timeouts are not retried — a task that blew its budget
    once will blow it again.
``drain_timeout_s``
    Wall-clock bound on a whole drain; replaces the per-backend
    ``DRAIN_TIMEOUT`` class constants.  Expiry dumps all thread stacks
    via :func:`faulthandler` (so hung CI runs are diagnosable) and raises
    :class:`DrainAbortedError`.

``on_task_failure`` selects the terminal policy: ``"abort"`` (default)
raises :class:`DrainAbortedError` out of the drain, ``"quarantine"``
marks the task ``FAILED``, cancels its dependent subgraph and lets
independent work finish; the drain then returns normally with the
structured report in ``RunResult.failures``.
"""

from __future__ import annotations

import faulthandler
import sys
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.common.exceptions import (
    DrainAbortedError,
    TaskFailedError,
    TaskTimeoutError,
    WorkerLostError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.common.config import RuntimeConfig
    from repro.runtime.graph import TaskDependenceGraph
    from repro.runtime.task import Task

__all__ = [
    "POLL_INTERVAL",
    "TaskFailure",
    "TaskSupervisor",
    "dump_stacks",
]

#: Poll cadence (seconds) for every backend's blocking result/inbox loop;
#: replaces the per-backend ``RESULT_POLL`` class constants.
POLL_INTERVAL = 0.02

#: Error-name -> exception-class mapping for :meth:`TaskFailure.to_exception`.
_ERROR_CLASSES = {
    cls.__name__: cls
    for cls in (TaskFailedError, TaskTimeoutError, WorkerLostError)
}


def dump_stacks(reason: str) -> None:
    """Dump every thread's stack to stderr (drain-timeout diagnosis).

    ``faulthandler`` needs a stream with a real file descriptor; under
    pytest's default capture ``sys.stderr`` has none, so fall back to the
    process's original stderr rather than losing the dump.
    """
    for stream in (sys.stderr, sys.__stderr__):
        if stream is None:
            continue
        try:
            stream.write(f"\n=== supervision: {reason}; all thread stacks ===\n")
            stream.flush()
            faulthandler.dump_traceback(file=stream)
        except Exception:  # pragma: no cover - capture-dependent
            continue
        return


@dataclass
class TaskFailure:
    """One entry of the structured ``RunResult.failures`` report.

    ``error`` is the taxonomy class *name* (``"TaskFailedError"``,
    ``"TaskTimeoutError"``, ``"WorkerLostError"``) — a string so the
    report pickles cheaply across process/network boundaries.
    ``cancelled`` lists the labels of the dependent subgraph that was
    quarantined along with the task.
    """

    label: str
    task_id: int
    attempts: int
    reason: str
    error: str = "TaskFailedError"
    worker: str = ""
    cancelled: tuple[str, ...] = ()

    def to_exception(self) -> TaskFailedError:
        """Materialise the failure as its named taxonomy exception."""
        cls = _ERROR_CLASSES.get(self.error, TaskFailedError)
        return cls(self.reason, label=self.label, attempts=self.attempts)


class TaskSupervisor:
    """Shared retry/timeout/quarantine bookkeeping for one drain or run.

    Executors consult the supervisor on every task failure::

        backoff = supervisor.count_attempt(task)
        if backoff is not None:
            sleep(backoff); re-run the task
        elif supervisor.quarantine:
            cancelled = supervisor.quarantine_task(graph, task, error, reason)
        else:
            raise supervisor.abort(task, error, reason) from exc

    The supervisor is not thread-safe by itself; in-process backends call
    it under their drain/graph locks, the process and network backends
    only from the master thread's pump loop.
    """

    def __init__(
        self,
        config: "RuntimeConfig",
        failures: Optional[list] = None,
    ) -> None:
        self.task_timeout_s: Optional[float] = config.task_timeout_s
        self.max_retries: int = config.task_max_retries
        self.backoff_s: float = config.retry_backoff_s
        self.drain_timeout_s: float = config.drain_timeout_s
        self.quarantine: bool = config.on_task_failure == "quarantine"
        # ``failures`` may be an external sink (``RunResult.failures``) so
        # recorded failures land on the run report without a copy step.
        self.failures: list[TaskFailure] = failures if failures is not None else []
        self._attempts: dict[int, int] = {}

    # -- retries --------------------------------------------------------------
    def attempts(self, task: "Task") -> int:
        """Failed executions recorded so far for ``task``."""
        return self._attempts.get(task.task_id, 0)

    def count_attempt(self, task: "Task") -> Optional[float]:
        """Record one failed execution of ``task``.

        Returns the backoff (seconds) to sleep before re-running the task,
        or ``None`` when the retry budget is exhausted and the failure is
        terminal.
        """
        n = self._attempts.get(task.task_id, 0) + 1
        self._attempts[task.task_id] = n
        if n <= self.max_retries:
            return self.backoff_s * (2 ** (n - 1))
        return None

    # -- timeouts -------------------------------------------------------------
    def timed_out(self, elapsed: float) -> bool:
        """Whether ``elapsed`` seconds of task runtime exceed the budget."""
        return self.task_timeout_s is not None and elapsed > self.task_timeout_s

    def timeout_reason(self, elapsed: float) -> str:
        return (
            f"task ran {elapsed:.3f}s, exceeding "
            f"task_timeout_s={self.task_timeout_s}"
        )

    def deadline(self) -> float:
        """Absolute ``time.perf_counter()`` drain deadline from now."""
        return time.perf_counter() + self.drain_timeout_s

    def drain_timeout(self, what: str) -> DrainAbortedError:
        """Build the drain-deadline-expired abort (dumps thread stacks)."""
        message = (
            f"{what} did not finish within drain_timeout_s="
            f"{self.drain_timeout_s}s"
        )
        dump_stacks(message)
        return DrainAbortedError(message, self.failures)

    # -- terminal failures ----------------------------------------------------
    def record_failure(
        self,
        task: "Task",
        error: type[TaskFailedError] | str,
        reason: str,
        worker: str = "",
        cancelled: tuple[str, ...] = (),
    ) -> TaskFailure:
        """Append a terminal failure for ``task`` to the report."""
        failure = TaskFailure(
            label=task.label,
            task_id=task.task_id,
            attempts=max(1, self.attempts(task)),
            reason=reason,
            error=error if isinstance(error, str) else error.__name__,
            worker=worker,
            cancelled=cancelled,
        )
        self.failures.append(failure)
        return failure

    def quarantine_task(
        self,
        graph: "TaskDependenceGraph",
        task: "Task",
        error: type[TaskFailedError] | str,
        reason: str,
        worker: str = "",
    ) -> list["Task"]:
        """Fail ``task`` in the graph, cancel its dependents, record it.

        Returns the cancelled dependent tasks (for the caller's counters).
        """
        cancelled = graph.fail_task(task)
        self.record_failure(
            task,
            error,
            reason,
            worker=worker,
            cancelled=tuple(t.label for t in cancelled),
        )
        return cancelled

    def abort(
        self,
        task: "Task",
        error: type[TaskFailedError] | str,
        reason: str,
        worker: str = "",
    ) -> DrainAbortedError:
        """Record the failure and build the drain-aborting exception."""
        failure = self.record_failure(task, error, reason, worker=worker)
        labels = ", ".join(f.label for f in self.failures)
        return DrainAbortedError(
            f"drain aborted: task {failure.label} failed after "
            f"{failure.attempts} attempt(s): {failure.reason} "
            f"[failed tasks: {labels}]",
            self.failures,
        )

    def aggregate_abort(self, what: str) -> DrainAbortedError:
        """Abort carrying *every* recorded failure (threaded drain path)."""
        labels = ", ".join(f.label for f in self.failures) or "<none>"
        return DrainAbortedError(
            f"{what} aborted by {len(self.failures)} task failure(s) "
            f"[failed tasks: {labels}]",
            self.failures,
        )
