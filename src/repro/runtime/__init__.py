"""Task-based dataflow runtime system (OmpSs / Nanos++ analogue).

The runtime exposes the same concepts the paper relies on:

* typed **data regions** with ``in`` / ``out`` / ``inout`` access annotations
  (:mod:`repro.runtime.data`);
* **tasks** and **task types** (:mod:`repro.runtime.task`);
* a **dependence system** that orders tasks by their declared accesses and
  builds the task dependence graph (:mod:`repro.runtime.dependences`,
  :mod:`repro.runtime.graph`);
* **ready queues** and **schedulers** (:mod:`repro.runtime.ready_queue`,
  :mod:`repro.runtime.scheduler`);
* four executors: a serial one, a real-thread one, a multiprocess
  shared-memory one and a deterministic discrete-event multicore simulator
  (:mod:`repro.runtime.executor`, :mod:`repro.runtime.mp_executor`,
  :mod:`repro.runtime.simulator`, selected by registry name via
  :func:`repro.runtime.executor.build_executor`; see DESIGN.md §4);
* an execution **trace recorder** used to regenerate the paper's Figures 7
  and 8 (:mod:`repro.runtime.trace`).

The user-facing programming surface is :class:`repro.session.Session`.
"""

from repro.runtime.data import AccessMode, DataAccess, DataRegion, In, InOut, Out
from repro.runtime.task import Task, TaskState, TaskType
from repro.runtime.graph import TaskDependenceGraph
from repro.runtime.executor import (
    RunResult,
    SerialExecutor,
    ThreadedExecutor,
    build_executor,
)
from repro.runtime.simulator import SimulatedExecutor
from repro.runtime.mp_executor import ProcessExecutor

__all__ = [
    "AccessMode",
    "DataAccess",
    "DataRegion",
    "In",
    "Out",
    "InOut",
    "Task",
    "TaskState",
    "TaskType",
    "TaskDependenceGraph",
    "RunResult",
    "SerialExecutor",
    "ThreadedExecutor",
    "SimulatedExecutor",
    "ProcessExecutor",
    "build_executor",
]
