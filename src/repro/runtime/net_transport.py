"""Endpoints and the worker service loop of the network backend.

Transport model (DESIGN.md §4.5): the :class:`NetworkExecutor` parent holds
one point-to-point connection per worker *endpoint*.  Each endpoint owns a
socket plus a receiver thread that decodes frames
(:mod:`repro.runtime.net_wire`) and posts ``(endpoint, message)`` pairs onto
the executor's single inbox queue; sends happen inline under a per-endpoint
lock.  Two concrete endpoints exist:

* :class:`LoopbackEndpoint` — a ``socket.socketpair`` whose far end is
  served by an in-process worker thread running the *same*
  :func:`serve_connection` loop the TCP daemon runs.  The full stack —
  framing, acks, heartbeats, resubmission — is exercised on one machine
  with zero extra infrastructure; this is the default
  (``RuntimeConfig.net_endpoints = "loopback"``) and what the parity and
  fault suites drive.
* :class:`TcpEndpoint` — connects to a ``scripts/net_worker.py`` daemon at
  ``host:port``.

Endpoint failure is a *state*, not an exception: when the socket breaks, a
frame fails to decode, or the executor's heartbeat deadline expires, the
endpoint is marked ``failed``, excluded from further dispatch, and its
unfinished chunks are resubmitted elsewhere.  The fault-injection tests
subclass :class:`LoopbackEndpoint` and override :meth:`SocketEndpoint.deliver`
/ :meth:`LoopbackEndpoint.worker_target` to drop acks, delay past the
heartbeat, kill the worker mid-chunk or corrupt the stream.

The worker side — :class:`NetWorkerState` + :func:`serve_connection` — is
deliberately transport-agnostic: it reads frames from any socket, so the
loopback thread and the standalone TCP daemon share every line of protocol
logic.
"""

from __future__ import annotations

import queue
import socket
import threading
import traceback
from typing import Any, Optional

import numpy as np

from repro.common.exceptions import (
    NetworkTransportError,
    WireProtocolError,
)
from repro.runtime.atm_protocol import EXECUTE_DECISION
from repro.runtime.data import AccessMode, DataAccess
from repro.runtime.mp_executor import _build_worker_engine
from repro.runtime.net_wire import (
    ChunkArena,
    NetChunk,
    PROTOCOL_VERSION,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.runtime.residency import WorkerBufferCache
from repro.runtime.task import Task, TaskState, TaskType

__all__ = [
    "TRANSPORT_ERROR",
    "SocketEndpoint",
    "LoopbackEndpoint",
    "TcpEndpoint",
    "NetWorkerState",
    "serve_connection",
    "parse_endpoints",
]

#: Message kind posted to the inbox when an endpoint's receive path dies.
TRANSPORT_ERROR = "__transport_error__"


# -- parent-side endpoints ------------------------------------------------------------
class SocketEndpoint:
    """One connection from the executor to a worker, with a receiver thread."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: Set (only) by the executor when it declares this endpoint dead.
        self.failed = False
        #: Last worker-side error report seen by the receiver thread; the
        #: executor folds it into the failure reason when the connection
        #: breaks before the report can travel the normal message path.
        self.last_worker_error: Optional[str] = None
        self._sock: Optional[socket.socket] = None
        self._inbox: Optional[queue.Queue] = None
        self._send_lock = threading.Lock()
        self._receiver: Optional[threading.Thread] = None
        self._closed = False

    # -- connection --------------------------------------------------------------
    def connect(self) -> socket.socket:  # pragma: no cover - abstract
        raise NotImplementedError

    def start(self, inbox: queue.Queue) -> None:
        """Connect and spawn the receiver thread posting into ``inbox``."""
        if self._sock is not None:
            return
        self._inbox = inbox
        try:
            self._sock = self.connect()
        except OSError as exc:
            raise NetworkTransportError(
                f"endpoint {self.name}: cannot connect: {exc}"
            ) from exc
        self._receiver = threading.Thread(
            target=self._receive_loop, daemon=True, name=f"net-recv-{self.name}"
        )
        self._receiver.start()

    def _receive_loop(self) -> None:
        sock = self._sock
        try:
            while True:
                message = read_frame(sock)
                if message[0] == "error":
                    self.last_worker_error = message[3]
                self.deliver(message)
        except (WireProtocolError, OSError, ValueError) as exc:
            # ValueError: recv on a socket closed by our own close().
            if not self._closed:
                self._post((TRANSPORT_ERROR, f"{type(exc).__name__}: {exc}"))

    def _post(self, message: Any) -> None:
        inbox = self._inbox
        if inbox is not None:
            inbox.put((self, message))

    def deliver(self, message: Any) -> None:
        """Inbound hook: receiver thread -> executor inbox.

        Fault-injection wrappers override this to drop, delay or reorder
        worker->parent messages.
        """
        self._post(message)

    # -- outbound ---------------------------------------------------------------
    def send(self, message: Any) -> None:
        """Frame and send one message; raises on a broken connection."""
        self.send_bytes(encode_frame(message))

    def send_bytes(self, raw: bytes) -> None:
        """Send an already-framed message.

        Split from :meth:`send` so the executor can frame chunks
        synchronously (naming unpicklable tasks in the error) and so the
        transport-level failure surface is exactly
        :class:`NetworkTransportError`.
        """
        sock = self._sock
        if sock is None or self._closed:
            raise NetworkTransportError(f"endpoint {self.name} is not connected")
        try:
            with self._send_lock:
                sock.sendall(raw)
        except OSError as exc:
            raise NetworkTransportError(
                f"endpoint {self.name}: send failed: {exc}"
            ) from exc

    # -- teardown ---------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Tear the connection down.

        ``wait=False`` (the executor's *failure* path) skips the thread
        joins: the receiver and any loopback worker are daemon threads that
        die with the closed socket, and joining a wedged worker would stall
        failover on the drain thread for the whole join timeout.
        """
        if self._closed:
            return
        self._closed = True
        if self._sock is not None:
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if (
            wait
            and self._receiver is not None
            and self._receiver is not threading.current_thread()
        ):
            self._receiver.join(timeout=2.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "failed" if self.failed else ("closed" if self._closed else "live")
        return f"{type(self).__name__}({self.name!r}, {state})"


class LoopbackEndpoint(SocketEndpoint):
    """In-process worker: a socketpair served by a thread running the real
    protocol loop.  Zero infrastructure, real framing bytes on a real socket.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._worker_thread: Optional[threading.Thread] = None

    def connect(self) -> socket.socket:
        parent_sock, worker_sock = socket.socketpair()
        self._worker_thread = threading.Thread(
            target=self.worker_target,
            args=(worker_sock,),
            daemon=True,
            name=f"net-worker-{self.name}",
        )
        self._worker_thread.start()
        return parent_sock

    def worker_target(self, sock: socket.socket) -> None:
        """The served side of the pair; fault tests override this."""
        serve_connection(sock)

    def close(self, wait: bool = True) -> None:
        if self._closed:
            return
        super().close(wait=wait)
        if (
            wait
            and self._worker_thread is not None
            and self._worker_thread is not threading.current_thread()
        ):
            self._worker_thread.join(timeout=2.0)


class TcpEndpoint(SocketEndpoint):
    """Connection to a standalone ``scripts/net_worker.py`` daemon."""

    CONNECT_TIMEOUT = 10.0

    def __init__(self, host: str, port: int) -> None:
        super().__init__(f"{host}:{port}")
        self.host = host
        self.port = port

    def connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.CONNECT_TIMEOUT
        )
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock


def parse_endpoints(spec: str, default_workers: int) -> list[SocketEndpoint]:
    """Build endpoints from ``RuntimeConfig.net_endpoints``.

    ``"loopback"`` / ``"loopback:<n>"`` spawn in-process workers;
    anything else is a comma-separated ``host:port`` list.
    """
    text = spec.strip()
    if text == "loopback" or text.startswith("loopback:"):
        count = default_workers
        if ":" in text:
            try:
                count = int(text.split(":", 1)[1])
            except ValueError as exc:
                raise NetworkTransportError(
                    f"net_endpoints {spec!r}: bad loopback worker count: {exc}"
                ) from exc
        if count < 1:
            raise NetworkTransportError(
                f"net_endpoints {spec!r}: loopback worker count must be >= 1"
            )
        return [LoopbackEndpoint(f"loopback/{i}") for i in range(count)]
    endpoints: list[SocketEndpoint] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not host:
            raise NetworkTransportError(
                f"net_endpoints entry {part!r} is not host:port"
            )
        try:
            endpoints.append(TcpEndpoint(host, int(port)))
        except ValueError as exc:
            raise NetworkTransportError(
                f"net_endpoints entry {part!r}: bad port: {exc}"
            ) from exc
    if not endpoints:
        raise NetworkTransportError(f"net_endpoints {spec!r} names no endpoints")
    return endpoints


# -- worker side ----------------------------------------------------------------------
class NetWorkerState:
    """Per-connection worker state: the ATM engine replica + type cache."""

    def __init__(self, worker_id: int = 0) -> None:
        self.worker_id = worker_id
        self.engine = None
        self.task_types: dict[str, TaskType] = {}
        #: Residency store for shipped backings; created at hello time when
        #: the client runs the residency protocol (``None`` = ship-always).
        self.buffer_cache: Optional[WorkerBufferCache] = None

    # -- handshake ---------------------------------------------------------------
    def hello(self, info: dict) -> dict:
        protocol = info.get("protocol")
        if protocol != PROTOCOL_VERSION:
            raise WireProtocolError(
                f"protocol version mismatch: client speaks {protocol}, "
                f"worker speaks {PROTOCOL_VERSION}"
            )
        self.engine = _build_worker_engine(info.get("engine"))
        self.buffer_cache = WorkerBufferCache() if info.get("residency") else None
        return {"protocol": PROTOCOL_VERSION, "worker_id": self.worker_id}

    # -- execution ---------------------------------------------------------------
    def run_chunk(self, chunk: NetChunk) -> tuple[list[tuple], Optional[tuple]]:
        """Run one chunk; returns ``(results, error)``.

        ``error`` is ``(task_id, traceback_str)`` when a task body raised —
        the rest of the chunk is dropped, mirroring the process backend.
        """
        arena = ChunkArena(chunk.buffers, cache=self.buffer_cache)
        results: list[tuple] = []
        for desc in chunk.tasks:
            try:
                results.append(self._run_task(desc, arena))
            except BaseException:
                return results, (desc.task_id, traceback.format_exc())
        return results, None

    def _run_task(self, desc, arena: ChunkArena) -> tuple:
        task_type = self.task_types.get(desc.type_spec.name)
        if task_type is None:
            task_type = desc.type_spec.build()
            self.task_types[desc.type_spec.name] = task_type
        accesses = [
            DataAccess(arena.region(ref, name), AccessMode(mode_value))
            for ref, mode_value, name in desc.accesses
        ]
        task = Task(
            task_type=task_type,
            function=desc.function,
            accesses=accesses,
            args=arena.decode_payload(desc.args),
            kwargs=arena.decode_payload(desc.kwargs),
            task_id=desc.task_id,
        )
        task.creation_index = desc.creation_index
        task.label = f"{task_type.name}#{desc.task_id}"

        engine = self.engine
        # Same eligibility gate as BaseExecutor._lookup, so per-worker stats
        # merge into the exact totals a single-process engine would see.
        if engine is not None and task_type.atm_eligible:
            decision = engine.task_ready(task, self.worker_id)
        else:
            decision = EXECUTE_DECISION
        executed = False
        if not decision.skips_execution:
            task.state = TaskState.RUNNING
            task.run()
            executed = True
            for access in task.accesses:
                if access.writes:
                    access.region.bump_version()
        if decision.atm_handled and engine is not None:
            engine.task_finished(task, decision, executed, self.worker_id)
        # Ship back the raw bytes of every written region: the parent has no
        # shared memory to read them from (the SKIP path's copy_from wrote
        # the worker-local arrays, so it is covered identically).
        writes = [
            (index, np.ascontiguousarray(access.region.array).tobytes())
            for index, access in enumerate(task.accesses)
            if access.writes
        ]
        return (desc.task_id, decision.action.value, executed, writes)

    # -- barrier -----------------------------------------------------------------
    def sync(self):
        """ATM engine delta since the previous barrier (``None`` engineless)."""
        if self.engine is None:
            return None
        return self.engine.snapshot(reset=True)


def serve_connection(sock: socket.socket, worker_id: int = 0) -> None:
    """Serve one executor connection until shutdown or a dead transport.

    The single worker loop shared by loopback threads and the TCP daemon.
    Task exceptions are reported as ``("error", ...)`` frames — the worker
    survives and the parent decides (it raises; a *transport* fault, by
    contrast, kills the connection and triggers resubmission).
    """
    state = NetWorkerState(worker_id=worker_id)
    try:
        while True:
            message = read_frame(sock)
            kind = message[0]
            if kind == "hello":
                write_frame(sock, ("hello_ack", state.hello(message[1])))
            elif kind == "chunk":
                chunk: NetChunk = message[1]
                # Per-chunk ack *before* execution: proves liveness at
                # receipt so the parent's ack deadline is independent of
                # task runtime.
                write_frame(sock, ("ack", chunk.chunk_id))
                results, error = state.run_chunk(chunk)
                if error is not None:
                    # Completed-prefix results ship *before* the error frame
                    # so their writes are never lost to a task that fails
                    # later in the same chunk; the parent then resubmits
                    # only the unfinished remainder.
                    if results:
                        write_frame(sock, ("result", chunk.chunk_id, results))
                    write_frame(sock, ("error", chunk.chunk_id, *error))
                else:
                    write_frame(sock, ("result", chunk.chunk_id, results))
            elif kind == "invalidate":
                # Residency eviction/invalidations: no reply — the socket's
                # FIFO order guarantees every chunk referencing the dropped
                # generations was already processed above.
                if state.buffer_cache is not None:
                    state.buffer_cache.invalidate(message[1])
            elif kind == "sync":
                write_frame(sock, ("sync_result", state.sync()))
            elif kind == "ping":
                write_frame(sock, ("pong",))
            elif kind == "shutdown":
                break
            else:
                raise WireProtocolError(f"unknown message kind {kind!r}")
    except WireProtocolError as exc:
        # A frame we could not decode — most commonly a task function that
        # does not resolve on this worker's import path (pickled by
        # reference from the client's ``__main__``).  Best-effort report
        # before dying: it turns the client's opaque connection-reset into
        # the actual cause.
        try:
            write_frame(sock, ("error", None, None, f"worker {worker_id}: {exc}"))
        except OSError:
            pass
    except (OSError, ValueError, EOFError):
        # Transport died: nothing to report to — the client's receiver
        # observes the same breakage independently.
        pass
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
