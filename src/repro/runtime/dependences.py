"""Dependence analysis (indexed fast path).

The dependence tracker receives tasks in program (creation) order and derives
the edges of the task dependence graph from their declared accesses, with the
usual dataflow semantics:

* read-after-write (true dependence): a reader depends on the last writer of
  any overlapping region;
* write-after-write (output dependence): a writer depends on the previous
  writer of any overlapping region;
* write-after-read (anti dependence): a writer depends on all readers since
  the previous writer of any overlapping region.

Regions conflict when they belong to the same base buffer and their byte
intervals overlap, so disjoint blocks of a matrix can be processed in
parallel while any two accesses to the same block are ordered.

This module is the optimised replacement for the seed's linear-scan tracker
(preserved verbatim in :mod:`repro.runtime.dependences_reference` and proven
edge-identical by ``tests/runtime/test_dependences_property.py``).  Two
structures carry the fast path:

* a **per-buffer interval index** (:class:`_BufferIndex`): an exact-interval
  dict plus a sorted-endpoint list.  Block-structured applications re-use the
  same byte intervals for every task, so ~100% of accesses resolve through
  one dict probe; the sorted endpoints answer the general overlap query with
  two bisects when the buffer's stored intervals are pairwise disjoint, and
  fall back to the seed's linear scan only for buffers that actually hold
  nested/overlapping intervals;
* **monotonic epoch stamps** on tasks: instead of accumulating predecessors
  in a per-task Python set (hashing every candidate) and scanning
  ``readers_since_write`` for membership, every ``dependences_for`` call
  draws a fresh epoch from one process-wide counter and stamps tasks as they
  are collected — dedup costs one integer compare per candidate, and the
  task stamps itself first so a task with an inout access never depends on
  itself.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from typing import Iterable

from repro.runtime.data import DataAccess, DataRegion
from repro.runtime.task import Task

__all__ = ["DependenceTracker", "RegionState"]

#: Process-wide epoch clock.  Epochs are globally unique (never reused), so a
#: task stamped by one tracker can never alias a fresh epoch of another
#: tracker instance; ``itertools.count`` is atomic under the GIL.
_EPOCHS = itertools.count(1)


class RegionState:
    """Last writer and subsequent readers of one byte interval."""

    __slots__ = ("start", "end", "last_writer", "readers_since_write")

    def __init__(self, start: int, end: int) -> None:
        self.start = start
        self.end = end
        self.last_writer: Task | None = None
        self.readers_since_write: list[Task] = []

    @property
    def interval(self) -> tuple[int, int]:
        return (self.start, self.end)


class _BufferIndex:
    """Interval index over the region states of one base buffer.

    ``exact`` resolves an exact byte interval in one dict probe.  ``keys``
    holds ``(start, end)`` pairs sorted lexicographically with ``states``
    parallel to it; while the stored intervals are pairwise disjoint
    (``disjoint`` flag, the block-structured common case) the sorted ends are
    non-decreasing too, so an overlap query is a contiguous slice found with
    two bisects.  The first nested/overlapping insert clears the flag and
    overlap queries fall back to a linear scan (the seed semantics).
    """

    __slots__ = ("exact", "keys", "states", "ends", "disjoint")

    def __init__(self) -> None:
        self.exact: dict[tuple[int, int], RegionState] = {}
        self.keys: list[tuple[int, int]] = []
        self.states: list[RegionState] = []
        self.ends: list[int] = []
        self.disjoint = True

    def insert(self, start: int, end: int) -> RegionState:
        """Create, register and return the state for a new exact interval."""
        state = RegionState(start, end)
        key = (start, end)
        self.exact[key] = state
        position = bisect_left(self.keys, key)
        self.keys.insert(position, key)
        self.states.insert(position, state)
        self.ends.insert(position, end)
        if self.disjoint:
            # Overlap against either neighbour breaks the sorted-disjoint
            # invariant that makes range queries two bisects (pairwise
            # disjoint + sorted means any overlap shows up at a neighbour).
            if position > 0 and self.keys[position - 1][1] > start:
                self.disjoint = False
            elif (
                position + 1 < len(self.keys)
                and self.keys[position + 1][0] < end
            ):
                self.disjoint = False
        return state

    def overlapping(self, start: int, end: int) -> list[RegionState]:
        """All stored states whose interval overlaps ``[start, end)``."""
        states = self.states
        if not states:
            return []
        if self.disjoint:
            if start < end:
                match = self.exact.get((start, end))
                if match is not None:
                    # Disjoint invariant: nothing else can overlap an
                    # interval that is stored exactly.  (Zero-length
                    # intervals are excluded above: an empty interval never
                    # overlaps anything, not even itself — seed semantics.)
                    return [match]
            lo = bisect_right(self.ends, start)
            hi = bisect_left(self.keys, (end,))
            return states[lo:hi]
        return [
            s for s in states if start < s.end and s.start < end
        ]


class DependenceTracker:
    """Incremental dependence analysis over a stream of tasks.

    The tracker keeps, per base buffer, a :class:`_BufferIndex` of region
    states (byte intervals with their last writer and readers).  Semantics
    are bit-identical to the preserved seed tracker; only the lookup
    structures differ.
    """

    def __init__(self) -> None:
        self._buffers: dict[int, _BufferIndex] = {}
        self._edges_added = 0

    @property
    def edges_added(self) -> int:
        """Total number of dependence edges produced so far."""
        return self._edges_added

    # -- core API -------------------------------------------------------------
    def dependences_for(self, task: Task) -> list[Task]:
        """Compute predecessors of ``task`` and update the tracking state.

        Must be called exactly once per task, in creation order.  Returns the
        distinct predecessors (order follows discovery; callers needing set
        semantics can wrap, the members are already deduplicated).
        """
        epoch = next(_EPOCHS)
        # Self-stamp first: a task with an inout access never depends on
        # itself (the seed's ``predecessors.discard(task)``).
        task._dep_mark = epoch
        predecessors: list[Task] = []
        append = predecessors.append
        buffers_get = self._buffers.get
        accesses = task.accesses
        # First pass: collect dependences against the pre-task state so a
        # task reading and writing the same bytes sees only earlier tasks.
        for access in accesses:
            region = access.region
            index = buffers_get(region._base_id)
            if index is None:
                continue
            start, end = region.byte_interval
            if access.writes:
                for state in index.overlapping(start, end):
                    writer = state.last_writer
                    if writer is not None and writer._dep_mark != epoch:
                        writer._dep_mark = epoch
                        append(writer)
                    for reader in state.readers_since_write:
                        if reader._dep_mark != epoch:
                            reader._dep_mark = epoch
                            append(reader)
            else:
                for state in index.overlapping(start, end):
                    writer = state.last_writer
                    if writer is not None and writer._dep_mark != epoch:
                        writer._dep_mark = epoch
                        append(writer)
        # Second pass: update state *after* computing all dependences.
        buffers = self._buffers
        for access in accesses:
            region = access.region
            base_id = region._base_id
            index = buffers_get(base_id)
            if index is None:
                index = buffers[base_id] = _BufferIndex()
            start, end = region.byte_interval
            match = index.exact.get((start, end))
            if match is None:
                match = index.insert(start, end)
            if access.writes:
                match.last_writer = task
                match.readers_since_write = []
                if not index.disjoint:
                    # A write also orders against overlapping (but
                    # non-identical) intervals: record the writer there too
                    # so later accesses of those intervals see it.  While the
                    # buffer's intervals stay pairwise disjoint nothing else
                    # can overlap the exact match — skip the query entirely.
                    for state in index.overlapping(start, end):
                        if state is match:
                            continue
                        state.last_writer = task
                        state.readers_since_write = []
            elif access.reads:
                readers = match.readers_since_write
                # Duplicate reads of one interval can only come from the
                # *current* task (one update pass per task), so the dedup
                # scan collapses to a last-element identity check.
                if not readers or readers[-1] is not task:
                    readers.append(task)
        self._edges_added += len(predecessors)
        return predecessors

    # -- helpers --------------------------------------------------------------
    def _overlapping_states(self, region: DataRegion) -> Iterable[RegionState]:
        """States overlapping ``region`` (introspection/testing helper)."""
        index = self._buffers.get(region.base_id)
        if index is None:
            return []
        start, end = region.byte_interval
        return index.overlapping(start, end)

    def reset(self) -> None:
        """Forget all state (used between independent program runs)."""
        self._buffers.clear()
        self._edges_added = 0
